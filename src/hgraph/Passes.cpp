//===- hgraph/Passes.cpp - The conservative Android pass set ---------------===//

#include "hgraph/Passes.h"

#include "hgraph/Build.h"
#include "vm/MachineUtil.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>

using namespace ropt;
using namespace ropt::hgraph;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;
using vm::MRegIdx;

namespace {

/// Tracks which registers currently hold known integer constants while
/// scanning a block front to back.
class ConstTracker {
public:
  void invalidate(MRegIdx R) { Known.erase(R); }
  void set(MRegIdx R, int64_t V) { Known[R] = V; }

  std::optional<int64_t> get(MRegIdx R) const {
    auto It = Known.find(R);
    if (It == Known.end())
      return std::nullopt;
    return It->second;
  }

  /// Processes the write side of \p I: records MMovImmI results,
  /// invalidates anything else that defines a register.
  void afterInsn(const MInsn &I) {
    if (!vm::definesA(I))
      return;
    if (I.Op == MOpcode::MMovImmI)
      set(I.A, I.ImmI);
    else
      invalidate(I.A);
  }

private:
  std::map<MRegIdx, int64_t> Known;
};

/// Evaluates a two-operand integer ALU op on constants. Division by zero
/// is *not* folded — the trap must stay.
std::optional<int64_t> foldIntOp(MOpcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case MOpcode::MAddI: return A + B;
  case MOpcode::MSubI: return A - B;
  case MOpcode::MMulI: return A * B;
  case MOpcode::MAndI: return A & B;
  case MOpcode::MOrI: return A | B;
  case MOpcode::MXorI: return A ^ B;
  case MOpcode::MShlI: return A << (B & 63);
  case MOpcode::MShrI: return A >> (B & 63);
  default: return std::nullopt;
  }
}

/// Evaluates a conditional terminator over constants.
bool evalCond(MOpcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case MOpcode::MIfEq: return A == B;
  case MOpcode::MIfNe: return A != B;
  case MOpcode::MIfLt: return A < B;
  case MOpcode::MIfLe: return A <= B;
  case MOpcode::MIfGt: return A > B;
  default: return A >= B;
  }
}

} // namespace

bool hgraph::constantFolding(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    ConstTracker Consts;
    for (MInsn &I : B.Insns) {
      std::optional<int64_t> CA, CB;
      if (I.B != MNoReg)
        CA = Consts.get(I.B);
      if (I.C != MNoReg)
        CB = Consts.get(I.C);
      if (CA && CB && vm::isPureOp(I.Op) && I.A != MNoReg) {
        if (auto Folded = foldIntOp(I.Op, *CA, *CB)) {
          MRegIdx Dst = I.A;
          I = MInsn();
          I.Op = MOpcode::MMovImmI;
          I.A = Dst;
          I.ImmI = *Folded;
          Changed = true;
        }
      } else if (I.Op == MOpcode::MNegI && CA) {
        MRegIdx Dst = I.A;
        I = MInsn();
        I.Op = MOpcode::MMovImmI;
        I.A = Dst;
        I.ImmI = -*CA;
        Changed = true;
      }
      Consts.afterInsn(I);
    }

    // Fold constant conditional terminators into gotos.
    Terminator &T = B.Term;
    if (T.K == Terminator::Kind::Cond) {
      std::optional<int64_t> CA = Consts.get(T.B);
      std::optional<int64_t> CB(0);
      if (T.C != MNoReg)
        CB = Consts.get(T.C);
      if (CA && CB) {
        uint32_t Dest = evalCond(T.CondOp, *CA, *CB) ? T.Taken : T.Fall;
        T = Terminator();
        T.K = Terminator::Kind::Goto;
        T.Taken = Dest;
        Changed = true;
      }
    }
  }
  if (Changed)
    G.computePreds();
  return Changed;
}

bool hgraph::instructionSimplifier(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    ConstTracker Consts;
    for (MInsn &I : B.Insns) {
      auto RewriteMov = [&I, &Changed](MRegIdx Src) {
        MRegIdx Dst = I.A;
        I = MInsn();
        I.Op = MOpcode::MMov;
        I.A = Dst;
        I.B = Src;
        Changed = true;
      };
      auto RewriteImm = [&I, &Changed](int64_t V) {
        MRegIdx Dst = I.A;
        I = MInsn();
        I.Op = MOpcode::MMovImmI;
        I.A = Dst;
        I.ImmI = V;
        Changed = true;
      };

      std::optional<int64_t> CB, CC;
      if (I.B != MNoReg)
        CB = Consts.get(I.B);
      if (I.C != MNoReg)
        CC = Consts.get(I.C);
      switch (I.Op) {
      case MOpcode::MAddI:
        if (CC && *CC == 0)
          RewriteMov(I.B);
        else if (CB && *CB == 0)
          RewriteMov(I.C);
        break;
      case MOpcode::MSubI:
        if (CC && *CC == 0)
          RewriteMov(I.B);
        else if (I.B == I.C)
          RewriteImm(0);
        break;
      case MOpcode::MMulI:
        if (CC && *CC == 1)
          RewriteMov(I.B);
        else if (CB && *CB == 1)
          RewriteMov(I.C);
        else if ((CC && *CC == 0) || (CB && *CB == 0))
          RewriteImm(0);
        else if (CC && *CC > 1 && (*CC & (*CC - 1)) == 0) {
          // x * 2^k  ->  x << k. Needs a fresh constant register; emit the
          // shift against an immediate via a two-step rewrite: the const
          // register already exists (it held the multiplier).
          int Shift = 0;
          int64_t V = *CC;
          while ((V >>= 1) > 0)
            ++Shift;
          // Reuse the multiplier register: it still holds 2^k, but we need
          // k. Only rewrite when k == 2^k (k in {1, 2}): too narrow to be
          // useful, so instead skip unless a register holding k is at hand.
          (void)Shift;
        }
        break;
      case MOpcode::MDivI:
        if (CC && *CC == 1)
          RewriteMov(I.B);
        break;
      case MOpcode::MXorI:
        if (I.B == I.C)
          RewriteImm(0);
        else if (CC && *CC == 0)
          RewriteMov(I.B);
        break;
      case MOpcode::MAndI:
        if (I.B == I.C)
          RewriteMov(I.B);
        break;
      case MOpcode::MOrI:
        if (I.B == I.C)
          RewriteMov(I.B);
        else if (CC && *CC == 0)
          RewriteMov(I.B);
        break;
      case MOpcode::MShlI:
      case MOpcode::MShrI:
        if (CC && *CC == 0)
          RewriteMov(I.B);
        break;
      case MOpcode::MMov:
        if (I.A == I.B) {
          I = MInsn(); // nop
          Changed = true;
        }
        break;
      default:
        break;
      }
      Consts.afterInsn(I);
    }
  }
  return Changed;
}

bool hgraph::copyPropagation(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    std::map<MRegIdx, MRegIdx> CopyOf; // dst -> original source
    auto Canonical = [&CopyOf](MRegIdx R) {
      auto It = CopyOf.find(R);
      return It == CopyOf.end() ? R : It->second;
    };
    auto InvalidateDefs = [&CopyOf](MRegIdx Def) {
      CopyOf.erase(Def);
      for (auto It = CopyOf.begin(); It != CopyOf.end();)
        It = It->second == Def ? CopyOf.erase(It) : std::next(It);
    };

    for (MInsn &I : B.Insns) {
      vm::forEachUseMut(I, [&](MRegIdx &R) {
        MRegIdx C = Canonical(R);
        if (C != R) {
          R = C;
          Changed = true;
        }
      });
      if (vm::definesA(I)) {
        InvalidateDefs(I.A);
        if (I.Op == MOpcode::MMov && I.A != I.B)
          CopyOf[I.A] = Canonical(I.B);
      }
    }

    Terminator &T = B.Term;
    if (T.K == Terminator::Kind::Cond || T.K == Terminator::Kind::Guard ||
        T.K == Terminator::Kind::Ret) {
      MRegIdx NB = Canonical(T.B);
      if (NB != T.B) {
        T.B = NB;
        Changed = true;
      }
      if (T.C != MNoReg) {
        MRegIdx NC = Canonical(T.C);
        if (NC != T.C) {
          T.C = NC;
          Changed = true;
        }
      }
    }
  }
  return Changed;
}

bool hgraph::localValueNumbering(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    // Key: opcode + operand registers + immediates. Value: register that
    // already holds the result. Invalidated when an operand is redefined.
    struct Key {
      MOpcode Op;
      MRegIdx B, C;
      int64_t ImmI;
      uint64_t ImmFBits;
      bool operator<(const Key &O) const {
        if (Op != O.Op) return Op < O.Op;
        if (B != O.B) return B < O.B;
        if (C != O.C) return C < O.C;
        if (ImmI != O.ImmI) return ImmI < O.ImmI;
        return ImmFBits < O.ImmFBits;
      }
    };
    std::map<Key, MRegIdx> Available;

    auto InvalidateUsesOf = [&Available](MRegIdx Def) {
      for (auto It = Available.begin(); It != Available.end();) {
        bool Kill = It->first.B == Def || It->first.C == Def ||
                    It->second == Def;
        It = Kill ? Available.erase(It) : std::next(It);
      }
    };

    for (MInsn &I : B.Insns) {
      if (!vm::isPureOp(I.Op) || I.A == MNoReg) {
        if (vm::definesA(I))
          InvalidateUsesOf(I.A);
        continue;
      }
      uint64_t FBits;
      static_assert(sizeof(FBits) == sizeof(I.ImmF), "bitcast size");
      __builtin_memcpy(&FBits, &I.ImmF, sizeof(FBits));
      Key K{I.Op, I.B, I.C, I.ImmI, FBits};
      auto It = Available.find(K);
      if (It != Available.end() && It->second != I.A) {
        MRegIdx Dst = I.A, Src = It->second;
        InvalidateUsesOf(Dst);
        I = MInsn();
        I.Op = MOpcode::MMov;
        I.A = Dst;
        I.B = Src;
        Changed = true;
        continue;
      }
      MRegIdx Def = I.A;
      InvalidateUsesOf(Def);
      Available[K] = Def;
    }
  }
  return Changed;
}

bool hgraph::localDeadCodeElimination(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    // Backward scan: a pure def is dead if the same register is redefined
    // later in the block with no read in between. Terminator reads happen
    // after any later redefinition, so they need no special casing: they
    // would erase from an (empty) set at the start of the backward walk.
    std::set<MRegIdx> PendingRedef; // redefined below, unread since

    for (size_t Pos = B.Insns.size(); Pos-- > 0;) {
      MInsn &I = B.Insns[Pos];
      bool Dead =
          vm::isPureOp(I.Op) && I.A != MNoReg && PendingRedef.count(I.A);

      if (Dead) {
        I = MInsn(); // nop
        Changed = true;
        continue;
      }
      if (vm::definesA(I)) {
        PendingRedef.insert(I.A);
      }
      vm::forEachUse(I, [&PendingRedef](MRegIdx R) {
        PendingRedef.erase(R);
      });
    }

    // Sweep nops.
    size_t Before = B.Insns.size();
    B.Insns.erase(std::remove_if(B.Insns.begin(), B.Insns.end(),
                                 [](const MInsn &I) {
                                   return I.Op == MOpcode::MNop;
                                 }),
                  B.Insns.end());
    Changed |= B.Insns.size() != Before;
  }
  return Changed;
}

bool hgraph::nullCheckElimination(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    std::set<MRegIdx> NonNull;
    for (MInsn &I : B.Insns) {
      if (I.Op == MOpcode::MCheckNull) {
        if (NonNull.count(I.B)) {
          I = MInsn();
          Changed = true;
          continue;
        }
        NonNull.insert(I.B);
        continue;
      }
      if (vm::definesA(I)) {
        NonNull.erase(I.A);
        if (I.Op == MOpcode::MNewInstance || I.Op == MOpcode::MNewArray)
          NonNull.insert(I.A);
      }
    }
    B.Insns.erase(std::remove_if(B.Insns.begin(), B.Insns.end(),
                                 [](const MInsn &I) {
                                   return I.Op == MOpcode::MNop;
                                 }),
                  B.Insns.end());
  }
  return Changed;
}

bool hgraph::boundsCheckElimination(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    std::set<std::pair<MRegIdx, MRegIdx>> Checked;
    for (MInsn &I : B.Insns) {
      if (I.Op == MOpcode::MCheckBounds) {
        auto Pair = std::make_pair(I.B, I.C);
        if (Checked.count(Pair)) {
          I = MInsn();
          Changed = true;
          continue;
        }
        Checked.insert(Pair);
        continue;
      }
      if (vm::definesA(I)) {
        for (auto It = Checked.begin(); It != Checked.end();)
          It = (It->first == I.A || It->second == I.A) ? Checked.erase(It)
                                                       : std::next(It);
      }
    }
    B.Insns.erase(std::remove_if(B.Insns.begin(), B.Insns.end(),
                                 [](const MInsn &I) {
                                   return I.Op == MOpcode::MNop;
                                 }),
                  B.Insns.end());
  }
  return Changed;
}

bool hgraph::loadStoreElimination(HGraph &G) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    // (object reg, slot) -> register holding the last stored/loaded value.
    std::map<std::pair<MRegIdx, uint32_t>, MRegIdx> SlotValue;
    // static slot -> register
    std::map<uint32_t, MRegIdx> StaticValue;

    auto InvalidateReg = [&](MRegIdx Def) {
      for (auto It = SlotValue.begin(); It != SlotValue.end();)
        It = (It->first.first == Def || It->second == Def)
                 ? SlotValue.erase(It)
                 : std::next(It);
      for (auto It = StaticValue.begin(); It != StaticValue.end();)
        It = It->second == Def ? StaticValue.erase(It) : std::next(It);
    };

    for (MInsn &I : B.Insns) {
      switch (I.Op) {
      case MOpcode::MStoreSlot:
        // Unknown aliasing between distinct object registers: clobber all
        // slot knowledge except this exact (obj, slot) pair.
        SlotValue.clear();
        SlotValue[{I.B, I.Idx}] = I.A;
        continue;
      case MOpcode::MLoadSlot: {
        auto It = SlotValue.find({I.B, I.Idx});
        if (It != SlotValue.end()) {
          MRegIdx Dst = I.A, Src = It->second;
          if (Dst != Src) {
            InvalidateReg(Dst);
            I = MInsn();
            I.Op = MOpcode::MMov;
            I.A = Dst;
            I.B = Src;
            Changed = true;
            continue;
          }
        }
        InvalidateReg(I.A);
        SlotValue[{I.B, I.Idx}] = I.A;
        continue;
      }
      case MOpcode::MStoreStatic:
        StaticValue[I.Idx] = I.A;
        continue;
      case MOpcode::MLoadStatic: {
        auto It = StaticValue.find(I.Idx);
        if (It != StaticValue.end() && It->second != I.A) {
          MRegIdx Dst = I.A, Src = It->second;
          InvalidateReg(Dst);
          I = MInsn();
          I.Op = MOpcode::MMov;
          I.A = Dst;
          I.B = Src;
          Changed = true;
          continue;
        }
        InvalidateReg(I.A);
        StaticValue[I.Idx] = I.A;
        continue;
      }
      default:
        break;
      }
      // Calls and array stores may write any memory.
      if (vm::isCallOp(I.Op) || I.Op == MOpcode::MAStore ||
          I.Op == MOpcode::MSafepoint) {
        SlotValue.clear();
        StaticValue.clear();
      }
      if (vm::definesA(I))
        InvalidateReg(I.A);
    }
  }
  return Changed;
}

bool hgraph::inlineTrivialCalls(HGraph &G, const dex::DexFile &File) {
  bool Changed = false;
  for (HBlock &B : G.Blocks) {
    std::vector<MInsn> NewInsns;
    NewInsns.reserve(B.Insns.size());
    for (const MInsn &I : B.Insns) {
      if (I.Op != MOpcode::MCallStatic) {
        NewInsns.push_back(I);
        continue;
      }
      const dex::Method &Callee = File.method(I.Idx);
      if (Callee.IsNative || Callee.Id == G.Method) {
        NewInsns.push_back(I);
        continue;
      }
      HGraph CalleeGraph = buildHGraph(File, I.Idx);
      if (CalleeGraph.Blocks.size() != 1 ||
          CalleeGraph.instructionCount() > 8) {
        NewInsns.push_back(I);
        continue;
      }
      const HBlock &Body = CalleeGraph.Blocks[0];
      bool HasCalls = false;
      for (const MInsn &CI : Body.Insns)
        if (vm::isCallOp(CI.Op))
          HasCalls = true;
      if (HasCalls) {
        NewInsns.push_back(I);
        continue;
      }

      // Remap callee registers: params -> argument registers, temps -> new.
      std::vector<MRegIdx> Map(CalleeGraph.NumRegs, MNoReg);
      for (unsigned P = 0; P != Callee.ParamCount; ++P)
        Map[P] = I.Args[P];
      for (MRegIdx R = Callee.ParamCount; R < CalleeGraph.NumRegs; ++R)
        Map[R] = G.newReg();

      // A parameter register may be written inside the callee, which would
      // clobber the caller's argument register. Give written params a
      // private copy.
      for (const MInsn &CI : Body.Insns)
        if (vm::definesA(CI) && CI.A < Callee.ParamCount) {
          MRegIdx Fresh = G.newReg();
          MInsn Copy;
          Copy.Op = MOpcode::MMov;
          Copy.A = Fresh;
          Copy.B = Map[CI.A];
          NewInsns.push_back(Copy);
          Map[CI.A] = Fresh;
        }

      for (MInsn CI : Body.Insns) {
        if (CI.Op == MOpcode::MSafepoint)
          continue; // entry poll is not needed when inlined
        if (vm::definesA(CI))
          CI.A = Map[CI.A];
        vm::forEachUseMut(CI, [&Map](MRegIdx &R) { R = Map[R]; });
        NewInsns.push_back(CI);
      }
      if (Body.Term.K == Terminator::Kind::Ret && I.A != MNoReg) {
        MInsn Mov;
        Mov.Op = MOpcode::MMov;
        Mov.A = I.A;
        Mov.B = Map[Body.Term.B];
        NewInsns.push_back(Mov);
      }
      Changed = true;
    }
    B.Insns = std::move(NewInsns);
  }
  return Changed;
}

unsigned hgraph::runAndroidPipeline(HGraph &G, const dex::DexFile &File) {
  unsigned Applied = 0;
  for (int Round = 0; Round != 3; ++Round) {
    bool Changed = false;
    Changed |= inlineTrivialCalls(G, File) && ++Applied;
    Changed |= constantFolding(G) && ++Applied;
    Changed |= instructionSimplifier(G) && ++Applied;
    Changed |= copyPropagation(G) && ++Applied;
    Changed |= localValueNumbering(G) && ++Applied;
    Changed |= nullCheckElimination(G) && ++Applied;
    Changed |= boundsCheckElimination(G) && ++Applied;
    Changed |= loadStoreElimination(G) && ++Applied;
    Changed |= localDeadCodeElimination(G) && ++Applied;
    if (!Changed)
      break;
  }
  std::string Error;
  [[maybe_unused]] bool Ok = G.verify(Error);
  assert(Ok && "android pipeline corrupted the graph");
  return Applied;
}
