//===- hgraph/AndroidCompiler.cpp - The stock compiler driver --------------===//

#include "hgraph/AndroidCompiler.h"

#include "hgraph/Build.h"
#include "hgraph/Codegen.h"
#include "hgraph/Passes.h"

using namespace ropt;
using namespace ropt::hgraph;

std::shared_ptr<vm::MachineFunction>
hgraph::compileMethodAndroid(const dex::DexFile &File,
                             dex::MethodId Method) {
  const dex::Method &M = File.method(Method);
  if (M.IsNative || M.isUncompilable())
    return nullptr;
  HGraph G = buildHGraph(File, Method);
  runAndroidPipeline(G, File);
  return emitMachine(G, RegAllocKind::Frequency);
}

void hgraph::compileAllAndroid(const dex::DexFile &File,
                               const std::vector<dex::MethodId> &Methods,
                               vm::CodeCache &Cache) {
  for (dex::MethodId Id : Methods)
    if (auto Fn = compileMethodAndroid(File, Id))
      Cache.install(std::move(Fn));
}
