//===- hgraph/Codegen.cpp - HGraph to machine code --------------------------===//

#include "hgraph/Codegen.h"

#include "vm/MachineUtil.h"

#include <cassert>

using namespace ropt;
using namespace ropt::hgraph;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;

std::shared_ptr<vm::MachineFunction>
hgraph::emitMachine(const HGraph &G, RegAllocKind RegAlloc) {
  auto Fn = std::make_shared<vm::MachineFunction>();
  Fn->Method = G.Method;
  Fn->Name = G.Name;
  Fn->NumRegs = G.NumRegs;
  Fn->ParamCount = G.ParamCount;
  Fn->ReturnsValue = G.ReturnsValue;

  // Layout: reachable blocks in reverse post order keeps fallthroughs
  // mostly adjacent and drops unreachable blocks.
  std::vector<uint32_t> Order = G.reversePostOrder();
  std::vector<int32_t> BlockStart(G.Blocks.size(), -1);
  std::vector<size_t> LayoutPos(G.Blocks.size(), ~size_t(0));
  for (size_t Pos = 0; Pos != Order.size(); ++Pos)
    LayoutPos[Order[Pos]] = Pos;

  struct Fixup {
    size_t InsnIndex;
    uint32_t Block;
  };
  std::vector<Fixup> Fixups;

  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    uint32_t Id = Order[Pos];
    const HBlock &B = G.Blocks[Id];
    BlockStart[Id] = static_cast<int32_t>(Fn->Code.size());
    for (const MInsn &I : B.Insns)
      if (I.Op != MOpcode::MNop)
        Fn->Code.push_back(I);

    uint32_t NextInLayout =
        Pos + 1 < Order.size() ? Order[Pos + 1] : ~0u;

    const Terminator &T = B.Term;
    switch (T.K) {
    case Terminator::Kind::Goto:
      if (T.Taken != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Fn->Code.push_back(J);
        Fixups.push_back({Fn->Code.size() - 1, T.Taken});
      }
      break;
    case Terminator::Kind::Cond: {
      MInsn Br;
      Br.Op = T.CondOp;
      Br.B = T.B;
      Br.C = T.C;
      Br.Hint = T.Hint;
      Fn->Code.push_back(Br);
      Fixups.push_back({Fn->Code.size() - 1, T.Taken});
      if (T.Fall != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Fn->Code.push_back(J);
        Fixups.push_back({Fn->Code.size() - 1, T.Fall});
      }
      break;
    }
    case Terminator::Kind::Guard: {
      MInsn Guard;
      Guard.Op = MOpcode::MGuardClass;
      Guard.B = T.B;
      Guard.Idx = T.GuardClass;
      Fn->Code.push_back(Guard);
      Fixups.push_back({Fn->Code.size() - 1, T.Taken});
      if (T.Fall != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Fn->Code.push_back(J);
        Fixups.push_back({Fn->Code.size() - 1, T.Fall});
      }
      break;
    }
    case Terminator::Kind::Ret: {
      MInsn R;
      R.Op = MOpcode::MRet;
      R.B = T.B;
      Fn->Code.push_back(R);
      break;
    }
    case Terminator::Kind::RetVoid: {
      MInsn R;
      R.Op = MOpcode::MRetVoid;
      Fn->Code.push_back(R);
      break;
    }
    }
  }

  for (const Fixup &F : Fixups) {
    assert(BlockStart[F.Block] >= 0 && "branch to unlaid block");
    Fn->Code[F.InsnIndex].Target = BlockStart[F.Block];
  }

  switch (RegAlloc) {
  case RegAllocKind::LinearScan:
    vm::allocateRegistersLinearScan(*Fn);
    break;
  case RegAllocKind::Frequency:
    vm::compactRegistersByFrequency(*Fn);
    break;
  case RegAllocKind::FirstUse:
    vm::compactRegistersByFirstUse(*Fn);
    break;
  case RegAllocKind::None:
    break;
  }
  return Fn;
}
