//===- hgraph/Build.h - Bytecode to HGraph construction ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the HGraph for a bytecode method, materializing the implicit
/// runtime semantics as explicit instructions: null checks before object
/// and array accesses, bounds checks before indexing, divisor checks before
/// division, a GC safepoint at method entry and on every loop back edge.
/// This is the form every downstream compiler pipeline starts from.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_HGRAPH_BUILD_H
#define ROPT_HGRAPH_BUILD_H

#include "hgraph/Hir.h"

namespace ropt {
namespace hgraph {

/// Builds the HGraph of \p Method. The method must be verified bytecode
/// (not native). Aborts on malformed input — run the dex verifier first.
HGraph buildHGraph(const dex::DexFile &File, dex::MethodId Method);

} // namespace hgraph
} // namespace ropt

#endif // ROPT_HGRAPH_BUILD_H
