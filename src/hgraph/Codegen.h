//===- hgraph/Codegen.h - HGraph to machine code -----------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linearizes an HGraph into an executable vm::MachineFunction: lays out
/// blocks, lowers terminators to branch instructions, patches targets, and
/// compacts virtual registers into the physical file.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_HGRAPH_CODEGEN_H
#define ROPT_HGRAPH_CODEGEN_H

#include "hgraph/Hir.h"

#include <memory>

namespace ropt {
namespace hgraph {

/// Register-compaction strategy applied at emission.
enum class RegAllocKind {
  LinearScan, ///< Live-interval allocation (default, strongest).
  Frequency,  ///< Hot registers get the physical file.
  FirstUse,   ///< Weaker first-come allocation.
  None,       ///< Keep virtual numbering (worst case; many spills).
};

/// Emits executable code for \p G.
std::shared_ptr<vm::MachineFunction>
emitMachine(const HGraph &G,
            RegAllocKind RegAlloc = RegAllocKind::LinearScan);

} // namespace hgraph
} // namespace ropt

#endif // ROPT_HGRAPH_CODEGEN_H
