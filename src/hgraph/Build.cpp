//===- hgraph/Build.cpp - Bytecode to HGraph construction ------------------===//

#include "hgraph/Build.h"

#include "vm/Heap.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ropt;
using namespace ropt::hgraph;
using namespace ropt::dex;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;

namespace {

/// Translates one If* bytecode opcode to the matching machine branch.
MOpcode branchOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq: case Opcode::IfEqz: return MOpcode::MIfEq;
  case Opcode::IfNe: case Opcode::IfNez: return MOpcode::MIfNe;
  case Opcode::IfLt: case Opcode::IfLtz: return MOpcode::MIfLt;
  case Opcode::IfLe: case Opcode::IfLez: return MOpcode::MIfLe;
  case Opcode::IfGt: case Opcode::IfGtz: return MOpcode::MIfGt;
  default: return MOpcode::MIfGe;
  }
}

/// Simple 1:1 opcode translations.
bool directOpcode(Opcode Op, MOpcode &Out) {
  switch (Op) {
  case Opcode::Move: Out = MOpcode::MMov; return true;
  case Opcode::AddI: Out = MOpcode::MAddI; return true;
  case Opcode::SubI: Out = MOpcode::MSubI; return true;
  case Opcode::MulI: Out = MOpcode::MMulI; return true;
  case Opcode::AndI: Out = MOpcode::MAndI; return true;
  case Opcode::OrI: Out = MOpcode::MOrI; return true;
  case Opcode::XorI: Out = MOpcode::MXorI; return true;
  case Opcode::ShlI: Out = MOpcode::MShlI; return true;
  case Opcode::ShrI: Out = MOpcode::MShrI; return true;
  case Opcode::NegI: Out = MOpcode::MNegI; return true;
  case Opcode::AddF: Out = MOpcode::MAddF; return true;
  case Opcode::SubF: Out = MOpcode::MSubF; return true;
  case Opcode::MulF: Out = MOpcode::MMulF; return true;
  case Opcode::DivF: Out = MOpcode::MDivF; return true;
  case Opcode::NegF: Out = MOpcode::MNegF; return true;
  case Opcode::CmpF: Out = MOpcode::MCmpF; return true;
  case Opcode::SqrtF: Out = MOpcode::MSqrtF; return true;
  case Opcode::I2F: Out = MOpcode::MI2F; return true;
  case Opcode::F2I: Out = MOpcode::MF2I; return true;
  default: return false;
  }
}

MInsn make(MOpcode Op, vm::MRegIdx A = MNoReg, vm::MRegIdx B = MNoReg,
           vm::MRegIdx C = MNoReg) {
  MInsn I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  I.C = C;
  return I;
}

} // namespace

HGraph hgraph::buildHGraph(const DexFile &File, MethodId Method) {
  const dex::Method &M = File.method(Method);
  assert(!M.IsNative && "cannot build a graph for a native method");

  HGraph G;
  G.Method = Method;
  G.Name = M.Name;
  G.NumRegs = M.RegCount;
  G.ParamCount = M.ParamCount;
  G.ReturnsValue = M.ReturnsValue;

  // --- Leader detection ----------------------------------------------------
  std::map<uint32_t, uint32_t> LeaderToBlock; // bytecode pc -> block id
  LeaderToBlock[0] = 0;
  for (size_t Pc = 0; Pc != M.Code.size(); ++Pc) {
    const Insn &I = M.Code[Pc];
    if (dex::isBranch(I.Op)) {
      LeaderToBlock[static_cast<uint32_t>(I.Target)] = 0;
      if (Pc + 1 < M.Code.size())
        LeaderToBlock[static_cast<uint32_t>(Pc + 1)] = 0;
    } else if (dex::isReturn(I.Op) && Pc + 1 < M.Code.size()) {
      LeaderToBlock[static_cast<uint32_t>(Pc + 1)] = 0;
    }
  }
  uint32_t NextId = 0;
  for (auto &KV : LeaderToBlock)
    KV.second = NextId++;
  G.Blocks.resize(LeaderToBlock.size());

  auto BlockAt = [&LeaderToBlock](uint32_t Pc) {
    auto It = LeaderToBlock.find(Pc);
    assert(It != LeaderToBlock.end() && "branch to a non-leader pc");
    return It->second;
  };

  // --- Translation -----------------------------------------------------------
  for (auto It = LeaderToBlock.begin(); It != LeaderToBlock.end(); ++It) {
    uint32_t StartPc = It->first;
    uint32_t BlockId = It->second;
    auto NextIt = std::next(It);
    uint32_t EndPc = NextIt == LeaderToBlock.end()
                         ? static_cast<uint32_t>(M.Code.size())
                         : NextIt->first;
    HBlock &B = G.Blocks[BlockId];
    B.StartPc = StartPc;
    bool Terminated = false;

    for (uint32_t Pc = StartPc; Pc != EndPc && !Terminated; ++Pc) {
      const Insn &I = M.Code[Pc];
      MOpcode Direct;
      if (directOpcode(I.Op, Direct)) {
        B.Insns.push_back(make(Direct, I.A, I.B, I.C));
        continue;
      }
      switch (I.Op) {
      case Opcode::Nop:
        break;
      case Opcode::ConstI: {
        MInsn MI = make(MOpcode::MMovImmI, I.A);
        MI.ImmI = I.ImmI;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::ConstF: {
        MInsn MI = make(MOpcode::MMovImmF, I.A);
        MI.ImmF = I.ImmF;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::ConstNull: {
        MInsn MI = make(MOpcode::MMovImmI, I.A);
        MI.ImmI = 0;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::DivI:
      case Opcode::RemI:
        B.Insns.push_back(make(MOpcode::MCheckDiv, MNoReg, I.C));
        B.Insns.push_back(make(I.Op == Opcode::DivI ? MOpcode::MDivI
                                                    : MOpcode::MRemI,
                               I.A, I.B, I.C));
        break;

      case Opcode::Goto:
        B.Term.K = Terminator::Kind::Goto;
        B.Term.Taken = BlockAt(static_cast<uint32_t>(I.Target));
        Terminated = true;
        break;
      case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
      case Opcode::IfLe: case Opcode::IfGt: case Opcode::IfGe:
      case Opcode::IfEqz: case Opcode::IfNez: case Opcode::IfLtz:
      case Opcode::IfLez: case Opcode::IfGtz: case Opcode::IfGez:
        B.Term.K = Terminator::Kind::Cond;
        B.Term.CondOp = branchOpcode(I.Op);
        B.Term.B = I.B;
        B.Term.C = I.C;
        B.Term.Taken = BlockAt(static_cast<uint32_t>(I.Target));
        B.Term.Fall = BlockAt(Pc + 1);
        Terminated = true;
        break;

      case Opcode::Ret:
        B.Term.K = Terminator::Kind::Ret;
        B.Term.B = I.B;
        Terminated = true;
        break;
      case Opcode::RetVoid:
        B.Term.K = Terminator::Kind::RetVoid;
        Terminated = true;
        break;

      case Opcode::InvokeStatic:
      case Opcode::InvokeVirtual:
      case Opcode::InvokeNative: {
        MInsn Call;
        if (I.Op == Opcode::InvokeVirtual) {
          B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.Args[0]));
          Call.Op = MOpcode::MCallVirtual;
        } else {
          Call.Op = I.Op == Opcode::InvokeStatic ? MOpcode::MCallStatic
                                                 : MOpcode::MCallNative;
        }
        Call.A = I.A == dex::NoReg ? MNoReg : I.A;
        Call.Idx = I.Idx;
        Call.Site = Pc; // profile key for speculative devirtualization
        Call.ArgCount = I.ArgCount;
        for (unsigned N = 0; N != I.ArgCount; ++N)
          Call.Args[N] = I.Args[N];
        B.Insns.push_back(Call);
        break;
      }

      case Opcode::NewInstance: {
        MInsn MI = make(MOpcode::MNewInstance, I.A);
        MI.Idx = I.Idx;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::NewArrayI:
      case Opcode::NewArrayF:
      case Opcode::NewArrayR: {
        MInsn MI = make(MOpcode::MNewArray, I.A, I.B);
        MI.Idx = static_cast<uint32_t>(
            I.Op == Opcode::NewArrayI   ? vm::ObjKind::ArrayI
            : I.Op == Opcode::NewArrayF ? vm::ObjKind::ArrayF
                                        : vm::ObjKind::ArrayR);
        B.Insns.push_back(MI);
        break;
      }

      case Opcode::ALoadI: case Opcode::ALoadF: case Opcode::ALoadR:
        B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.B));
        B.Insns.push_back(make(MOpcode::MCheckBounds, MNoReg, I.B, I.C));
        B.Insns.push_back(make(MOpcode::MALoad, I.A, I.B, I.C));
        break;
      case Opcode::AStoreI: case Opcode::AStoreF: case Opcode::AStoreR:
        B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.B));
        B.Insns.push_back(make(MOpcode::MCheckBounds, MNoReg, I.B, I.C));
        B.Insns.push_back(make(MOpcode::MAStore, I.A, I.B, I.C));
        break;
      case Opcode::ArrayLen:
        B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.B));
        B.Insns.push_back(make(MOpcode::MArrayLen, I.A, I.B));
        break;

      case Opcode::GetFieldI: case Opcode::GetFieldF:
      case Opcode::GetFieldR: {
        B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.B));
        MInsn MI = make(MOpcode::MLoadSlot, I.A, I.B);
        MI.Idx = File.field(I.Idx).SlotIndex;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::PutFieldI: case Opcode::PutFieldF:
      case Opcode::PutFieldR: {
        B.Insns.push_back(make(MOpcode::MCheckNull, MNoReg, I.B));
        MInsn MI = make(MOpcode::MStoreSlot, I.A, I.B);
        MI.Idx = File.field(I.Idx).SlotIndex;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::GetStaticI: case Opcode::GetStaticF:
      case Opcode::GetStaticR: {
        MInsn MI = make(MOpcode::MLoadStatic, I.A);
        MI.Idx = I.Idx;
        B.Insns.push_back(MI);
        break;
      }
      case Opcode::PutStaticI: case Opcode::PutStaticF:
      case Opcode::PutStaticR: {
        MInsn MI = make(MOpcode::MStoreStatic, I.A);
        MI.Idx = I.Idx;
        B.Insns.push_back(MI);
        break;
      }

      default:
        // Opcodes with a direct translation were handled before the
        // switch; anything else here is a builder bug.
        assert(false && "unhandled opcode in HGraph construction");
        break;
      }
    }

    // Fell through to the next leader: explicit goto.
    if (!Terminated) {
      assert(EndPc < M.Code.size() && "verified code cannot fall off");
      B.Term.K = Terminator::Kind::Goto;
      B.Term.Taken = BlockAt(EndPc);
    }
  }

  // --- Safepoints ---------------------------------------------------------
  // Method entry poll, and a poll on every loop back edge (a terminator
  // that targets a block starting at a lower or equal bytecode pc).
  G.Blocks[0].Insns.insert(G.Blocks[0].Insns.begin(),
                           make(MOpcode::MSafepoint));
  for (HBlock &B : G.Blocks) {
    bool BackEdge = false;
    for (uint32_t Succ : B.Term.successors())
      if (G.Blocks[Succ].StartPc <= B.StartPc)
        BackEdge = true;
    if (BackEdge)
      B.Insns.push_back(make(MOpcode::MSafepoint));
  }

  G.computePreds();
  std::string Error;
  [[maybe_unused]] bool Ok = G.verify(Error);
  assert(Ok && "builder produced a malformed graph");
  return G;
}
