//===- search/EvaluationEngine.h - Parallel, memoizing fitness --*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one way fitness is computed: a concurrent, memoizing evaluation
/// engine between the GA and the replay backends. The paper's search
/// burns 550 replay evaluations per app and halts after 100 *identical*
/// binaries — an admission that the search keeps recompiling and
/// re-replaying duplicates. The engine removes both costs:
///
///  - **Parallelism.** Each batch is split into a compile stage and a
///    measure (replay) stage, both fanned out over a fixed ThreadPool.
///    Every worker slot owns its own EvalBackend — its own replay sandbox
///    and RNGs — so no VM or kernel state is ever shared between threads.
///
///  - **Memoization.** A two-level cache: canonicalized genome -> compile
///    outcome (so textually equal pipelines compile once), and binary
///    hash -> Evaluation (so *different* genomes producing the same
///    machine code cost a hash lookup instead of ReplaysPerEvaluation
///    replays).
///
///  - **Racing (adaptive measurement).** With `EngineOptions::Racing`,
///    the fixed replays-per-evaluation budget becomes an incumbent-
///    relative race: every fresh binary gets a seed block of MinReplays
///    samples, then a sequential rank test against the incumbent's
///    samples (alpha spent geometrically across escalation rounds, so
///    the family-wise error of the whole race stays at RacingAlpha)
///    either terminates it early as a statistically-clear loser,
///    escalates it by another block, or caps it at MaxReplays as a
///    contender. Cached evaluations keep their samples and are topped
///    up to the full budget only when the GA announces them as the
///    incumbent.
///
///  - **Determinism.** Work lists, cache commits and every racing
///    decision happen in batch order on the calling thread; workers only
///    fill pre-assigned slots. Measurement noise is seeded from (engine
///    seed, binary hash, sample index), never from scheduling order. A
///    seeded run is therefore bit-identical at any `--jobs` value.
///
/// Replay failures surface as typed support::Error values; the engine
/// maps them onto EvalKind in exactly one place (evalKindForError).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SEARCH_EVALUATION_ENGINE_H
#define ROPT_SEARCH_EVALUATION_ENGINE_H

#include "search/GeneticSearch.h"
#include "support/Result.h"

#include <memory>
#include <unordered_map>

namespace ropt {

class ThreadPool;

namespace search {

/// One compiled genome, as produced by a backend worker.
struct CompiledBinary {
  bool Ok = false;
  uint64_t BinaryHash = 0;
  uint64_t CodeSize = 0;
  /// Backend-defined compiled artifact consumed by measureBinary();
  /// immutable once built, so it may be measured by any worker.
  std::shared_ptr<const void> Artifact;
};

/// Fork-server replay-session accounting, aggregated by the engine across
/// its backends (all zeros for backends without sessions). Mirrors
/// replay::SessionStats without making the search layer depend on replay.
struct ReplayBackendStats {
  uint64_t SessionsCreated = 0;
  uint64_t SessionReplays = 0;
  uint64_t FreshReplays = 0;
  uint64_t DeltaResets = 0;
  uint64_t PagesReverted = 0;
  uint64_t FullRebuilds = 0;

  ReplayBackendStats &operator+=(const ReplayBackendStats &O) {
    SessionsCreated += O.SessionsCreated;
    SessionReplays += O.SessionReplays;
    FreshReplays += O.FreshReplays;
    DeltaResets += O.DeltaResets;
    PagesReverted += O.PagesReverted;
    FullRebuilds += O.FullRebuilds;
    return *this;
  }

  double pagesPerReset() const {
    return DeltaResets ? static_cast<double>(PagesReverted) /
                             static_cast<double>(DeltaResets)
                       : 0.0;
  }

  bool any() const {
    return SessionsCreated || SessionReplays || FreshReplays ||
           DeltaResets || FullRebuilds;
  }
};

/// Per-worker compile+measure backend. The engine constructs one backend
/// per worker slot and guarantees a backend is never driven by two
/// threads at once, so implementations may keep mutable state (replay
/// sandboxes, ASLR RNGs) without synchronization. Everything a backend
/// reads from its construction context (dex file, captures, verification
/// maps, config) must be immutable for the engine's lifetime.
class EvalBackend {
public:
  virtual ~EvalBackend() = default;

  virtual CompiledBinary compileGenome(const Genome &G) = 0;

  /// Replays/measures a compiled binary, drawing \p SampleCount raw
  /// timing samples. \p NoiseSeed is a pure function of binary identity
  /// and sample \c i must be a pure function of (NoiseSeed, i), making
  /// the samples independent of scheduling, worker count, and of how the
  /// total draw is split into racing blocks. The returned evaluation
  /// carries the *raw* samples (the engine owns outlier removal),
  /// BaseCycles, and SamplesSpent = \p SampleCount.
  virtual Evaluation measureBinary(const CompiledBinary &B,
                                   uint64_t NoiseSeed,
                                   size_t SampleCount) = 0;

  /// Draws raw samples [\p Begin, \p Begin + \p Count) for an
  /// already-measured binary, without its compiled artifact — a pure
  /// function of (NoiseSeed, index, E.BaseCycles). Racing uses this to
  /// escalate a candidate by another block and to top up a memoized
  /// incumbent whose artifact is long gone.
  virtual std::vector<double> extendSamples(const Evaluation &E,
                                            uint64_t NoiseSeed,
                                            size_t Begin, size_t Count) = 0;

  /// Fork-server session accounting for this backend; default for
  /// backends that do not replay (or run sessions off) is all-zeros.
  virtual ReplayBackendStats replayStats() const { return {}; }
};

/// The single mapping from typed capture/replay errors onto the GA's
/// outcome classification.
EvalKind evalKindForError(support::ErrorCode Code);

struct EngineOptions {
  int Jobs = 0;        ///< Worker threads; 0 = hardware concurrency.
  bool Memoize = true; ///< The two-level genome/binary cache.

  /// Adaptive measurement racing. Off: every fresh binary pays exactly
  /// MaxReplays samples (the paper's fixed budget). On: fresh binaries
  /// start with MinReplays and race the incumbent for the rest.
  bool Racing = false;
  int MinReplays = 3;  ///< Racing seed block (and escalation block) size.
  int MaxReplays = 10; ///< Measurement budget per binary.
  /// Family-wise significance level of one binary's whole race; spent
  /// across escalation rounds via racingRoundAlpha().
  double RacingAlpha = 0.05;
};

/// Replay-budget accounting, kept in both modes so ablations can compare
/// racing against the fixed budget it replaces.
struct EngineRacingStats {
  uint64_t ReplaysSpent = 0; ///< Raw measurement samples actually drawn.
  /// What the same fresh measurements would have cost at a fixed
  /// MaxReplays budget (equals ReplaysSpent when racing is off).
  uint64_t FixedBudget = 0;
  uint64_t EarlyStops = 0;  ///< Races ended as statistically-clear losers.
  uint64_t Escalations = 0; ///< Blocks granted beyond the seed block.
  uint64_t TopUps = 0;      ///< Incumbents topped up to the full budget.

  uint64_t saved() const {
    return FixedBudget > ReplaysSpent ? FixedBudget - ReplaysSpent : 0;
  }
};

/// Outcome classes over every evaluation the engine answered (cache hits
/// included, matching the old per-call RegionEvaluator counters).
struct EngineCounters {
  int Ok = 0;
  int CompileError = 0;
  int RuntimeCrash = 0;
  int RuntimeTimeout = 0;
  int WrongOutput = 0;

  int total() const {
    return Ok + CompileError + RuntimeCrash + RuntimeTimeout + WrongOutput;
  }

  /// Tallies one evaluation outcome (Unevaluated is not counted).
  void count(EvalKind K);

  EngineCounters &operator+=(const EngineCounters &O) {
    Ok += O.Ok;
    CompileError += O.CompileError;
    RuntimeCrash += O.RuntimeCrash;
    RuntimeTimeout += O.RuntimeTimeout;
    WrongOutput += O.WrongOutput;
    return *this;
  }
};

struct EngineCacheStats {
  uint64_t GenomeHits = 0; ///< Answered by the genome-level cache.
  uint64_t BinaryHits = 0; ///< Fresh compile, but the binary was known.
  uint64_t Misses = 0;     ///< Paid a fresh compile (and replays if Ok).

  uint64_t hits() const { return GenomeHits + BinaryHits; }
};

class EvaluationEngine : public BatchEvaluator {
public:
  using BackendFactory = std::function<std::unique_ptr<EvalBackend>()>;

  /// \p Seed feeds per-binary measurement-noise streams; pass the
  /// pipeline seed so runs stay reproducible.
  EvaluationEngine(BackendFactory Factory, EngineOptions Options,
                   uint64_t Seed);
  ~EvaluationEngine() override;

  std::vector<Evaluation>
  evaluateBatch(const std::vector<Genome> &Genomes) override;

  /// Installs the search's best-so-far as the racing reference and tops
  /// its samples up to the full budget (no-op when racing is off).
  Evaluation announceIncumbent(const Evaluation &E) override;

  /// Worker threads the engine schedules over.
  size_t jobs() const;

  const EngineCounters &counters() const { return Stats; }
  const EngineCacheStats &cacheStats() const { return Cache; }
  const EngineRacingStats &racingStats() const { return Racing; }
  /// Sum of replayStats() over every backend built so far.
  ReplayBackendStats replayBackendStats() const;

private:
  struct GenomeEntry {
    bool Ok = false;
    uint64_t BinaryHash = 0;
  };

  /// Lazily constructs backends for slots [0, Count).
  void ensureBackends(size_t Count);
  uint64_t noiseSeed(uint64_t BinaryHash) const;
  /// Rebuilds the public (outlier-cleaned) sample view of \p E from the
  /// raw samples stored for its binary hash.
  void finalizeFromRaw(Evaluation &E) const;
  /// Races freshly-measured Ok binaries (\p Racers, in batch order, raw
  /// seed blocks already in RawSamples) against the incumbent: serial
  /// per-round decisions, parallel block draws.
  void raceFreshBinaries(const std::vector<Evaluation *> &Racers);

  BackendFactory Factory;
  EngineOptions Options;
  uint64_t Seed;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<EvalBackend>> Backends;

  /// Level 1: canonical genome key -> compile outcome.
  std::unordered_map<std::string, GenomeEntry> GenomeCache;
  /// Level 2: binary hash -> full evaluation.
  std::unordered_map<uint64_t, Evaluation> BinaryCache;
  /// Raw (pre-outlier-removal) samples per measured binary hash; the
  /// substrate racing extends deterministically block by block.
  std::unordered_map<uint64_t, std::vector<double>> RawSamples;
  /// Cleaned samples of the search's announced best-so-far — the
  /// reference every race tests against. Empty until the first
  /// announceIncumbent().
  std::vector<double> IncumbentSamples;

  EngineCounters Stats;
  EngineCacheStats Cache;
  EngineRacingStats Racing;
};

} // namespace search
} // namespace ropt

#endif // ROPT_SEARCH_EVALUATION_ENGINE_H
