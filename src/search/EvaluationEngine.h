//===- search/EvaluationEngine.h - Parallel, memoizing fitness --*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one way fitness is computed: a concurrent, memoizing evaluation
/// engine between the GA and the replay backends. The paper's search
/// burns 550 replay evaluations per app and halts after 100 *identical*
/// binaries — an admission that the search keeps recompiling and
/// re-replaying duplicates. The engine removes both costs:
///
///  - **Parallelism.** Each batch is split into a compile stage and a
///    measure (replay) stage, both fanned out over a fixed ThreadPool.
///    Every worker slot owns its own EvalBackend — its own replay sandbox
///    and RNGs — so no VM or kernel state is ever shared between threads.
///
///  - **Memoization.** A two-level cache: canonicalized genome -> compile
///    outcome (so textually equal pipelines compile once), and binary
///    hash -> Evaluation (so *different* genomes producing the same
///    machine code cost a hash lookup instead of ReplaysPerEvaluation
///    replays).
///
///  - **Determinism.** Work lists and cache commits happen in batch
///    order on the calling thread; workers only fill pre-assigned slots.
///    Measurement noise is seeded from (engine seed, binary hash), never
///    from scheduling order. A seeded run is therefore bit-identical at
///    any `--jobs` value.
///
/// Replay failures surface as typed support::Error values; the engine
/// maps them onto EvalKind in exactly one place (evalKindForError).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SEARCH_EVALUATION_ENGINE_H
#define ROPT_SEARCH_EVALUATION_ENGINE_H

#include "search/GeneticSearch.h"
#include "support/Result.h"

#include <memory>
#include <unordered_map>

namespace ropt {

class ThreadPool;

namespace search {

/// One compiled genome, as produced by a backend worker.
struct CompiledBinary {
  bool Ok = false;
  uint64_t BinaryHash = 0;
  uint64_t CodeSize = 0;
  /// Backend-defined compiled artifact consumed by measureBinary();
  /// immutable once built, so it may be measured by any worker.
  std::shared_ptr<const void> Artifact;
};

/// Per-worker compile+measure backend. The engine constructs one backend
/// per worker slot and guarantees a backend is never driven by two
/// threads at once, so implementations may keep mutable state (replay
/// sandboxes, ASLR RNGs) without synchronization. Everything a backend
/// reads from its construction context (dex file, captures, verification
/// maps, config) must be immutable for the engine's lifetime.
class EvalBackend {
public:
  virtual ~EvalBackend() = default;

  virtual CompiledBinary compileGenome(const Genome &G) = 0;

  /// Replays/measures a compiled binary. \p NoiseSeed is a pure function
  /// of binary identity, making the returned samples independent of
  /// scheduling and worker count.
  virtual Evaluation measureBinary(const CompiledBinary &B,
                                   uint64_t NoiseSeed) = 0;
};

/// The single mapping from typed capture/replay errors onto the GA's
/// outcome classification.
EvalKind evalKindForError(support::ErrorCode Code);

struct EngineOptions {
  int Jobs = 0;        ///< Worker threads; 0 = hardware concurrency.
  bool Memoize = true; ///< The two-level genome/binary cache.
};

/// Outcome classes over every evaluation the engine answered (cache hits
/// included, matching the old per-call RegionEvaluator counters).
struct EngineCounters {
  int Ok = 0;
  int CompileError = 0;
  int RuntimeCrash = 0;
  int RuntimeTimeout = 0;
  int WrongOutput = 0;

  int total() const {
    return Ok + CompileError + RuntimeCrash + RuntimeTimeout + WrongOutput;
  }

  /// Tallies one evaluation outcome (Unevaluated is not counted).
  void count(EvalKind K);

  EngineCounters &operator+=(const EngineCounters &O) {
    Ok += O.Ok;
    CompileError += O.CompileError;
    RuntimeCrash += O.RuntimeCrash;
    RuntimeTimeout += O.RuntimeTimeout;
    WrongOutput += O.WrongOutput;
    return *this;
  }
};

struct EngineCacheStats {
  uint64_t GenomeHits = 0; ///< Answered by the genome-level cache.
  uint64_t BinaryHits = 0; ///< Fresh compile, but the binary was known.
  uint64_t Misses = 0;     ///< Paid a fresh compile (and replays if Ok).

  uint64_t hits() const { return GenomeHits + BinaryHits; }
};

class EvaluationEngine : public BatchEvaluator {
public:
  using BackendFactory = std::function<std::unique_ptr<EvalBackend>()>;

  /// \p Seed feeds per-binary measurement-noise streams; pass the
  /// pipeline seed so runs stay reproducible.
  EvaluationEngine(BackendFactory Factory, EngineOptions Options,
                   uint64_t Seed);
  ~EvaluationEngine() override;

  std::vector<Evaluation>
  evaluateBatch(const std::vector<Genome> &Genomes) override;

  /// Worker threads the engine schedules over.
  size_t jobs() const;

  const EngineCounters &counters() const { return Stats; }
  const EngineCacheStats &cacheStats() const { return Cache; }

private:
  struct GenomeEntry {
    bool Ok = false;
    uint64_t BinaryHash = 0;
  };

  /// Lazily constructs backends for slots [0, Count).
  void ensureBackends(size_t Count);
  uint64_t noiseSeed(uint64_t BinaryHash) const;

  BackendFactory Factory;
  EngineOptions Options;
  uint64_t Seed;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<EvalBackend>> Backends;

  /// Level 1: canonical genome key -> compile outcome.
  std::unordered_map<std::string, GenomeEntry> GenomeCache;
  /// Level 2: binary hash -> full evaluation.
  std::unordered_map<uint64_t, Evaluation> BinaryCache;

  EngineCounters Stats;
  EngineCacheStats Cache;
};

} // namespace search
} // namespace ropt

#endif // ROPT_SEARCH_EVALUATION_ENGINE_H
