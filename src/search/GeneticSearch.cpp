//===- search/GeneticSearch.cpp - The GA over the pass space ----------------===//

#include "search/GeneticSearch.h"

#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::search;

const char *search::evalKindName(EvalKind K) {
  switch (K) {
  case EvalKind::Ok: return "ok";
  case EvalKind::CompileError: return "compile-error";
  case EvalKind::RuntimeCrash: return "runtime-crash";
  case EvalKind::RuntimeTimeout: return "runtime-timeout";
  case EvalKind::WrongOutput: return "wrong-output";
  }
  return "unknown";
}

GeneticSearch::GeneticSearch(GaConfig Config, uint64_t Seed,
                             EvaluateFn Evaluate)
    : Config(Config), R(Seed), Evaluate(std::move(Evaluate)) {}

Evaluation GeneticSearch::evaluate(const Genome &G, int Generation,
                                   GaTrace *Trace) {
  Evaluation E = Evaluate(G);
  if (E.ok() && !SeenBinaries.insert(E.BinaryHash).second)
    ++IdenticalCount;
  if (Trace) {
    TraceEntry T;
    T.Generation = Generation;
    T.Valid = E.ok();
    T.MedianCycles = E.ok() ? E.MedianCycles : 0.0;
    Trace->Evaluations.push_back(T);
  }

  // The generation log. MeanCycles carries the running sum until run()
  // finalizes it into a mean.
  if (static_cast<size_t>(Generation) >= GenStats.size())
    GenStats.resize(static_cast<size_t>(Generation) + 1);
  GenerationStats &S = GenStats[static_cast<size_t>(Generation)];
  S.Generation = Generation;
  ++S.Evaluations;
  if (!E.ok()) {
    ++S.Invalid;
  } else {
    if (S.valid() == 1 || E.MedianCycles < S.BestCycles)
      S.BestCycles = E.MedianCycles;
    if (S.valid() == 1 || E.MedianCycles > S.WorstCycles)
      S.WorstCycles = E.MedianCycles;
    S.MeanCycles += E.MedianCycles;
  }

  ROPT_METRIC_INC("search.evaluations");
  if (E.ok())
    ROPT_METRIC_INC("search.genomes_accepted");
  else
    ROPT_METRIC_INC("search.genomes_rejected");
  return E;
}

bool GeneticSearch::better(const Evaluation &A, const Evaluation &B) const {
  if (A.ok() != B.ok())
    return A.ok();
  if (!A.ok())
    return false;
  if (significantlyLess(A.Samples, B.Samples, Config.SignificanceAlpha))
    return true;
  if (significantlyLess(B.Samples, A.Samples, Config.SignificanceAlpha))
    return false;
  // Statistically indistinguishable: prefer the smaller binary.
  return A.CodeSize < B.CodeSize;
}

void GeneticSearch::sortByFitness(std::vector<Scored> &Population) const {
  std::stable_sort(Population.begin(), Population.end(),
                   [this](const Scored &A, const Scored &B) {
                     return better(A.E, B.E);
                   });
}

const Scored *
GeneticSearch::selectMate(const std::vector<Scored> &Population,
                          Rng &Rand) const {
  assert(!Population.empty());
  // Three pipelines, chosen uniformly per mating (Section 3.6).
  switch (Rand.below(3)) {
  case 0: { // elites only
    size_t Elites = std::min<size_t>(
        std::max<size_t>(1, Config.EliteCount), Population.size());
    return &Population[Rand.below(Elites)];
  }
  case 1: // fittest only
    return &Population.front();
  default: { // tournament selection
    std::vector<size_t> Candidates;
    for (int I = 0; I != Config.TournamentSize; ++I)
      Candidates.push_back(
          static_cast<size_t>(Rand.below(Population.size())));
    std::sort(Candidates.begin(), Candidates.end());
    // Pick the best with probability p, second best with p(1-p), ...
    for (size_t N = 0; N + 1 < Candidates.size(); ++N)
      if (Rand.chance(Config.TournamentProb))
        return &Population[Candidates[N]];
    return &Population[Candidates.back()];
  }
  }
}

std::optional<Scored> GeneticSearch::run(double AndroidCycles,
                                         double O3Cycles, GaTrace *Trace) {
  ROPT_TRACE_SPAN("search.run");
  SeenBinaries.clear();
  GenStats.clear();
  IdenticalCount = 0;

  double BaselineBar = std::min(AndroidCycles, O3Cycles);

  // --- Generation 0: random, with replacement biasing. -------------------
  std::vector<Scored> Population;
  {
    ROPT_TRACE_SPAN_V("search.generation", 0);
    for (int I = 0; I != Config.PopulationSize; ++I) {
      Genome G = randomGenome(R, Config.Genomes);
      removeRedundantPasses(G);
      Evaluation E = evaluate(G, 0, Trace);
      // Retry genomes slower than both baselines up to N times, biasing the
      // search toward profitable space (Section 4).
      for (int Retry = 0; Retry != Config.Gen0ReplacementRetries; ++Retry) {
        bool Poor = !E.ok() || E.MedianCycles > BaselineBar;
        if (!Poor)
          break;
        G = randomGenome(R, Config.Genomes);
        removeRedundantPasses(G);
        E = evaluate(G, 0, Trace);
      }
      Population.push_back(Scored{std::move(G), std::move(E)});
    }
  }
  sortByFitness(Population);

  // --- Generations 1..N-1. -----------------------------------------------
  for (int Gen = 1; Gen < Config.Generations; ++Gen) {
    if (IdenticalCount >= Config.MaxIdenticalBinaries) {
      if (Trace)
        Trace->HaltedOnIdentical = true;
      break;
    }
    ROPT_TRACE_SPAN_V("search.generation", Gen);
    std::vector<Scored> Next;
    // Elitism: the best genomes survive unchanged (no re-evaluation).
    for (int E = 0; E < Config.EliteCount &&
                    static_cast<size_t>(E) < Population.size();
         ++E)
      Next.push_back(Population[static_cast<size_t>(E)]);

    while (static_cast<int>(Next.size()) < Config.PopulationSize) {
      const Scored *MateA = selectMate(Population, R);
      const Scored *MateB = selectMate(Population, R);
      Genome Child = crossover(MateA->G, MateB->G, R, Config.Genomes);
      if (R.chance(Config.GenomeMutationProb))
        mutate(Child, R, Config.Genomes);
      Evaluation E = evaluate(Child, Gen, Trace);
      Next.push_back(Scored{std::move(Child), std::move(E)});
      if (IdenticalCount >= Config.MaxIdenticalBinaries)
        break;
    }
    Population = std::move(Next);
    sortByFitness(Population);
    if (!Population.empty() && Population.front().E.ok()) {
      ROPT_TRACE_COUNTER("search.best_cycles",
                         Population.front().E.MedianCycles);
      ROPT_METRIC_GAUGE_SET("search.best_cycles",
                            Population.front().E.MedianCycles);
    }
  }

  if (Trace)
    Trace->IdenticalBinaries = IdenticalCount;
  ROPT_METRIC_ADD("search.identical_binaries", IdenticalCount);

  if (Population.empty() || !Population.front().E.ok()) {
    finalizeGenerationStats(Trace);
    return std::nullopt;
  }

  // --- Hill climbing from the best genome. --------------------------------
  ROPT_TRACE_SPAN("search.hillclimb");
  Scored Best = Population.front();
  for (int Round = 0; Round != Config.HillClimbRounds; ++Round) {
    bool Improved = false;
    // Neighborhood: drop each gene; nudge each parameter; toggle flags.
    for (size_t I = 0; I <= Best.G.Passes.size(); ++I) {
      std::vector<Genome> Neighbors;
      if (I < Best.G.Passes.size()) {
        if (Best.G.Passes.size() > Config.Genomes.MinLength) {
          Genome Dropped = Best.G;
          Dropped.Passes.erase(Dropped.Passes.begin() + I);
          Neighbors.push_back(std::move(Dropped));
        }
        const lir::PassDescriptor &D =
            lir::passDescriptor(Best.G.Passes[I].Id);
        if (D.HasIntParam) {
          for (int Delta : {-1, 1}) {
            Genome Nudged = Best.G;
            int &Param = Nudged.Passes[I].IntParam;
            Param = std::clamp(Param + Delta * std::max(1, Param / 4),
                               D.MinInt, D.MaxInt);
            Neighbors.push_back(std::move(Nudged));
          }
        }
        if (D.HasAggressive) {
          Genome Toggled = Best.G;
          Toggled.Passes[I].Aggressive = !Toggled.Passes[I].Aggressive;
          Neighbors.push_back(std::move(Toggled));
        }
      } else {
        Genome Extended = Best.G;
        if (Extended.Passes.size() < Config.Genomes.MaxLength) {
          Extended.Passes.push_back(randomGene(R, Config.Genomes));
          Neighbors.push_back(std::move(Extended));
        }
      }
      for (Genome &N : Neighbors) {
        if (N == Best.G)
          continue;
        Evaluation E = evaluate(N, Config.Generations, Trace);
        ROPT_METRIC_INC("search.hillclimb_steps");
        if (E.ok() && better(E, Best.E)) {
          Best = Scored{std::move(N), std::move(E)};
          Improved = true;
        }
      }
    }
    if (!Improved)
      break;
  }
  finalizeGenerationStats(Trace);
  return Best;
}

void GeneticSearch::finalizeGenerationStats(GaTrace *Trace) {
  // evaluate() accumulates the valid-genome sum in MeanCycles; turn it
  // into a mean now that the generation populations are final.
  for (GenerationStats &S : GenStats)
    if (S.valid() > 0)
      S.MeanCycles /= S.valid();
  if (Trace)
    Trace->Generations = GenStats;
}
