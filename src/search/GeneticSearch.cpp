//===- search/GeneticSearch.cpp - The GA over the pass space ----------------===//

#include "search/GeneticSearch.h"

#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::search;

const char *search::evalKindName(EvalKind K) {
  switch (K) {
  case EvalKind::Unevaluated: return "unevaluated";
  case EvalKind::Ok: return "ok";
  case EvalKind::CompileError: return "compile-error";
  case EvalKind::RuntimeCrash: return "runtime-crash";
  case EvalKind::RuntimeTimeout: return "runtime-timeout";
  case EvalKind::WrongOutput: return "wrong-output";
  }
  return "unknown";
}

const char *search::genomeSourceName(GenomeSource S) {
  switch (S) {
  case GenomeSource::Random: return "random";
  case GenomeSource::Seeded: return "seeded";
  case GenomeSource::Bred: return "bred";
  case GenomeSource::HillClimb: return "hill-climb";
  }
  return "unknown";
}

const char *search::cacheOriginName(CacheOrigin O) {
  switch (O) {
  case CacheOrigin::Fresh: return "miss";
  case CacheOrigin::GenomeHit: return "genome-hit";
  case CacheOrigin::BinaryHit: return "binary-hit";
  }
  return "unknown";
}

Evaluation BatchEvaluator::evaluateOne(const Genome &G) {
  std::vector<Evaluation> Results = evaluateBatch({G});
  assert(Results.size() == 1 && "evaluator broke the batch contract");
  return std::move(Results.front());
}

std::vector<Evaluation>
FunctionEvaluator::evaluateBatch(const std::vector<Genome> &Genomes) {
  std::vector<Evaluation> Out;
  Out.reserve(Genomes.size());
  for (const Genome &G : Genomes)
    Out.push_back(Fn(G));
  return Out;
}

GeneticSearch::GeneticSearch(GaConfig Config, uint64_t Seed,
                             BatchEvaluator &Evaluator,
                             ProvenanceSink *Sink)
    : Config(Config), R(Seed), Evaluator(Evaluator), Sink(Sink) {}

void GeneticSearch::seedPopulation(std::vector<Genome> NewSeeds) {
  std::vector<SeedGenome> Tagged;
  Tagged.reserve(NewSeeds.size());
  for (Genome &G : NewSeeds)
    Tagged.push_back(SeedGenome{std::move(G), 0});
  seedPopulation(std::move(Tagged));
}

void GeneticSearch::seedPopulation(std::vector<SeedGenome> NewSeeds) {
  // Deduplicate by canonical name (first occurrence wins) and cap at the
  // population size — a seed slot spent twice on the same genome is a
  // wasted random draw.
  Seeds.clear();
  std::set<std::string> Names;
  for (SeedGenome &S : NewSeeds) {
    removeRedundantPasses(S.G);
    if (Seeds.size() == static_cast<size_t>(Config.PopulationSize))
      break;
    if (Names.insert(S.G.name()).second)
      Seeds.push_back(std::move(S));
  }
}

void GeneticSearch::record(const Evaluation &E, int Generation,
                           GaTrace *Trace) {
  if (E.ok() && !SeenBinaries.insert(E.BinaryHash).second)
    ++IdenticalCount;
  if (Trace) {
    TraceEntry T;
    T.Generation = Generation;
    T.Valid = E.ok();
    T.MedianCycles = E.ok() ? E.MedianCycles : 0.0;
    Trace->Evaluations.push_back(T);
  }

  // The generation log. MeanCycles carries the running sum until run()
  // finalizes it into a mean.
  if (static_cast<size_t>(Generation) >= GenStats.size())
    GenStats.resize(static_cast<size_t>(Generation) + 1);
  GenerationStats &S = GenStats[static_cast<size_t>(Generation)];
  S.Generation = Generation;
  ++S.Evaluations;
  if (!E.ok()) {
    ++S.Invalid;
  } else {
    if (S.valid() == 1 || E.MedianCycles < S.BestCycles)
      S.BestCycles = E.MedianCycles;
    if (S.valid() == 1 || E.MedianCycles > S.WorstCycles)
      S.WorstCycles = E.MedianCycles;
    S.MeanCycles += E.MedianCycles;
  }

  ROPT_METRIC_INC("search.evaluations");
  if (E.ok())
    ROPT_METRIC_INC("search.genomes_accepted");
  else
    ROPT_METRIC_INC("search.genomes_rejected");
}

std::vector<Evaluation> GeneticSearch::evaluateBatch(
    const std::vector<Genome> &Batch, int Generation, GaTrace *Trace,
    const std::vector<std::vector<uint64_t>> *Parents,
    std::vector<uint64_t> *IdsOut) {
  assert((!Parents || Parents->size() == Batch.size()) &&
         "one parent list per batch genome");
  std::vector<Evaluation> Results = Evaluator.evaluateBatch(Batch);
  assert(Results.size() == Batch.size() &&
         "evaluator broke the batch contract");
  if (IdsOut)
    IdsOut->assign(Batch.size(), 0);
  static const std::vector<uint64_t> NoParents;
  for (size_t I = 0; I != Results.size(); ++I) {
    record(Results[I], Generation, Trace);
    if (Sink) {
      uint64_t Id = Sink->onEvaluation(
          Batch[I], Results[I], Generation,
          Parents ? (*Parents)[I] : NoParents);
      if (IdsOut)
        (*IdsOut)[I] = Id;
    }
  }
  return Results;
}

bool GeneticSearch::better(const Evaluation &A, const Evaluation &B) const {
  if (A.ok() != B.ok())
    return A.ok();
  if (!A.ok())
    return false;
  // One three-way rank test instead of the old significantlyLess(A,B) /
  // significantlyLess(B,A) pair, which computed the rank sums twice.
  switch (compareSamples(A.Samples, B.Samples, Config.SignificanceAlpha)) {
  case SampleOrder::Less:
    return true;
  case SampleOrder::Greater:
    return false;
  case SampleOrder::Indistinguishable:
    break;
  }
  // Statistically indistinguishable: prefer the smaller binary.
  return A.CodeSize < B.CodeSize;
}

void GeneticSearch::announceIncumbent(Scored &S) {
  if (!S.E.ok())
    return;
  S.E = Evaluator.announceIncumbent(S.E);
}

void GeneticSearch::sortByFitness(std::vector<Scored> &Population) const {
  std::stable_sort(Population.begin(), Population.end(),
                   [this](const Scored &A, const Scored &B) {
                     return better(A.E, B.E);
                   });
}

const Scored *
GeneticSearch::selectMate(const std::vector<Scored> &Population,
                          Rng &Rand) const {
  assert(!Population.empty());
  // Three pipelines, chosen uniformly per mating (Section 3.6).
  switch (Rand.below(3)) {
  case 0: { // elites only
    size_t Elites = std::min<size_t>(
        std::max<size_t>(1, Config.EliteCount), Population.size());
    return &Population[Rand.below(Elites)];
  }
  case 1: // fittest only
    return &Population.front();
  default: { // tournament selection
    std::vector<size_t> Candidates;
    for (int I = 0; I != Config.TournamentSize; ++I)
      Candidates.push_back(
          static_cast<size_t>(Rand.below(Population.size())));
    std::sort(Candidates.begin(), Candidates.end());
    // Pick the best with probability p, second best with p(1-p), ...
    for (size_t N = 0; N + 1 < Candidates.size(); ++N)
      if (Rand.chance(Config.TournamentProb))
        return &Population[Candidates[N]];
    return &Population[Candidates.back()];
  }
  }
}

std::vector<Genome> GeneticSearch::neighborhood(const Genome &Base) {
  std::vector<Genome> Neighbors;
  for (size_t I = 0; I <= Base.Passes.size(); ++I) {
    if (I < Base.Passes.size()) {
      if (Base.Passes.size() > Config.Genomes.MinLength) {
        Genome Dropped = Base;
        Dropped.Passes.erase(Dropped.Passes.begin() + I);
        Neighbors.push_back(std::move(Dropped));
      }
      const lir::PassDescriptor &D = lir::passDescriptor(Base.Passes[I].Id);
      if (D.HasIntParam) {
        for (int Delta : {-1, 1}) {
          Genome Nudged = Base;
          int &Param = Nudged.Passes[I].IntParam;
          Param = std::clamp(Param + Delta * std::max(1, Param / 4),
                             D.MinInt, D.MaxInt);
          Neighbors.push_back(std::move(Nudged));
        }
      }
      if (D.HasAggressive) {
        Genome Toggled = Base;
        Toggled.Passes[I].Aggressive = !Toggled.Passes[I].Aggressive;
        Neighbors.push_back(std::move(Toggled));
      }
    } else if (Base.Passes.size() < Config.Genomes.MaxLength) {
      Genome Extended = Base;
      Extended.Passes.push_back(randomGene(R, Config.Genomes));
      Neighbors.push_back(std::move(Extended));
    }
  }
  // No-op neighbors (clamped parameters, duplicate drops) waste budget.
  Neighbors.erase(std::remove_if(Neighbors.begin(), Neighbors.end(),
                                 [&Base](const Genome &N) {
                                   return N == Base;
                                 }),
                  Neighbors.end());
  return Neighbors;
}

std::optional<Scored> GeneticSearch::run(double AndroidCycles,
                                         double O3Cycles, GaTrace *Trace) {
  ROPT_TRACE_SPAN("search.run");
  SeenBinaries.clear();
  GenStats.clear();
  IdenticalCount = 0;

  double BaselineBar = std::min(AndroidCycles, O3Cycles);

  // --- Generation 0: random, with replacement biasing. -------------------
  std::vector<Scored> Population;
  {
    ROPT_TRACE_SPAN_V("search.generation", 0);
    // Seeded genomes (fleet hints, warm starts) lead the batch; the
    // random sampler fills the remaining slots. Seeds were deduplicated
    // and capped at the population size by seedPopulation().
    std::vector<Genome> Initial;
    Initial.reserve(static_cast<size_t>(Config.PopulationSize));
    for (const SeedGenome &S : Seeds)
      Initial.push_back(S.G);
    size_t NumSeeded = Initial.size();
    while (Initial.size() < static_cast<size_t>(Config.PopulationSize)) {
      Genome G = randomGenome(R, Config.Genomes);
      removeRedundantPasses(G);
      Initial.push_back(std::move(G));
    }
    std::vector<uint64_t> Ids;
    std::vector<Evaluation> Evals =
        evaluateBatch(Initial, 0, Trace, nullptr, &Ids);
    for (size_t I = 0; I != Initial.size(); ++I)
      Population.push_back(Scored{std::move(Initial[I]), std::move(Evals[I]),
                                  Ids[I],
                                  I < NumSeeded ? GenomeSource::Seeded
                                                : GenomeSource::Random,
                                  I < NumSeeded ? Seeds[I].Provenance : 0});

    // Replace genomes slower than both baselines, one round per retry,
    // biasing the search toward profitable space (Section 4). Each round
    // races against the best genome seen so far (the population is not
    // sorted yet, so find it by scan).
    for (int Retry = 0; Retry != Config.Gen0ReplacementRetries; ++Retry) {
      size_t BestI = 0;
      for (size_t I = 1; I < Population.size(); ++I)
        if (better(Population[I].E, Population[BestI].E))
          BestI = I;
      if (!Population.empty())
        announceIncumbent(Population[BestI]);
      std::vector<size_t> Poor;
      for (size_t I = 0; I != Population.size(); ++I) {
        const Evaluation &E = Population[I].E;
        if (!E.ok() || E.MedianCycles > BaselineBar)
          Poor.push_back(I);
      }
      if (Poor.empty())
        break;
      std::vector<Genome> Replacements;
      Replacements.reserve(Poor.size());
      for (size_t I = 0; I != Poor.size(); ++I) {
        Genome G = randomGenome(R, Config.Genomes);
        removeRedundantPasses(G);
        Replacements.push_back(std::move(G));
      }
      Evals = evaluateBatch(Replacements, 0, Trace, nullptr, &Ids);
      for (size_t I = 0; I != Poor.size(); ++I)
        Population[Poor[I]] = Scored{std::move(Replacements[I]),
                                     std::move(Evals[I]), Ids[I],
                                     GenomeSource::Random};
    }
  }
  sortByFitness(Population);

  // --- Generations 1..N-1. -----------------------------------------------
  for (int Gen = 1; Gen < Config.Generations; ++Gen) {
    if (IdenticalCount >= Config.MaxIdenticalBinaries) {
      if (Trace)
        Trace->HaltedOnIdentical = true;
      break;
    }
    ROPT_TRACE_SPAN_V("search.generation", Gen);
    // The sorted front is this generation's incumbent: fresh children are
    // raced against it, and a racing evaluator tops its samples up to the
    // full budget first.
    if (!Population.empty())
      announceIncumbent(Population.front());
    std::vector<Scored> Next;
    // Elitism: the best genomes survive unchanged (no re-evaluation).
    for (int E = 0; E < Config.EliteCount &&
                    static_cast<size_t>(E) < Population.size();
         ++E)
      Next.push_back(Population[static_cast<size_t>(E)]);

    std::vector<Genome> Children;
    std::vector<std::vector<uint64_t>> ChildParents;
    while (Next.size() + Children.size() <
           static_cast<size_t>(Config.PopulationSize)) {
      const Scored *MateA = selectMate(Population, R);
      const Scored *MateB = selectMate(Population, R);
      Genome Child = crossover(MateA->G, MateB->G, R, Config.Genomes);
      if (R.chance(Config.GenomeMutationProb))
        mutate(Child, R, Config.Genomes);
      Children.push_back(std::move(Child));
      ChildParents.push_back({MateA->ReportId, MateB->ReportId});
    }
    std::vector<uint64_t> Ids;
    std::vector<Evaluation> Evals =
        evaluateBatch(Children, Gen, Trace, &ChildParents, &Ids);
    for (size_t I = 0; I != Children.size(); ++I)
      Next.push_back(Scored{std::move(Children[I]), std::move(Evals[I]),
                            Ids[I], GenomeSource::Bred});

    Population = std::move(Next);
    sortByFitness(Population);
    if (!Population.empty() && Population.front().E.ok()) {
      ROPT_TRACE_COUNTER("search.best_cycles",
                         Population.front().E.MedianCycles);
      ROPT_METRIC_GAUGE_SET("search.best_cycles",
                            Population.front().E.MedianCycles);
    }
  }

  if (Trace)
    Trace->IdenticalBinaries = IdenticalCount;
  ROPT_METRIC_ADD("search.identical_binaries", IdenticalCount);

  if (Population.empty() || !Population.front().E.ok()) {
    finalizeGenerationStats(Trace);
    return std::nullopt;
  }

  // --- Hill climbing from the best genome: evaluate the whole
  // neighborhood as one batch, then step to its best improvement. --------
  ROPT_TRACE_SPAN("search.hillclimb");
  Scored Best = Population.front();
  for (int Round = 0; Round != Config.HillClimbRounds; ++Round) {
    announceIncumbent(Best);
    std::vector<Genome> Neighbors = neighborhood(Best.G);
    if (Neighbors.empty())
      break;
    std::vector<std::vector<uint64_t>> NeighborParents(
        Neighbors.size(), std::vector<uint64_t>{Best.ReportId});
    std::vector<uint64_t> Ids;
    std::vector<Evaluation> Evals = evaluateBatch(
        Neighbors, Config.Generations, Trace, &NeighborParents, &Ids);
    ROPT_METRIC_ADD("search.hillclimb_steps", Neighbors.size());
    bool Improved = false;
    for (size_t I = 0; I != Neighbors.size(); ++I) {
      if (Evals[I].ok() && better(Evals[I], Best.E)) {
        Best = Scored{std::move(Neighbors[I]), std::move(Evals[I]), Ids[I],
                      GenomeSource::HillClimb};
        Improved = true;
      }
    }
    if (!Improved)
      break;
  }
  finalizeGenerationStats(Trace);
  return Best;
}

void GeneticSearch::finalizeGenerationStats(GaTrace *Trace) {
  // record() accumulates the valid-genome sum in MeanCycles; turn it
  // into a mean now that the generation populations are final.
  for (GenerationStats &S : GenStats)
    if (S.valid() > 0)
      S.MeanCycles /= S.valid();
  if (Trace)
    Trace->Generations = GenStats;
  if (Sink)
    for (const GenerationStats &S : GenStats)
      Sink->onGenerationDone(S);
}
