//===- search/Genome.h - Optimization-decision genomes ----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.6: genomes encode the sequence of passes, their parameters,
/// and flags; they vary in length. Mutation operators enable/disable a
/// pass, modify a parameter, or introduce new passes; crossover is single
/// random point with a minimum-length guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SEARCH_GENOME_H
#define ROPT_SEARCH_GENOME_H

#include "hgraph/Codegen.h"
#include "lir/Passes.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace ropt {
namespace search {

/// One point in the transformation space.
struct Genome {
  std::vector<lir::PassInstance> Passes;
  hgraph::RegAllocKind RegAlloc = hgraph::RegAllocKind::LinearScan;

  /// Human-readable pipeline string, e.g. "gvn,loop-unroll=4,gc-elide".
  std::string name() const;

  bool operator==(const Genome &O) const;
};

/// Tunables for genome generation and mutation.
struct GenomeConfig {
  size_t MinLength = 2;
  size_t MaxInitialLength = 12;
  size_t MaxLength = 48;
  /// Probability an aggressive-capable gene is generated aggressive.
  double AggressiveProb = 0.65;
  /// Probability that mutation perturbs each gene.
  double GeneMutationProb = 0.05;
  /// Bitmask over lir::PassId of arms the search must not draw — the
  /// analysis layer's per-bottleneck pruning. Generation and mutation
  /// rejection-sample around masked passes; 0 (the default) disables
  /// nothing.
  uint32_t DisabledPassMask = 0;
};

/// Uniformly random genome.
Genome randomGenome(Rng &R, const GenomeConfig &Config);

/// Uniformly random single gene.
lir::PassInstance randomGene(Rng &R, const GenomeConfig &Config);

/// Paper's mutation operators: per-gene perturbation (parameter change,
/// aggressive toggle, gene replacement) plus genome-level insertion and
/// deletion, bounded by Min/MaxLength.
void mutate(Genome &G, Rng &R, const GenomeConfig &Config);

/// Single-point crossover whose child meets the minimum length.
Genome crossover(const Genome &A, const Genome &B, Rng &R,
                 const GenomeConfig &Config);

/// Gen-0 cleanup: collapse immediately repeated identical genes.
void removeRedundantPasses(Genome &G);

/// Parses a canonical pipeline string (the Genome::name() format,
/// e.g. "gvn,loop-unroll=4,licm!|ra=freq") back into a genome — the
/// persistent store's on-disk representation. Returns false (leaving
/// \p Out untouched) on an unknown pass or register-allocator spelling;
/// the empty string parses to the empty genome.
bool parseGenome(const std::string &Name, Genome &Out);

} // namespace search
} // namespace ropt

#endif // ROPT_SEARCH_GENOME_H
