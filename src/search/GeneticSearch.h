//===- search/GeneticSearch.h - The GA over the pass space ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The genetic search of Sections 3.6 and 4: 11 generations of 50 genomes,
/// three mate-selection pipelines (elites, fittest, tournament of 7 at
/// 90%), 5% mutation probabilities, up to three gen-0 replacement retries
/// for genomes slower than both baselines, a halt after 100 identical
/// binaries, and a final hill-climbing step. Fitness is replay time with a
/// binary-size tiebreak when two binaries are statistically
/// indistinguishable.
///
/// Fitness is computed through the BatchEvaluator interface (the old
/// per-genome EvaluateFn callback is gone): the GA hands over whole
/// batches — generation 0, each generation's children, each gen-0
/// replacement round, each hill-climb neighborhood — and the evaluator is
/// free to schedule them across workers and memoize duplicates, as long
/// as Results[i] corresponds to Genomes[i]. All of the GA's own state
/// updates (identical-binary accounting, generation log, trace) happen in
/// batch order, so a seeded run is bit-identical at any parallelism.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SEARCH_GENETIC_SEARCH_H
#define ROPT_SEARCH_GENETIC_SEARCH_H

#include "search/Genome.h"
#include "support/Result.h"

#include <functional>
#include <optional>
#include <set>

namespace ropt {
namespace search {

/// How one genome's evaluation ended. Everything but Ok would have been
/// user-visible under online search (Figure 1's point).
enum class EvalKind {
  Unevaluated,    ///< Default-constructed: no evaluation happened (yet).
  Ok,
  CompileError,   ///< Verifier rejection or size-budget blowup.
  RuntimeCrash,   ///< Trap during replay.
  RuntimeTimeout, ///< Instruction budget exhausted.
  WrongOutput,    ///< Verification map mismatch.
};

const char *evalKindName(EvalKind K);

/// How the evaluation engine answered a genome: with fresh work, or from
/// one of its two cache levels. Deterministic in batch content, so it may
/// appear in persistent provenance records without breaking the
/// bit-identical-at-any-jobs guarantee.
enum class CacheOrigin {
  Fresh,     ///< Paid a compile (and replays when the compile succeeded).
  GenomeHit, ///< Answered by the canonical-genome-string cache.
  BinaryHit, ///< Fresh compile, but the binary hash was already measured.
};

const char *cacheOriginName(CacheOrigin O);

/// Result of evaluating one genome.
struct Evaluation {
  EvalKind Kind = EvalKind::Unevaluated;
  std::vector<double> Samples; ///< Replay timings (outliers removed).
  double MedianCycles = 0.0;
  uint64_t CodeSize = 0;
  uint64_t BinaryHash = 0; ///< Identity of the produced machine code.
  /// The typed capture/replay/compile error behind a non-Ok Kind
  /// (Unknown when Ok or never evaluated).
  support::ErrorCode Error = support::ErrorCode::Unknown;
  /// How the evaluation engine answered (Fresh for serial evaluators).
  CacheOrigin Origin = CacheOrigin::Fresh;

  /// The deterministic replay cycle count the measurement-noise model
  /// samples around (sum over captures). Lets a racing engine draw
  /// further samples for this binary later without re-verifying.
  double BaseCycles = 0.0;
  /// Measurement replays actually paid for this binary (raw draws,
  /// before outlier removal). Under a fixed budget this is the full
  /// budget; under racing it is what the race actually spent.
  int SamplesSpent = 0;
  /// Escalation blocks the racing engine granted beyond the seed block
  /// (0 under a fixed budget or for seed-block early stops).
  int EscalationRounds = 0;
  /// True when the racing engine terminated measurement early because
  /// this binary was a statistically-clear loser against the incumbent.
  bool EarlyStop = false;

  bool ok() const { return Kind == EvalKind::Ok; }
};

/// Batch fitness interface. Implementations must be deterministic in the
/// batch content: the result for a genome may not depend on scheduling,
/// worker count, or which other genomes share the batch (memoization that
/// returns the identical Evaluation for duplicates is fine).
class BatchEvaluator {
public:
  virtual ~BatchEvaluator() = default;

  /// Evaluates every genome; Results[i] belongs to Genomes[i].
  virtual std::vector<Evaluation>
  evaluateBatch(const std::vector<Genome> &Genomes) = 0;

  /// Tells the evaluator which evaluation is the search's current
  /// incumbent (best-so-far); the GA calls this before every batch it
  /// breeds against that incumbent. Racing evaluators race fresh
  /// binaries against it and may *top up* its samples to the full
  /// measurement budget — the returned evaluation is the one the search
  /// must keep for the incumbent from here on. The default (and any
  /// fixed-budget evaluator) returns \p E unchanged.
  virtual Evaluation announceIncumbent(const Evaluation &E) { return E; }

  /// Single-genome convenience (a batch of one).
  Evaluation evaluateOne(const Genome &G);
};

/// Serial adapter over a per-genome callback, for synthetic landscapes
/// and tests. Evaluates strictly in batch order on the calling thread.
class FunctionEvaluator : public BatchEvaluator {
public:
  explicit FunctionEvaluator(std::function<Evaluation(const Genome &)> Fn)
      : Fn(std::move(Fn)) {}

  std::vector<Evaluation>
  evaluateBatch(const std::vector<Genome> &Genomes) override;

private:
  std::function<Evaluation(const Genome &)> Fn;
};

/// GA parameters (paper values, Section 4).
struct GaConfig {
  int Generations = 11;
  int PopulationSize = 50;
  double GenomeMutationProb = 0.05;
  GenomeConfig Genomes; ///< GeneMutationProb defaults to 5%.
  int TournamentSize = 7;
  double TournamentProb = 0.9;
  int MaxIdenticalBinaries = 100;
  int Gen0ReplacementRetries = 3;
  int EliteCount = 2;
  int HillClimbRounds = 2;
  double SignificanceAlpha = 0.05;
};

/// Where a population member's genome came from. `Seeded` marks genomes
/// injected through seedPopulation() — e.g. fleet hints or a warm-start
/// from a previous run — so downstream consumers can attribute a win to
/// crowd knowledge rather than local exploration.
enum class GenomeSource {
  Random,    ///< Drawn by the gen-0 random sampler (or a replacement).
  Seeded,    ///< Injected via seedPopulation() before generation 0.
  Bred,      ///< Crossover/mutation child of two population members.
  HillClimb, ///< Neighborhood step from the post-GA best.
};

const char *genomeSourceName(GenomeSource S);

/// One scored population member. ReportId is the provenance-record id the
/// genome's evaluation received (0 when no sink is attached); children
/// cite their parents' ids in the run report.
struct Scored {
  Genome G;
  Evaluation E;
  uint64_t ReportId = 0;
  GenomeSource Source = GenomeSource::Random;
  /// For Seeded members: the fleet provenance-chain id the seed carried
  /// through seedPopulation() (0 for local seeds and every other source).
  /// Lets the fleet attribute a winning genome to the device that
  /// originally discovered it.
  uint64_t SeedProvenance = 0;
};

/// A gen-0 seed plus the provenance chain it rides on (0 = local).
struct SeedGenome {
  Genome G;
  uint64_t Provenance = 0;
};

/// Figure 9's raw material: one entry per evaluation.
struct TraceEntry {
  int Generation = 0;
  double MedianCycles = 0.0; ///< 0 for invalid genomes.
  bool Valid = false;
};

/// Per-generation aggregate the search maintains as it runs — the
/// authoritative generation log Figure 9 consumes (harnesses no longer
/// re-derive it from the evaluation stream). The final row (Generation ==
/// GaConfig::Generations) accounts the hill-climbing evaluations.
struct GenerationStats {
  int Generation = 0;
  int Evaluations = 0; ///< Genomes evaluated in this generation.
  int Invalid = 0;     ///< Rejected: compile error, crash, timeout, wrong
                       ///< output.
  double BestCycles = 0.0;  ///< Min median cycles among valid; 0 if none.
  double WorstCycles = 0.0; ///< Max median cycles among valid; 0 if none.
  double MeanCycles = 0.0;  ///< Mean over valid genomes; 0 if none.

  int valid() const { return Evaluations - Invalid; }
};

struct GaTrace {
  std::vector<TraceEntry> Evaluations;
  std::vector<GenerationStats> Generations;
  int IdenticalBinaries = 0;
  bool HaltedOnIdentical = false;
};

/// Consumer of the search's evaluation-by-evaluation provenance (the
/// run-report flight recorder implements this). The GA calls it on the
/// calling thread, strictly in batch order, immediately after folding a
/// batch into its own state — so a seeded run emits an identical record
/// sequence at any evaluator parallelism. Implementations may write from
/// behind a lock; they must not call back into the search.
class ProvenanceSink {
public:
  virtual ~ProvenanceSink() = default;

  /// One evaluated genome. \p Parents are the record ids of the genomes
  /// this one was bred from (empty for random genomes, two for crossover
  /// children, one for hill-climb neighbors). Returns the id assigned to
  /// this record.
  virtual uint64_t onEvaluation(const Genome &G, const Evaluation &E,
                                int Generation,
                                const std::vector<uint64_t> &Parents) = 0;

  /// One finalized per-generation aggregate (means already computed);
  /// called once per generation when the search finishes.
  virtual void onGenerationDone(const GenerationStats &S) = 0;
};

/// The search engine. Pure logic: all measurement happens through the
/// batch evaluator, which must outlive the search.
class GeneticSearch {
public:
  /// \p Sink, when non-null, receives one provenance record per
  /// evaluation and the finalized generation log; it must outlive the
  /// search.
  GeneticSearch(GaConfig Config, uint64_t Seed, BatchEvaluator &Evaluator,
                ProvenanceSink *Sink = nullptr);

  /// Warm-starts generation 0: the given genomes (deduplicated by
  /// canonical name, truncated to the population size) are evaluated
  /// ahead of the random fill and enter the population with
  /// GenomeSource::Seeded. Callers wanting the paper's safety contract
  /// must only pass genomes they verified against their own verification
  /// map — the GA itself treats seeds like any other candidate (a seed
  /// that fails evaluation is eligible for gen-0 replacement). Call
  /// before run(); seeds persist across run() calls until replaced.
  void seedPopulation(std::vector<Genome> Seeds);

  /// Same, with each seed carrying its fleet provenance-chain id; the
  /// resulting Seeded population members get Scored::SeedProvenance, so
  /// "which device found the winner" survives the search.
  void seedPopulation(std::vector<SeedGenome> Seeds);

  /// Runs the full search. \p AndroidCycles and \p O3Cycles drive the
  /// gen-0 replacement biasing. Returns the best valid genome found, or
  /// nullopt if every evaluation failed.
  std::optional<Scored> run(double AndroidCycles, double O3Cycles,
                            GaTrace *Trace = nullptr);

  /// The per-generation log of the last run() (also copied into the
  /// GaTrace when one is supplied).
  const std::vector<GenerationStats> &generationStats() const {
    return GenStats;
  }

private:
  /// Evaluates one batch and folds every result — in batch order — into
  /// the identical-binary count, the generation log, the trace, and the
  /// provenance sink. \p Parents (when given) holds one parent-id list
  /// per batch genome; \p IdsOut (when given) receives the sink-assigned
  /// record id per genome (0s without a sink).
  std::vector<Evaluation>
  evaluateBatch(const std::vector<Genome> &Batch, int Generation,
                GaTrace *Trace,
                const std::vector<std::vector<uint64_t>> *Parents = nullptr,
                std::vector<uint64_t> *IdsOut = nullptr);
  void record(const Evaluation &E, int Generation, GaTrace *Trace);
  /// Hands \p S to the evaluator as the current incumbent and folds the
  /// (possibly sample-topped-up) evaluation back into the population.
  void announceIncumbent(Scored &S);
  /// The hill-climb neighborhood of \p Base: gene drops, parameter
  /// nudges, flag toggles, one random extension.
  std::vector<Genome> neighborhood(const Genome &Base);
  /// Converts the per-generation running sums into means and copies the
  /// log into \p Trace.
  void finalizeGenerationStats(GaTrace *Trace);
  /// Statistically-sound comparison: true when A is strictly better
  /// (faster with significance, or indistinguishable but smaller).
  bool better(const Evaluation &A, const Evaluation &B) const;
  const Scored *selectMate(const std::vector<Scored> &Population,
                           Rng &R) const;
  void sortByFitness(std::vector<Scored> &Population) const;

  GaConfig Config;
  Rng R;
  BatchEvaluator &Evaluator;
  ProvenanceSink *Sink = nullptr;
  std::vector<SeedGenome> Seeds;
  std::set<uint64_t> SeenBinaries;
  std::vector<GenerationStats> GenStats;
  int IdenticalCount = 0;
};

} // namespace search
} // namespace ropt

#endif // ROPT_SEARCH_GENETIC_SEARCH_H
