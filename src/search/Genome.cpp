//===- search/Genome.cpp - Optimization-decision genomes --------------------===//

#include "search/Genome.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::search;
using lir::PassDescriptor;
using lir::PassInstance;

std::string Genome::name() const {
  std::string Out;
  for (size_t I = 0; I != Passes.size(); ++I) {
    if (I)
      Out += ",";
    Out += lir::passInstanceName(Passes[I]);
  }
  switch (RegAlloc) {
  case hgraph::RegAllocKind::LinearScan:
    break;
  case hgraph::RegAllocKind::Frequency:
    Out += "|ra=freq";
    break;
  case hgraph::RegAllocKind::FirstUse:
    Out += "|ra=first-use";
    break;
  case hgraph::RegAllocKind::None:
    Out += "|ra=none";
    break;
  }
  return Out;
}

bool Genome::operator==(const Genome &O) const {
  if (RegAlloc != O.RegAlloc || Passes.size() != O.Passes.size())
    return false;
  for (size_t I = 0; I != Passes.size(); ++I) {
    const PassInstance &A = Passes[I], &B = O.Passes[I];
    if (A.Id != B.Id || A.IntParam != B.IntParam ||
        A.Aggressive != B.Aggressive)
      return false;
  }
  return true;
}

PassInstance search::randomGene(Rng &R, const GenomeConfig &Config) {
  const auto &Registry = lir::passRegistry();
  const PassDescriptor *Pick = nullptr;
  // Rejection-sample around pruned arms (DisabledPassMask). The mask can
  // never cover the whole registry, so this terminates; bounded attempts
  // keep a pathological mask from spinning regardless.
  for (int Attempt = 0; Attempt != 64; ++Attempt) {
    const PassDescriptor &D =
        Registry[static_cast<size_t>(R.below(Registry.size()))];
    if (Config.DisabledPassMask &
        (1u << static_cast<uint32_t>(D.Id)))
      continue;
    Pick = &D;
    break;
  }
  if (!Pick) {
    for (const PassDescriptor &D : Registry)
      if (!(Config.DisabledPassMask &
            (1u << static_cast<uint32_t>(D.Id)))) {
        Pick = &D;
        break;
      }
    if (!Pick)
      Pick = &Registry[0];
  }
  const PassDescriptor &D = *Pick;
  PassInstance P;
  P.Id = D.Id;
  if (D.HasIntParam)
    P.IntParam = static_cast<int>(R.range(D.MinInt, D.MaxInt));
  if (D.HasAggressive)
    P.Aggressive = R.chance(Config.AggressiveProb);
  return P;
}

Genome search::randomGenome(Rng &R, const GenomeConfig &Config) {
  Genome G;
  size_t Length = static_cast<size_t>(R.range(
      static_cast<int64_t>(Config.MinLength),
      static_cast<int64_t>(Config.MaxInitialLength)));
  for (size_t I = 0; I != Length; ++I)
    G.Passes.push_back(randomGene(R, Config));
  double RaDraw = R.uniform();
  if (RaDraw < 0.10)
    G.RegAlloc = hgraph::RegAllocKind::Frequency;
  else if (RaDraw < 0.14)
    G.RegAlloc = hgraph::RegAllocKind::FirstUse;
  else if (RaDraw < 0.16)
    G.RegAlloc = hgraph::RegAllocKind::None;
  return G;
}

void search::mutate(Genome &G, Rng &R, const GenomeConfig &Config) {
  // Per-gene perturbations.
  for (PassInstance &P : G.Passes) {
    if (!R.chance(Config.GeneMutationProb))
      continue;
    const PassDescriptor &D = lir::passDescriptor(P.Id);
    switch (R.below(3)) {
    case 0: // modify the parameter (or replace if there is none)
      if (D.HasIntParam) {
        P.IntParam = static_cast<int>(R.range(D.MinInt, D.MaxInt));
        break;
      }
      [[fallthrough]];
    case 1: // replace with a fresh gene
      P = randomGene(R, Config);
      break;
    case 2: // toggle the aggressive flag where supported
      if (D.HasAggressive)
        P.Aggressive = !P.Aggressive;
      else
        P = randomGene(R, Config);
      break;
    }
  }

  // Genome-level: introduce a new pass / drop one.
  if (G.Passes.size() < Config.MaxLength &&
      R.chance(Config.GeneMutationProb)) {
    size_t Pos = static_cast<size_t>(R.below(G.Passes.size() + 1));
    G.Passes.insert(G.Passes.begin() + Pos, randomGene(R, Config));
  }
  if (G.Passes.size() > Config.MinLength &&
      R.chance(Config.GeneMutationProb)) {
    size_t Pos = static_cast<size_t>(R.below(G.Passes.size()));
    G.Passes.erase(G.Passes.begin() + Pos);
  }
  if (R.chance(Config.GeneMutationProb / 2)) {
    double Draw = R.uniform();
    G.RegAlloc = Draw < 0.80   ? hgraph::RegAllocKind::LinearScan
                 : Draw < 0.92 ? hgraph::RegAllocKind::Frequency
                 : Draw < 0.98 ? hgraph::RegAllocKind::FirstUse
                               : hgraph::RegAllocKind::None;
  }
}

Genome search::crossover(const Genome &A, const Genome &B, Rng &R,
                         const GenomeConfig &Config) {
  Genome Child;
  Child.RegAlloc = R.chance(0.5) ? A.RegAlloc : B.RegAlloc;
  for (int Attempt = 0; Attempt != 8; ++Attempt) {
    size_t CutA = static_cast<size_t>(R.below(A.Passes.size() + 1));
    size_t CutB = static_cast<size_t>(R.below(B.Passes.size() + 1));
    Child.Passes.assign(A.Passes.begin(), A.Passes.begin() + CutA);
    Child.Passes.insert(Child.Passes.end(), B.Passes.begin() + CutB,
                        B.Passes.end());
    if (Child.Passes.size() >= Config.MinLength &&
        Child.Passes.size() <= Config.MaxLength)
      return Child;
  }
  // Give up on the length constraint: take the longer parent.
  Child.Passes = A.Passes.size() >= B.Passes.size() ? A.Passes : B.Passes;
  return Child;
}

void search::removeRedundantPasses(Genome &G) {
  auto SameGene = [](const PassInstance &A, const PassInstance &B) {
    return A.Id == B.Id && A.IntParam == B.IntParam &&
           A.Aggressive == B.Aggressive;
  };
  std::vector<PassInstance> Out;
  for (const PassInstance &P : G.Passes)
    if (Out.empty() || !SameGene(Out.back(), P))
      Out.push_back(P);
  G.Passes = std::move(Out);
}

bool search::parseGenome(const std::string &Name, Genome &Out) {
  Genome G;
  std::string Body = Name;
  // The register-allocator suffix is the only '|'-separated section.
  size_t Bar = Body.find('|');
  if (Bar != std::string::npos) {
    std::string Ra = Body.substr(Bar + 1);
    Body.resize(Bar);
    if (Ra == "ra=freq")
      G.RegAlloc = hgraph::RegAllocKind::Frequency;
    else if (Ra == "ra=first-use")
      G.RegAlloc = hgraph::RegAllocKind::FirstUse;
    else if (Ra == "ra=none")
      G.RegAlloc = hgraph::RegAllocKind::None;
    else
      return false;
  }
  size_t Pos = 0;
  while (Pos <= Body.size() && !Body.empty()) {
    size_t Comma = Body.find(',', Pos);
    std::string Spec = Body.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    PassInstance P;
    if (!lir::parsePassInstance(Spec, P))
      return false;
    G.Passes.push_back(P);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  Out = std::move(G);
  return true;
}
