//===- search/EvaluationEngine.cpp - Parallel, memoizing fitness ----------===//

#include "search/EvaluationEngine.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>

using namespace ropt;
using namespace ropt::search;

EvalKind search::evalKindForError(support::ErrorCode Code) {
  switch (Code) {
  case support::ErrorCode::CompileFailed:
    return EvalKind::CompileError;
  case support::ErrorCode::ReplayCrash:
    return EvalKind::RuntimeCrash;
  case support::ErrorCode::ReplayTimeout:
    return EvalKind::RuntimeTimeout;
  case support::ErrorCode::OutputMismatch:
    return EvalKind::WrongOutput;
  case support::ErrorCode::CaptureNotReady:
  case support::ErrorCode::CaptureFailed:
  case support::ErrorCode::Unknown:
    // No capture means nothing ever ran: treat like a crash rather than a
    // compiler defect, so the GA rejects without blaming the pipeline.
    return EvalKind::RuntimeCrash;
  }
  return EvalKind::RuntimeCrash;
}

EvaluationEngine::EvaluationEngine(BackendFactory Factory,
                                   EngineOptions Options, uint64_t Seed)
    : Factory(std::move(Factory)), Options(Options), Seed(Seed) {
  size_t Jobs = Options.Jobs > 0 ? static_cast<size_t>(Options.Jobs)
                                 : ThreadPool::defaultThreadCount();
  Pool = std::make_unique<ThreadPool>(Jobs);
  ROPT_METRIC_GAUGE_SET("search.parallel_workers",
                        static_cast<double>(Jobs));
}

EvaluationEngine::~EvaluationEngine() = default;

size_t EvaluationEngine::jobs() const { return Pool->size(); }

void EvaluationEngine::ensureBackends(size_t Count) {
  // Backends are built serially on the calling thread so any RNG draws in
  // the factory happen in a deterministic order.
  while (Backends.size() < Count)
    Backends.push_back(Factory());
}

uint64_t EvaluationEngine::noiseSeed(uint64_t BinaryHash) const {
  // splitmix64 finalizer over (engine seed, binary hash): measurement
  // noise becomes a pure function of binary identity, so samples do not
  // depend on scheduling order or worker count.
  uint64_t Z = Seed ^ (BinaryHash + 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void EngineCounters::count(EvalKind K) {
  switch (K) {
  case EvalKind::Ok: ++Ok; break;
  case EvalKind::CompileError: ++CompileError; break;
  case EvalKind::RuntimeCrash: ++RuntimeCrash; break;
  case EvalKind::RuntimeTimeout: ++RuntimeTimeout; break;
  case EvalKind::WrongOutput: ++WrongOutput; break;
  case EvalKind::Unevaluated: break;
  }
}

std::vector<Evaluation>
EvaluationEngine::evaluateBatch(const std::vector<Genome> &Genomes) {
  ROPT_TRACE_SPAN_V("search.batch", static_cast<int64_t>(Genomes.size()));

  const size_t N = Genomes.size();
  std::vector<Evaluation> Results(N);
  if (N == 0)
    return Results;

  // --- Plan (serial, batch order): decide per genome whether its compile
  // outcome is already known, deduplicating textually equal genomes
  // within the batch. ------------------------------------------------------
  std::vector<std::string> Keys(N);
  // Genome index -> index into CompileWork, or SIZE_MAX when the compile
  // outcome comes from GenomeCache / an earlier duplicate in this batch.
  constexpr size_t NoWork = static_cast<size_t>(-1);
  std::vector<size_t> WorkOf(N, NoWork);
  std::vector<size_t> CompileWork; // genome indices to actually compile
  std::unordered_map<std::string, size_t> BatchFirst; // key -> work index

  for (size_t I = 0; I != N; ++I) {
    Keys[I] = Genomes[I].name();
    if (!Options.Memoize) {
      WorkOf[I] = CompileWork.size();
      CompileWork.push_back(I);
      continue;
    }
    if (GenomeCache.count(Keys[I]))
      continue; // answered from the genome-level cache
    auto It = BatchFirst.find(Keys[I]);
    if (It != BatchFirst.end()) {
      WorkOf[I] = It->second; // share the first occurrence's compile
      continue;
    }
    WorkOf[I] = CompileWork.size();
    BatchFirst.emplace(Keys[I], CompileWork.size());
    CompileWork.push_back(I);
  }

  // --- Compile stage (parallel). ------------------------------------------
  ensureBackends(std::min(Pool->size(), CompileWork.size()));
  std::vector<CompiledBinary> Compiled(CompileWork.size());
  Pool->parallelFor(CompileWork.size(), [&](size_t W, size_t Slot) {
    Compiled[W] = Backends[Slot]->compileGenome(Genomes[CompileWork[W]]);
  });

  // --- Commit compiles (serial, batch order) and plan the measure stage:
  // one measurement per distinct fresh binary. -----------------------------
  struct MeasureTask {
    size_t WorkIndex;   // into Compiled
    uint64_t NoiseSeed;
  };
  std::vector<MeasureTask> MeasureWork;
  std::unordered_map<uint64_t, size_t> MeasureOf; // hash -> MeasureWork idx

  for (size_t W = 0; W != Compiled.size(); ++W) {
    const CompiledBinary &B = Compiled[W];
    if (Options.Memoize)
      GenomeCache.emplace(Keys[CompileWork[W]],
                          GenomeEntry{B.Ok, B.BinaryHash});
    if (!B.Ok)
      continue;
    bool Known = Options.Memoize && BinaryCache.count(B.BinaryHash);
    if (!Known && !MeasureOf.count(B.BinaryHash)) {
      MeasureOf.emplace(B.BinaryHash, MeasureWork.size());
      MeasureWork.push_back(MeasureTask{W, noiseSeed(B.BinaryHash)});
    }
  }

  // --- Measure stage (parallel). ------------------------------------------
  std::vector<Evaluation> Measured(MeasureWork.size());
  Pool->parallelFor(MeasureWork.size(), [&](size_t M, size_t Slot) {
    const MeasureTask &T = MeasureWork[M];
    Measured[M] =
        Backends[Slot]->measureBinary(Compiled[T.WorkIndex], T.NoiseSeed);
  });

  // --- Commit measurements (serial, batch order). -------------------------
  if (Options.Memoize)
    for (size_t M = 0; M != MeasureWork.size(); ++M)
      BinaryCache.emplace(Compiled[MeasureWork[M].WorkIndex].BinaryHash,
                          Measured[M]);

  // --- Assemble results in genome order, classifying each answer as a
  // genome hit, binary hit, or miss. ---------------------------------------
  auto evaluationFor = [&](size_t I) -> Evaluation {
    uint64_t Hash = 0;
    bool CompileOk = false;
    if (WorkOf[I] != NoWork) {
      const CompiledBinary &B = Compiled[WorkOf[I]];
      CompileOk = B.Ok;
      Hash = B.BinaryHash;
    } else {
      const GenomeEntry &E = GenomeCache.at(Keys[I]);
      CompileOk = E.Ok;
      Hash = E.BinaryHash;
    }
    if (!CompileOk) {
      Evaluation E;
      E.Kind = EvalKind::CompileError;
      E.Error = support::ErrorCode::CompileFailed;
      return E;
    }
    if (Options.Memoize)
      return BinaryCache.at(Hash);
    return Measured[MeasureOf.at(Hash)];
  };

  for (size_t I = 0; I != N; ++I) {
    Results[I] = evaluationFor(I);
    if (WorkOf[I] != NoWork && CompileWork[WorkOf[I]] == I) {
      // This genome paid a fresh compile. A failed compile is a miss; an
      // Ok compile is a miss only if it also paid the measurement — when
      // the binary was already known (from an earlier batch, or an
      // earlier same-hash compile in this one) it is a binary-level hit.
      const CompiledBinary &B = Compiled[WorkOf[I]];
      auto MIt = B.Ok ? MeasureOf.find(B.BinaryHash) : MeasureOf.end();
      bool PaidMeasure = MIt != MeasureOf.end() &&
                         MeasureWork[MIt->second].WorkIndex == WorkOf[I];
      if (B.Ok && !PaidMeasure) {
        ++Cache.BinaryHits;
        Results[I].Origin = CacheOrigin::BinaryHit;
        ROPT_METRIC_INC("search.cache_hits");
      } else {
        ++Cache.Misses;
        Results[I].Origin = CacheOrigin::Fresh;
        ROPT_METRIC_INC("search.cache_misses");
      }
    } else {
      // Answered without compiling: genome-level hit (earlier batch or an
      // earlier duplicate within this one).
      ++Cache.GenomeHits;
      Results[I].Origin = CacheOrigin::GenomeHit;
      ROPT_METRIC_INC("search.cache_hits");
    }
    Stats.count(Results[I].Kind);
  }

  return Results;
}
