//===- search/EvaluationEngine.cpp - Parallel, memoizing fitness ----------===//

#include "search/EvaluationEngine.h"

#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::search;

EvalKind search::evalKindForError(support::ErrorCode Code) {
  switch (Code) {
  case support::ErrorCode::CompileFailed:
    return EvalKind::CompileError;
  case support::ErrorCode::ReplayCrash:
    return EvalKind::RuntimeCrash;
  case support::ErrorCode::ReplayTimeout:
    return EvalKind::RuntimeTimeout;
  case support::ErrorCode::OutputMismatch:
    return EvalKind::WrongOutput;
  case support::ErrorCode::CaptureNotReady:
  case support::ErrorCode::CaptureFailed:
  case support::ErrorCode::Unknown:
    // No capture means nothing ever ran: treat like a crash rather than a
    // compiler defect, so the GA rejects without blaming the pipeline.
    return EvalKind::RuntimeCrash;
  }
  return EvalKind::RuntimeCrash;
}

EvaluationEngine::EvaluationEngine(BackendFactory Factory,
                                   EngineOptions Options, uint64_t Seed)
    : Factory(std::move(Factory)), Options(Options), Seed(Seed) {
  size_t Jobs = Options.Jobs > 0 ? static_cast<size_t>(Options.Jobs)
                                 : ThreadPool::defaultThreadCount();
  Pool = std::make_unique<ThreadPool>(Jobs);
  ROPT_METRIC_GAUGE_SET("search.parallel_workers",
                        static_cast<double>(Jobs));
}

EvaluationEngine::~EvaluationEngine() = default;

size_t EvaluationEngine::jobs() const { return Pool->size(); }

void EvaluationEngine::ensureBackends(size_t Count) {
  // Backends are built serially on the calling thread so any RNG draws in
  // the factory happen in a deterministic order.
  while (Backends.size() < Count)
    Backends.push_back(Factory());
}

uint64_t EvaluationEngine::noiseSeed(uint64_t BinaryHash) const {
  // splitmix64 finalizer over (engine seed, binary hash): measurement
  // noise becomes a pure function of binary identity, so samples do not
  // depend on scheduling order or worker count.
  uint64_t Z = Seed ^ (BinaryHash + 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void EngineCounters::count(EvalKind K) {
  switch (K) {
  case EvalKind::Ok: ++Ok; break;
  case EvalKind::CompileError: ++CompileError; break;
  case EvalKind::RuntimeCrash: ++RuntimeCrash; break;
  case EvalKind::RuntimeTimeout: ++RuntimeTimeout; break;
  case EvalKind::WrongOutput: ++WrongOutput; break;
  case EvalKind::Unevaluated: break;
  }
}

std::vector<Evaluation>
EvaluationEngine::evaluateBatch(const std::vector<Genome> &Genomes) {
  ROPT_TRACE_SPAN_V("search.batch", static_cast<int64_t>(Genomes.size()));

  const size_t N = Genomes.size();
  std::vector<Evaluation> Results(N);
  if (N == 0)
    return Results;

  // --- Plan (serial, batch order): decide per genome whether its compile
  // outcome is already known, deduplicating textually equal genomes
  // within the batch. ------------------------------------------------------
  std::vector<std::string> Keys(N);
  // Genome index -> index into CompileWork, or SIZE_MAX when the compile
  // outcome comes from GenomeCache / an earlier duplicate in this batch.
  constexpr size_t NoWork = static_cast<size_t>(-1);
  std::vector<size_t> WorkOf(N, NoWork);
  std::vector<size_t> CompileWork; // genome indices to actually compile
  std::unordered_map<std::string, size_t> BatchFirst; // key -> work index

  for (size_t I = 0; I != N; ++I) {
    Keys[I] = Genomes[I].name();
    if (!Options.Memoize) {
      WorkOf[I] = CompileWork.size();
      CompileWork.push_back(I);
      continue;
    }
    if (GenomeCache.count(Keys[I]))
      continue; // answered from the genome-level cache
    auto It = BatchFirst.find(Keys[I]);
    if (It != BatchFirst.end()) {
      WorkOf[I] = It->second; // share the first occurrence's compile
      continue;
    }
    WorkOf[I] = CompileWork.size();
    BatchFirst.emplace(Keys[I], CompileWork.size());
    CompileWork.push_back(I);
  }

  // --- Compile stage (parallel). ------------------------------------------
  ensureBackends(std::min(Pool->size(), CompileWork.size()));
  std::vector<CompiledBinary> Compiled(CompileWork.size());
  Pool->parallelFor(CompileWork.size(), [&](size_t W, size_t Slot) {
    Compiled[W] = Backends[Slot]->compileGenome(Genomes[CompileWork[W]]);
  });

  // --- Commit compiles (serial, batch order) and plan the measure stage:
  // one measurement per distinct fresh binary. -----------------------------
  struct MeasureTask {
    size_t WorkIndex;   // into Compiled
    uint64_t NoiseSeed;
  };
  std::vector<MeasureTask> MeasureWork;
  std::unordered_map<uint64_t, size_t> MeasureOf; // hash -> MeasureWork idx

  for (size_t W = 0; W != Compiled.size(); ++W) {
    const CompiledBinary &B = Compiled[W];
    if (Options.Memoize)
      GenomeCache.emplace(Keys[CompileWork[W]],
                          GenomeEntry{B.Ok, B.BinaryHash});
    if (!B.Ok)
      continue;
    bool Known = Options.Memoize && BinaryCache.count(B.BinaryHash);
    if (!Known && !MeasureOf.count(B.BinaryHash)) {
      MeasureOf.emplace(B.BinaryHash, MeasureWork.size());
      MeasureWork.push_back(MeasureTask{W, noiseSeed(B.BinaryHash)});
    }
  }

  // --- Measure stage (parallel): every distinct fresh binary draws its
  // racing seed block, or the whole fixed budget when racing is off.
  // Same-binary batching: tasks are partitioned over backend lanes by
  // binary hash, so a binary measured again later (memoization off, or a
  // re-compiled duplicate) lands on the backend whose replay sessions and
  // verify cache already hold its state, and all of one binary's verified
  // replays run back-to-back on one backend under one shared code install.
  // The lane of a task is a pure function of the binary hash and the lane
  // count, never of scheduling — measurements themselves are pure
  // functions of (noise seed, index), so results stay bit-identical at
  // any --jobs value. ------------------------------------------------------
  const size_t MaxReplays =
      static_cast<size_t>(std::max(1, Options.MaxReplays));
  const size_t SeedBlock =
      Options.Racing
          ? std::min(static_cast<size_t>(std::max(1, Options.MinReplays)),
                     MaxReplays)
          : MaxReplays;
  std::vector<Evaluation> Measured(MeasureWork.size());
  const size_t LaneCount =
      std::max<size_t>(1, std::min(Pool->size(), MeasureWork.size()));
  ensureBackends(LaneCount);
  std::vector<std::vector<size_t>> Lanes(LaneCount);
  for (size_t M = 0; M != MeasureWork.size(); ++M) {
    uint64_t Hash = Compiled[MeasureWork[M].WorkIndex].BinaryHash;
    Lanes[Hash % LaneCount].push_back(M);
  }
  Pool->parallelFor(LaneCount, [&](size_t Lane, size_t Slot) {
    (void)Slot; // one task per lane: Backends[Lane] is single-threaded
    for (size_t M : Lanes[Lane]) {
      const MeasureTask &T = MeasureWork[M];
      Measured[M] = Backends[Lane]->measureBinary(Compiled[T.WorkIndex],
                                                  T.NoiseSeed, SeedBlock);
    }
  });

  // --- Commit the raw seed samples (serial, batch order) and collect the
  // racers. ----------------------------------------------------------------
  std::vector<Evaluation *> Racers;
  for (size_t M = 0; M != MeasureWork.size(); ++M) {
    Evaluation &E = Measured[M];
    if (!E.ok())
      continue;
    RawSamples[E.BinaryHash] = E.Samples; // raw; cleaned view built below
    Racing.ReplaysSpent += E.Samples.size();
    Racing.FixedBudget += MaxReplays;
    Racers.push_back(&E);
  }

  // --- Racing: serial batch-order escalation decisions, parallel block
  // draws (no-op when racing is off). --------------------------------------
  if (Options.Racing)
    raceFreshBinaries(Racers);

  // --- Finalize the public sample view and commit measurements (serial,
  // batch order). ----------------------------------------------------------
  for (Evaluation *E : Racers) {
    finalizeFromRaw(*E);
    ROPT_METRIC_OBSERVE("search.replays_per_eval", E->SamplesSpent,
                        ({1, 2, 3, 5, 7, 10, 15, 20}));
    if (static_cast<size_t>(E->SamplesSpent) < MaxReplays)
      ROPT_METRIC_ADD("search.replays_saved",
                      MaxReplays - static_cast<size_t>(E->SamplesSpent));
  }
  if (Options.Memoize)
    for (size_t M = 0; M != MeasureWork.size(); ++M)
      BinaryCache.emplace(Compiled[MeasureWork[M].WorkIndex].BinaryHash,
                          Measured[M]);

  // --- Assemble results in genome order, classifying each answer as a
  // genome hit, binary hit, or miss. ---------------------------------------
  auto evaluationFor = [&](size_t I) -> Evaluation {
    uint64_t Hash = 0;
    bool CompileOk = false;
    if (WorkOf[I] != NoWork) {
      const CompiledBinary &B = Compiled[WorkOf[I]];
      CompileOk = B.Ok;
      Hash = B.BinaryHash;
    } else {
      const GenomeEntry &E = GenomeCache.at(Keys[I]);
      CompileOk = E.Ok;
      Hash = E.BinaryHash;
    }
    if (!CompileOk) {
      Evaluation E;
      E.Kind = EvalKind::CompileError;
      E.Error = support::ErrorCode::CompileFailed;
      return E;
    }
    if (Options.Memoize)
      return BinaryCache.at(Hash);
    return Measured[MeasureOf.at(Hash)];
  };

  for (size_t I = 0; I != N; ++I) {
    Results[I] = evaluationFor(I);
    if (WorkOf[I] != NoWork && CompileWork[WorkOf[I]] == I) {
      // This genome paid a fresh compile. A failed compile is a miss; an
      // Ok compile is a miss only if it also paid the measurement — when
      // the binary was already known (from an earlier batch, or an
      // earlier same-hash compile in this one) it is a binary-level hit.
      const CompiledBinary &B = Compiled[WorkOf[I]];
      auto MIt = B.Ok ? MeasureOf.find(B.BinaryHash) : MeasureOf.end();
      bool PaidMeasure = MIt != MeasureOf.end() &&
                         MeasureWork[MIt->second].WorkIndex == WorkOf[I];
      if (B.Ok && !PaidMeasure) {
        ++Cache.BinaryHits;
        Results[I].Origin = CacheOrigin::BinaryHit;
        ROPT_METRIC_INC("search.cache_hits");
      } else {
        ++Cache.Misses;
        Results[I].Origin = CacheOrigin::Fresh;
        ROPT_METRIC_INC("search.cache_misses");
      }
    } else {
      // Answered without compiling: genome-level hit (earlier batch or an
      // earlier duplicate within this one).
      ++Cache.GenomeHits;
      Results[I].Origin = CacheOrigin::GenomeHit;
      ROPT_METRIC_INC("search.cache_hits");
    }
    Stats.count(Results[I].Kind);
  }

  return Results;
}

void EvaluationEngine::finalizeFromRaw(Evaluation &E) const {
  auto It = RawSamples.find(E.BinaryHash);
  if (It == RawSamples.end())
    return;
  E.Samples = removeOutliersMAD(It->second);
  E.MedianCycles = median(E.Samples);
  E.SamplesSpent = static_cast<int>(It->second.size());
}

void EvaluationEngine::raceFreshBinaries(
    const std::vector<Evaluation *> &Racers) {
  if (Racers.empty())
    return;
  const size_t Max = static_cast<size_t>(std::max(1, Options.MaxReplays));
  const size_t Block =
      std::min(static_cast<size_t>(std::max(1, Options.MinReplays)), Max);
  // Escalation rounds needed to go from the seed block to the full budget
  // in steps of Block; the alpha-spending schedule is laid out over
  // exactly this horizon so the whole race spends RacingAlpha.
  const int MaxRounds = static_cast<int>((Max - Block + Block - 1) / Block);
  if (MaxRounds == 0)
    return; // seed block is already the full budget

  // The reference every candidate races against: the search's announced
  // incumbent, or — before any announcement (generation 0) — the batch-
  // local leader: lowest seed-block median, ties broken by batch order.
  // The leader takes part in escalation (it needs full samples to become
  // a trustworthy reference) but is never tested against itself.
  const Evaluation *Leader = nullptr;
  if (IncumbentSamples.empty()) {
    double LeaderMedian = 0.0;
    for (const Evaluation *E : Racers) {
      double Med = median(removeOutliersMAD(RawSamples.at(E->BinaryHash)));
      if (!Leader || Med < LeaderMedian) {
        Leader = E;
        LeaderMedian = Med;
      }
    }
  }

  struct Extension {
    Evaluation *E;
    size_t Begin;
    size_t Count;
    std::vector<double> Drawn;
  };

  std::vector<char> Active(Racers.size(), 1);
  for (int Round = 1; Round <= MaxRounds; ++Round) {
    double RoundAlpha =
        racingRoundAlpha(Options.RacingAlpha, Round, MaxRounds);
    const std::vector<double> Reference =
        IncumbentSamples.empty()
            ? removeOutliersMAD(RawSamples.at(Leader->BinaryHash))
            : IncumbentSamples;

    // Decide (serial, batch order): early-stop statistically-clear
    // losers, grant everyone else another block.
    std::vector<Extension> Extensions;
    for (size_t I = 0; I != Racers.size(); ++I) {
      if (!Active[I])
        continue;
      Evaluation *E = Racers[I];
      std::vector<double> &Raw = RawSamples.at(E->BinaryHash);
      if (Raw.size() >= Max) {
        Active[I] = 0;
        continue;
      }
      if (E != Leader &&
          compareSamples(removeOutliersMAD(Raw), Reference, RoundAlpha) ==
              SampleOrder::Greater) {
        Active[I] = 0;
        E->EarlyStop = true;
        ++Racing.EarlyStops;
        ROPT_METRIC_INC("search.early_stops");
        continue;
      }
      Extensions.push_back(
          Extension{E, Raw.size(), std::min(Block, Max - Raw.size()), {}});
      ++E->EscalationRounds;
      ++Racing.Escalations;
      ROPT_METRIC_INC("search.escalations");
    }
    if (Extensions.empty())
      break;

    // Draw the granted blocks (parallel): sample i is a pure function of
    // (noise seed, i), so values are independent of scheduling.
    ensureBackends(std::min(Pool->size(), Extensions.size()));
    Pool->parallelFor(Extensions.size(), [&](size_t X, size_t Slot) {
      Extension &Ext = Extensions[X];
      Ext.Drawn = Backends[Slot]->extendSamples(
          *Ext.E, noiseSeed(Ext.E->BinaryHash), Ext.Begin, Ext.Count);
    });

    // Commit (serial, batch order).
    for (Extension &Ext : Extensions) {
      std::vector<double> &Raw = RawSamples.at(Ext.E->BinaryHash);
      Raw.insert(Raw.end(), Ext.Drawn.begin(), Ext.Drawn.end());
      Racing.ReplaysSpent += Ext.Drawn.size();
    }
  }
}

ReplayBackendStats EvaluationEngine::replayBackendStats() const {
  ReplayBackendStats Total;
  for (const std::unique_ptr<EvalBackend> &B : Backends)
    Total += B->replayStats();
  return Total;
}

Evaluation EvaluationEngine::announceIncumbent(const Evaluation &E) {
  if (!Options.Racing || !E.ok())
    return E;
  Evaluation Updated = E;
  auto It = RawSamples.find(E.BinaryHash);
  const size_t Max = static_cast<size_t>(std::max(1, Options.MaxReplays));
  if (It != RawSamples.end() && It->second.size() < Max) {
    // The incumbent is the one binary every future race is judged
    // against: give it the full measurement budget so the reference
    // samples are as tight as a fixed-budget run's.
    ensureBackends(1);
    std::vector<double> Drawn = Backends[0]->extendSamples(
        Updated, noiseSeed(E.BinaryHash), It->second.size(),
        Max - It->second.size());
    It->second.insert(It->second.end(), Drawn.begin(), Drawn.end());
    Racing.ReplaysSpent += Drawn.size();
    ++Racing.TopUps;
    finalizeFromRaw(Updated);
    Updated.EarlyStop = false; // now holds the full budget
    if (Options.Memoize) {
      auto CacheIt = BinaryCache.find(E.BinaryHash);
      if (CacheIt != BinaryCache.end()) {
        CacheIt->second.Samples = Updated.Samples;
        CacheIt->second.MedianCycles = Updated.MedianCycles;
        CacheIt->second.SamplesSpent = Updated.SamplesSpent;
        CacheIt->second.EarlyStop = false;
      }
    }
  }
  IncumbentSamples = Updated.Samples;
  return Updated;
}
