//===- report/ReportWriter.h - Run-directory artifact streams ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The filesystem half of the run-report flight recorder: creates the run
/// directory, owns the append-only JSONL streams (`evaluations.jsonl`,
/// `generations.jsonl`) and writes the whole-file artifacts
/// (`manifest.json`, `metrics.json`, `trace.json`) at finish time. All
/// appends go through one mutex and are flushed line-at-a-time, so a
/// crashed run leaves a readable prefix rather than a torn record.
///
/// Ordering is the caller's contract: RunReport appends strictly in batch
/// order on the search's calling thread, which is what keeps a seeded
/// run's record stream bit-identical at any `--jobs` value.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_REPORT_REPORT_WRITER_H
#define ROPT_REPORT_REPORT_WRITER_H

#include "support/Result.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace ropt {
namespace report {

/// Artifact file names inside a run directory.
inline constexpr const char *ManifestFile = "manifest.json";
inline constexpr const char *EvaluationsFile = "evaluations.jsonl";
inline constexpr const char *GenerationsFile = "generations.jsonl";
inline constexpr const char *MetricsFile = "metrics.json";
inline constexpr const char *TraceFile = "trace.json";
/// Per-(round, device) log of a fleet run; absent in single-device runs
/// (readers treat a missing stream as "pre-fleet or non-fleet run").
inline constexpr const char *FleetFile = "fleet.jsonl";
/// Per-region observability-loop records (schema 3): one line per
/// candidate region per app with its feature vector, bottleneck label,
/// slack and budget share. Absent in pre-analysis run directories.
inline constexpr const char *AnalysisFile = "analysis.jsonl";
/// Fleet-wide Chrome trace on the virtual clock (schema 5): one track
/// per device class per coordinator cell, async delivery arrows, churn
/// instants. Absent in non-fleet runs.
inline constexpr const char *FleetTraceFile = "fleet.trace.json";
/// Mergeable per-class telemetry sketches and provenance chains
/// (schema 5). Absent in non-fleet runs. Unlike metrics.json this is a
/// pure function of the simulation, so it is written even when the
/// observability layer is compiled out.
inline constexpr const char *TelemetryFile = "telemetry.json";

/// Owns one run directory and its streams. Create through open();
/// destruction closes the streams (finish-time artifacts are the
/// RunReport's job).
class ReportWriter {
public:
  /// Creates \p Dir (and parents) and opens the JSONL streams for
  /// truncation-append. Fails when the directory or streams cannot be
  /// created.
  static support::Result<std::unique_ptr<ReportWriter>>
  open(const std::string &Dir);

  ~ReportWriter();
  ReportWriter(const ReportWriter &) = delete;
  ReportWriter &operator=(const ReportWriter &) = delete;

  const std::string &directory() const { return Dir; }

  /// Appends one pre-rendered JSON object as a line; flushes.
  void appendEvaluation(const std::string &Json);
  void appendGeneration(const std::string &Json);
  /// Same, for the fleet round log. The stream opens lazily on first
  /// append, so only fleet runs grow a fleet.jsonl.
  void appendFleetRound(const std::string &Json);
  /// Same, for the per-region analysis log; lazily opened, so only runs
  /// that produced a region analysis grow an analysis.jsonl.
  void appendAnalysis(const std::string &Json);

  /// Writes \p Content verbatim to `<dir>/<Name>`; false on I/O failure.
  bool writeFile(const char *Name, const std::string &Content);

private:
  explicit ReportWriter(std::string Dir) : Dir(std::move(Dir)) {}
  void appendLine(std::FILE *F, const std::string &Json);

  std::string Dir;
  std::mutex Mutex;
  std::FILE *Evals = nullptr;
  std::FILE *Gens = nullptr;
  std::FILE *Fleet = nullptr; ///< Lazily opened by appendFleetRound().
  std::FILE *Analysis = nullptr; ///< Lazily opened by appendAnalysis().
};

} // namespace report
} // namespace ropt

#endif // ROPT_REPORT_REPORT_WRITER_H
