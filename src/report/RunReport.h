//===- report/RunReport.h - The run-report flight recorder ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent provenance for every pipeline run: a RunReport owns one run
/// directory and records every genome evaluation (`evaluations.jsonl`),
/// every per-generation aggregate (`generations.jsonl`), per-app outcomes
/// and engine cache statistics (`manifest.json`), the final metrics
/// snapshot (`metrics.json`) and the Chrome trace (`trace.json`).
///
/// The recorder implements search::ProvenanceSink, so the GA hands it one
/// record per evaluation strictly in batch order on the calling thread.
/// Records carry no timestamps, doubles are formatted %.17g, and 64-bit
/// binary hashes are hex strings — a seeded run therefore produces a
/// byte-identical `evaluations.jsonl` at any `--jobs` value, which is
/// exactly what `ropt-report diff` leans on as a regression gate.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_REPORT_RUN_REPORT_H
#define ROPT_REPORT_RUN_REPORT_H

#include "analysis/FleetTrace.h"
#include "analysis/RegionAnalysis.h"
#include "fleet/Telemetry.h"
#include "fleet/Transport.h"
#include "report/ReportWriter.h"
#include "search/EvaluationEngine.h"
#include "search/GeneticSearch.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ropt {
namespace report {

/// What the harness knows about the run before it starts; lands in
/// manifest.json verbatim.
struct RunInfo {
  std::string Tool;     ///< Harness name, e.g. "fig09_ga_evolution".
  uint64_t Seed = 1;
  int Jobs = 0;         ///< Requested workers (0 = hardware).
  bool Fast = false;
  bool Memoize = true;
  int Generations = 0;
  int PopulationSize = 0;
  bool Racing = false; ///< Adaptive measurement racing enabled?
  int MinReplaysPerEvaluation = 0; ///< Racing seed/escalation block.
  int MaxReplaysPerEvaluation = 0; ///< Measurement budget per binary.
  int CapturesPerRegion = 0;
  bool AnalysisGuided = false; ///< Criticality-weighted search budget?
  /// Schema 6: fork-server replay sessions in the evaluation backends?
  bool SessionBackends = true;
  /// Schema 7: the persistent-store directory the run loaded/saved
  /// (config.store; empty = no store, a cold one-night run).
  std::string StoreDir;
};

/// Everything the harness reports when one app's pipeline run ends;
/// summarized per app in the manifest (and into the run totals).
struct AppOutcome {
  bool Succeeded = false;
  std::string FailureReason;
  search::EngineCounters Counters;  ///< GA + baseline verdict counts.
  search::EngineCacheStats Cache;   ///< The engine's memoization story.
  search::EngineRacingStats Racing; ///< Replay-budget accounting.
  /// Schema 6: fork-server replay-session accounting over the app's
  /// evaluation backends. Session/backend counts depend on worker count,
  /// so the manifest's "replay_backend" section is jobs-variant (like
  /// wall_seconds) — evaluations.jsonl stays byte-identical regardless.
  search::ReplayBackendStats ReplayBackend;
  double RegionAndroid = 0.0;
  double RegionO3 = 0.0;
  double RegionBest = 0.0;
  double SpeedupGaOverAndroid = 0.0;
  double SpeedupGaOverO3 = 0.0;
  /// The observability loop's region analysis (manifest "region_analysis"
  /// section + one analysis.jsonl line per region). A pure function of
  /// the profile, so manifests stay byte-identical across --jobs.
  analysis::AppAnalysis Analysis;
  /// What the search actually ran with (1.0 / 0 unless the run was
  /// analysis-guided).
  double AppliedBudgetScale = 1.0;
  uint32_t AppliedPassMask = 0;
};

/// One completed device step of a fleet run — one fleet.jsonl line.
/// Like evaluation records, it is a pure function of the run's results
/// (virtual times are simulated, not wall-clock), so a seeded fleet
/// run's step log is byte-identical at any `--jobs` value.
struct FleetRoundRecord {
  std::string App;
  int FleetDevices = 0; ///< Device count of the coordinator run (a sweep
                        ///< writes several runs into one stream).
  int Round = 0; ///< The device's step index (steps are asynchronous).
  int Device = 0;
  /// Virtual completion time of the step on the fleet event loop
  /// (schema 4; deterministic, unlike a wall clock).
  uint64_t VirtualTime = 0;
  double BestSpeedup = 0.0; ///< Device best-so-far vs its own baseline.
  std::string BestGenome;
  std::string BestSource; ///< search::genomeSourceName() spelling.
  bool BestFromHint = false;
  int HintsReceived = 0;
  int HintsAdopted = 0;
  int HintsRejected = 0;
  int Evaluations = 0;
  /// Schema 5: the device's hardware/user class and the provenance chain
  /// of its best genome — which device discovered it, and when (virtual
  /// time) the discovery happened.
  int DeviceClass = 0;
  uint64_t BestProvenance = 0; ///< 0 = no best yet.
  int BestDiscoveryDevice = -1;
  uint64_t BestDiscoveryTime = 0;
  // Transport accounting for this cell (hints + report deliveries).
  // Varies with injected network loss; everything above must not.
  int TransportAttempts = 0;
  uint64_t TransportDrops = 0;
  uint64_t TransportTicks = 0;
  bool Delivered = true; ///< The round report reached the server.
};

/// Schema 7: what the persistent optimization service contributed to
/// this run — the manifest's "warm_start" section. Written only when the
/// harness ran with --store.
struct WarmStartInfo {
  bool Used = false;          ///< A prior night's store was loaded.
  int StoreSchema = 0;        ///< Schema of the loaded document.
  uint64_t Nights = 0;        ///< Nights folded into the store pre-run.
  uint64_t EntriesLoaded = 0; ///< Leaderboard rows restored.
  uint64_t QuarantinedLoaded = 0; ///< Restored rows under quarantine.
  uint64_t HintsInjected = 0; ///< Warm-start hints pre-seeded to devices.
};

/// Schema 7: one per-class leaderboard row of the manifest's
/// "fleet.class_leaderboards" snapshot (top entries per device class at
/// the end of each sweep cell).
struct ClassLeaderboardRow {
  std::string App;
  int Devices = 0; ///< Sweep cell (device count) the row belongs to.
  int Class = 0;
  std::string Genome;
  double Speedup = 0.0;
  int Reports = 0;
  bool Restored = false; ///< Entry predates this run (store-loaded).
};

/// Run-level fleet aggregate for the manifest's "fleet" section.
struct FleetSummary {
  std::string DeviceSweep; ///< Device counts run, e.g. "1,4,16".
  int Rounds = 0;
  int TopK = 0;
  double DropProb = 0.0;
  double ReorderProb = 0.0;
  uint64_t HintsPublished = 0;
  uint64_t HintsAdopted = 0;
  uint64_t HintsRejected = 0;
  /// All sends, both channels, across the sweep (one shared struct and
  /// JSON emitter with FleetResult — see fleet/Transport.h).
  fleet::TransportStats Transport;
  double BestSpeedup = 0.0; ///< Best across the whole sweep.
  /// Schema 7: per-class leaderboard snapshot across the sweep cells.
  std::vector<ClassLeaderboardRow> ClassBoards;
};

/// The flight recorder. Open one per run, point PipelineConfig at it (it
/// is the search's ProvenanceSink), bracket each app with
/// beginApp()/endApp(), and call finish() (or let the destructor) to seal
/// the manifest.
class RunReport : public search::ProvenanceSink {
public:
  /// Creates \p Dir and its streams. \p Info is frozen into the manifest.
  static support::Result<std::unique_ptr<RunReport>>
  open(const std::string &Dir, RunInfo Info);

  ~RunReport() override;

  const std::string &directory() const { return Writer->directory(); }

  /// Starts attributing records to \p AppName (the "app" field of every
  /// subsequent JSONL record).
  void beginApp(const std::string &AppName);
  /// Seals the current app's manifest entry.
  void endApp(const AppOutcome &Outcome);

  // ProvenanceSink: called by the GA in batch order.
  uint64_t onEvaluation(const search::Genome &G,
                        const search::Evaluation &E, int Generation,
                        const std::vector<uint64_t> &Parents) override;
  void onGenerationDone(const search::GenerationStats &S) override;

  /// One fleet round cell, appended to fleet.jsonl. The coordinator
  /// calls this serially in (round, device) order.
  void onFleetRound(const FleetRoundRecord &R);

  /// Installs the run-level fleet aggregate; the manifest grows a
  /// "fleet" section (and bumps nothing else) only when this was called.
  void setFleetSummary(const FleetSummary &S);

  /// Installs the persistent-store contribution; the manifest grows a
  /// "warm_start" section (schema 7) only when this was called.
  void setWarmStart(const WarmStartInfo &W);

  /// One coordinator cell's merged telemetry (schema 5). finish() folds
  /// every cell into telemetry.json: per-class sketches, the cell
  /// totals, a fleet-level merge, and all provenance chains.
  void onFleetCell(const fleet::FleetTelemetry &T);

  /// One coordinator cell's virtual-clock trace events; finish() renders
  /// every cell into one fleet.trace.json (one Chrome track per device
  /// class, async delivery arrows, churn instants).
  void onFleetTrace(const std::string &App, int Devices, int NumClasses,
                    const std::vector<analysis::FleetTraceEvent> &Events);

  /// Writes manifest.json, metrics.json and (when the recorder is
  /// enabled) trace.json. Idempotent; returns false on I/O failure.
  bool finish();

private:
  RunReport(std::unique_ptr<ReportWriter> Writer, RunInfo Info);

  struct AppEntry {
    std::string Name;
    AppOutcome Outcome;
    bool Ended = false;
  };

  std::string manifestJson() const;

  std::unique_ptr<ReportWriter> Writer;
  RunInfo Info;
  std::chrono::steady_clock::time_point Start;

  mutable std::mutex Mutex;
  std::vector<AppEntry> Apps;
  uint64_t NextId = 1;
  uint64_t TotalEvaluations = 0;
  bool Finished = false;
  bool HasFleet = false;
  FleetSummary Fleet;
  bool HasWarmStart = false;
  WarmStartInfo Warm;
  std::vector<fleet::FleetTelemetry> TelemetryCells;
  analysis::FleetTrace FleetTraceOut;
};

} // namespace report
} // namespace ropt

#endif // ROPT_REPORT_RUN_REPORT_H
