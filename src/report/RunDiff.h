//===- report/RunDiff.h - Loading, summarizing, diffing runs ----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the run-report flight recorder: parse a run directory
/// back into typed records, validate its artifacts, render a human (or
/// markdown) summary, and diff two runs as a regression gate — fitness
/// regressions beyond a configurable threshold and verdict-mix shifts
/// both fail the gate, which is what `ropt-report diff` exits non-zero
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_REPORT_RUN_DIFF_H
#define ROPT_REPORT_RUN_DIFF_H

#include "support/Json.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ropt {
namespace report {

/// One evaluations.jsonl record, parsed.
struct EvalRecord {
  uint64_t Id = 0;
  std::string App;
  int Generation = 0;
  std::string Genome;
  std::vector<uint64_t> Parents;
  std::string Verdict; ///< evalKindName spelling ("ok", "compile-error"...).
  std::string Error;   ///< errorCodeName spelling; "" when verdict is ok.
  std::string Cache;   ///< "miss", "genome-hit" or "binary-hit".
  double MedianCycles = 0.0;
  double CiLow = 0.0;
  double CiHigh = 0.0;
  uint64_t CodeSize = 0;
  std::string BinaryHash; ///< "0x..." hex string.
  int SamplesSpent = 0;      ///< Raw measurement replays paid.
  int EscalationRounds = 0;  ///< Racing blocks beyond the seed block.
  bool EarlyStop = false;    ///< Race ended as a statistically-clear loser.
};

/// One generations.jsonl record, parsed.
struct GenRecord {
  std::string App;
  int Generation = 0;
  int Evaluations = 0;
  int Invalid = 0;
  double BestCycles = 0.0;
  double WorstCycles = 0.0;
  double MeanCycles = 0.0;
};

/// One fleet.jsonl record, parsed (schema 2; absent in pre-fleet runs).
struct FleetRecord {
  std::string App;
  int FleetDevices = 0; ///< Device count of the coordinator run.
  int Round = 0;        ///< The device's step index (async since schema 4).
  int Device = 0;
  /// Virtual completion time of the step (schema 4; 0 on older runs).
  uint64_t VirtualTime = 0;
  double BestSpeedup = 0.0;
  std::string BestGenome;
  std::string BestSource; ///< search::genomeSourceName spelling.
  bool BestFromHint = false;
  int HintsReceived = 0;
  int HintsAdopted = 0;
  int HintsRejected = 0;
  int Evaluations = 0;
  /// Schema 5 provenance fields; zero/-1 defaults on older streams.
  int DeviceClass = 0;
  uint64_t BestProvenance = 0; ///< Parsed from the "0x..." hex spelling.
  int BestDiscoveryDevice = -1;
  uint64_t BestDiscoveryTime = 0;
  int TransportAttempts = 0;
  double TransportDrops = 0.0;
  double TransportTicks = 0.0;
  bool Delivered = true;
};

/// One analysis.jsonl record, parsed (schema 3; absent in pre-analysis
/// runs): a candidate region's feature vector, bottleneck label and
/// budget allocation.
struct AnalysisRecord {
  std::string App;
  uint64_t Root = 0;
  std::string RootName;
  std::string Label; ///< bottleneckName spelling ("memory_bound"...).
  // Feature vector (the classifier's auditable inputs).
  double Cycles = 0.0;
  double Insns = 0.0;
  double Branches = 0.0;
  double Mispredicts = 0.0;
  double MemReads = 0.0;
  double MemWrites = 0.0;
  double CacheMisses = 0.0;
  double Allocs = 0.0;
  double AllocSlots = 0.0;
  double NativeCycles = 0.0;
  double NativeShare = 0.0;
  double MemShare = 0.0;
  double MispredictsPerKiloInsn = 0.0;
  // Criticality + allocation.
  double CriticalPathCycles = 0.0;
  std::vector<uint64_t> CriticalChain;
  double Slack = 0.0;
  double BudgetWeight = 0.0;
  double BudgetScale = 0.0;
  int Methods = 0;
};

/// A run directory pulled back into memory.
struct LoadedRun {
  std::string Dir;
  json::Value Manifest;
  std::vector<EvalRecord> Evaluations;
  std::vector<GenRecord> Generations;
  std::vector<FleetRecord> Fleet; ///< Empty when HasFleetLog is false.
  bool HasFleetLog = false;       ///< fleet.jsonl existed and parsed.
  std::vector<AnalysisRecord> Analysis; ///< Empty without analysis.jsonl.
  bool HasAnalysisLog = false; ///< analysis.jsonl existed and parsed.
  /// telemetry.json parsed wholesale (schema 5): per-class sketches, cell
  /// and fleet totals, provenance chains. Absent in non-fleet runs.
  json::Value Telemetry;
  bool HasTelemetry = false;
  /// metrics.json, when the run was built with the observability layer
  /// (schema-6 validation cross-checks replay counters against the
  /// manifest's session_backends claim).
  json::Value Metrics;
  bool HasMetrics = false;
};

/// Reads manifest.json + the JSONL streams. Fails on missing files or
/// unparseable JSON (line number in the message). fleet.jsonl is
/// optional — pre-fleet run directories load fine without one.
support::Result<LoadedRun> loadRun(const std::string &Dir);

/// Outcome of validateRun: problems fail the gate (ropt-report validate
/// exits 1), warnings are reported but tolerated — e.g. a pre-fleet run
/// directory missing the fleet section entirely.
struct ValidationResult {
  std::vector<std::string> Problems;
  std::vector<std::string> Warnings;

  bool ok() const { return Problems.empty(); }
};

/// Structural checks beyond parseability: manifest fields present, record
/// ids dense and increasing, parent ids referencing earlier records,
/// known verdict/cache spellings, and — when fleet artifacts are present
/// — round-log consistency against the manifest's fleet section.
ValidationResult validateRun(const LoadedRun &Run);

/// Renders the run: manifest header, per-app verdict breakdown, cache
/// hit rate, best-fitness-per-generation curve, top rejection reasons,
/// and — when the run directory has a non-empty trace.json — the top
/// spans by total and self duration.
std::string summarize(const LoadedRun &Run, bool Markdown = false);

/// Renders the observability-loop analysis of a run: per-app region DAG
/// summary (candidate regions hottest first), the critical region's
/// chain, and each region's bottleneck label, slack and budget share.
/// With \p Baseline, flags regions whose label changed between the runs.
/// A pure function of analysis.jsonl + the manifest — byte-identical for
/// byte-identical streams (never reads the trace or wall-clock fields).
std::string analyzeRun(const LoadedRun &Run,
                       const LoadedRun *Baseline = nullptr);

struct DiffOptions {
  /// Relative best-fitness slowdown that counts as a regression (B worse
  /// than A by more than this fraction).
  double FitnessThreshold = 0.02;
  /// Absolute shift in a verdict's share of evaluations that counts as a
  /// mix shift.
  double MixThreshold = 0.05;
  /// Relative drop in a fleet cell's final best speedup that counts as a
  /// fleet regression. Looser than the fitness gate: fleet bests ride on
  /// hint timing, so small wobbles between configurations are expected.
  double FleetThreshold = 0.05;
};

struct DiffResult {
  int FitnessRegressions = 0;
  int VerdictShifts = 0;
  /// Fleet gate (schema 5): per-(app, device-count) cells whose final
  /// best speedup regressed beyond DiffOptions::FleetThreshold.
  int FleetRegressions = 0;
  std::string Text; ///< Human-readable diff report.

  bool regressed() const {
    return FitnessRegressions != 0 || FleetRegressions != 0;
  }
};

/// Compares run B against baseline A, app by app.
DiffResult diffRuns(const LoadedRun &A, const LoadedRun &B,
                    const DiffOptions &Opt = DiffOptions());

/// The fleet view of a run (`ropt-report fleet`): per-(app, device-class)
/// round curves, top provenance chains (discovery -> merge -> adoption
/// with virtual-time latency), and transport health. With \p Baseline,
/// applies the same best-speedup gate as diffRuns and counts regressed
/// cells. A pure function of fleet.jsonl + telemetry.json.
struct FleetDiffResult {
  int Regressions = 0;
  std::string Text;
};
FleetDiffResult fleetReport(const LoadedRun &Run,
                            const LoadedRun *Baseline = nullptr,
                            double Threshold = 0.05);

} // namespace report
} // namespace ropt

#endif // ROPT_REPORT_RUN_DIFF_H
