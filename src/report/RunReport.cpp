//===- report/RunReport.cpp - The run-report flight recorder --------------===//

#include "report/RunReport.h"

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <cmath>
#include <cstdio>

using namespace ropt;
using namespace ropt::report;

#ifndef ROPT_GIT_DESCRIBE
#define ROPT_GIT_DESCRIBE "unknown"
#endif

namespace {

std::string hexHash(uint64_t H) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

std::string countersJson(const search::EngineCounters &C) {
  json::Builder B;
  B.field("ok", C.Ok)
      .field("compile_error", C.CompileError)
      .field("runtime_crash", C.RuntimeCrash)
      .field("runtime_timeout", C.RuntimeTimeout)
      .field("wrong_output", C.WrongOutput)
      .field("total", C.total());
  return std::move(B).str();
}

std::string cacheJson(const search::EngineCacheStats &S) {
  uint64_t Total = S.hits() + S.Misses;
  json::Builder B;
  B.field("genome_hits", S.GenomeHits)
      .field("binary_hits", S.BinaryHits)
      .field("misses", S.Misses)
      .field("hit_rate", Total ? static_cast<double>(S.hits()) /
                                     static_cast<double>(Total)
                               : 0.0);
  return std::move(B).str();
}

/// Fork-server session accounting (schema 6, "replay_backend"). Session
/// and backend counts depend on the worker count, so this section is
/// jobs-variant — like wall_seconds — while every measurement stream
/// stays byte-identical.
std::string replayBackendJson(const search::ReplayBackendStats &S) {
  json::Builder B;
  B.field("sessions_created", S.SessionsCreated)
      .field("session_replays", S.SessionReplays)
      .field("fresh_replays", S.FreshReplays)
      .field("delta_resets", S.DeltaResets)
      .field("pages_reverted", S.PagesReverted)
      .field("full_rebuilds", S.FullRebuilds)
      .field("pages_per_reset", S.pagesPerReset());
  return std::move(B).str();
}

std::string racingJson(const search::EngineRacingStats &S) {
  json::Builder B;
  B.field("replays_spent", S.ReplaysSpent)
      .field("fixed_budget", S.FixedBudget)
      .field("replays_saved", S.saved())
      .field("early_stops", S.EarlyStops)
      .field("escalations", S.Escalations)
      .field("top_ups", S.TopUps);
  return std::move(B).str();
}

/// Compact per-region entry for the manifest's "region_analysis" section
/// (the full feature vector lives in analysis.jsonl).
std::string regionManifestJson(const analysis::RegionReport &R) {
  json::Builder B;
  B.field("root", static_cast<uint64_t>(R.Root));
  B.field("root_name", R.RootName);
  B.field("label", analysis::bottleneckName(R.Label));
  B.field("cycles", R.Features.Cycles);
  B.field("critical_path_cycles", R.CriticalPathCycles);
  B.field("slack", R.Slack);
  B.field("budget_weight", R.BudgetWeight);
  B.field("budget_scale", R.BudgetScale);
  B.field("methods", static_cast<uint64_t>(R.Methods.size()));
  return std::move(B).str();
}

/// One analysis.jsonl line: the region's full auditable feature vector
/// next to the label and allocation it produced. Like evaluation records
/// it is a pure function of the profile — no timestamps, %.17g doubles —
/// so a seeded run's stream is byte-identical at any --jobs value.
std::string regionStreamJson(const std::string &App,
                             const analysis::RegionReport &R) {
  const analysis::RegionFeatures &F = R.Features;
  json::Builder B;
  B.field("app", App);
  B.field("root", static_cast<uint64_t>(R.Root));
  B.field("root_name", R.RootName);
  B.field("label", analysis::bottleneckName(R.Label));
  {
    json::Builder FB;
    FB.field("cycles", F.Cycles)
        .field("insns", F.Insns)
        .field("branches", F.Branches)
        .field("mispredicts", F.Mispredicts)
        .field("mem_reads", F.MemReads)
        .field("mem_writes", F.MemWrites)
        .field("cache_misses", F.CacheMisses)
        .field("allocs", F.Allocs)
        .field("alloc_slots", F.AllocSlots)
        .field("native_cycles", F.NativeCycles)
        .field("native_share", F.nativeShare())
        .field("mem_share", F.memShare())
        .field("mispredicts_per_kiloinsn", F.mispredictsPerKiloInsn());
    B.fieldRaw("features", std::move(FB).str());
  }
  B.field("critical_path_cycles", R.CriticalPathCycles);
  {
    json::Builder C(/*Array=*/true);
    for (dex::MethodId M : R.CriticalChain)
      C.element(static_cast<uint64_t>(M));
    B.fieldRaw("critical_chain", std::move(C).str());
  }
  B.field("slack", R.Slack);
  B.field("budget_weight", R.BudgetWeight);
  B.field("budget_scale", R.BudgetScale);
  B.field("methods", static_cast<uint64_t>(R.Methods.size()));
  return std::move(B).str();
}

} // namespace

support::Result<std::unique_ptr<RunReport>>
RunReport::open(const std::string &Dir, RunInfo Info) {
  support::Result<std::unique_ptr<ReportWriter>> W = ReportWriter::open(Dir);
  if (!W)
    return W.error();
  return std::unique_ptr<RunReport>(
      new RunReport(std::move(W).value(), std::move(Info)));
}

RunReport::RunReport(std::unique_ptr<ReportWriter> Writer, RunInfo Info)
    : Writer(std::move(Writer)), Info(std::move(Info)),
      Start(std::chrono::steady_clock::now()) {}

RunReport::~RunReport() { finish(); }

void RunReport::beginApp(const std::string &AppName) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Apps.push_back(AppEntry{AppName, AppOutcome{}, false});
}

void RunReport::endApp(const AppOutcome &Outcome) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Apps.empty() || Apps.back().Ended)
    Apps.push_back(AppEntry{"", AppOutcome{}, false});
  Apps.back().Outcome = Outcome;
  Apps.back().Ended = true;
  // One analysis.jsonl line per candidate region, hottest first (the
  // stream opens lazily, so pre-analysis harnesses don't grow the file).
  for (const analysis::RegionReport &R : Outcome.Analysis.Regions)
    Writer->appendAnalysis(regionStreamJson(Apps.back().Name, R));
}

uint64_t RunReport::onEvaluation(const search::Genome &G,
                                 const search::Evaluation &E, int Generation,
                                 const std::vector<uint64_t> &Parents) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Id = NextId++;
  ++TotalEvaluations;

  // The record must be a pure function of (id, app, genome, evaluation):
  // no timestamps, %.17g doubles, hashes as hex strings — this is what
  // keeps a seeded run byte-identical at any --jobs value.
  json::Builder B;
  B.field("id", Id);
  B.field("app", Apps.empty() ? std::string() : Apps.back().Name);
  B.field("gen", Generation);
  B.field("genome", G.name());
  {
    json::Builder P(/*Array=*/true);
    for (uint64_t Parent : Parents)
      P.element(Parent);
    B.fieldRaw("parents", std::move(P).str());
  }
  B.field("verdict", search::evalKindName(E.Kind));
  if (E.ok())
    B.fieldNull("error");
  else
    B.field("error", support::errorCodeName(E.Error));
  B.field("cache", search::cacheOriginName(E.Origin));
  B.field("median_cycles", E.MedianCycles);
  // Deterministic normal-approximation CI over the replay samples (the
  // bootstrap needs an RNG, which records must not consume).
  double CiLow = 0.0, CiHigh = 0.0;
  if (E.ok() && !E.Samples.empty()) {
    double M = mean(E.Samples);
    double Half = 1.96 * sampleStdDev(E.Samples) /
                  std::sqrt(static_cast<double>(E.Samples.size()));
    CiLow = M - Half;
    CiHigh = M + Half;
  }
  B.field("ci_low", CiLow);
  B.field("ci_high", CiHigh);
  {
    json::Builder S(/*Array=*/true);
    for (double Sample : E.Samples)
      S.element(Sample);
    B.fieldRaw("samples", std::move(S).str());
  }
  B.field("code_size", E.CodeSize);
  B.field("binary_hash", hexHash(E.BinaryHash));
  // Measurement-racing provenance: how many raw replays this evaluation
  // paid, how many escalation blocks it was granted, and whether it was
  // terminated early as a statistically-clear loser.
  B.field("samples_spent", E.SamplesSpent);
  B.field("escalation_rounds", E.EscalationRounds);
  B.field("early_stop", E.EarlyStop);
  Writer->appendEvaluation(std::move(B).str());
  return Id;
}

void RunReport::onFleetRound(const FleetRoundRecord &R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Builder B;
  B.field("app", R.App);
  B.field("devices", R.FleetDevices);
  B.field("round", R.Round);
  B.field("device", R.Device);
  B.field("virtual_time", R.VirtualTime);
  B.field("best_speedup", R.BestSpeedup);
  B.field("best_genome", R.BestGenome);
  B.field("best_source", R.BestSource);
  B.field("best_from_hint", R.BestFromHint);
  B.field("hints_received", R.HintsReceived);
  B.field("hints_adopted", R.HintsAdopted);
  B.field("hints_rejected", R.HintsRejected);
  B.field("evaluations", R.Evaluations);
  // Schema 5: the device's class and the best genome's provenance chain.
  B.field("device_class", R.DeviceClass);
  B.field("best_provenance", hexHash(R.BestProvenance));
  B.field("best_discovery_device", R.BestDiscoveryDevice);
  B.field("best_discovery_time", R.BestDiscoveryTime);
  B.field("transport_attempts", R.TransportAttempts);
  B.field("transport_drops", R.TransportDrops);
  B.field("transport_ticks", R.TransportTicks);
  B.field("delivered", R.Delivered);
  Writer->appendFleetRound(std::move(B).str());
}

void RunReport::setFleetSummary(const FleetSummary &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  HasFleet = true;
  Fleet = S;
}

void RunReport::setWarmStart(const WarmStartInfo &W) {
  std::lock_guard<std::mutex> Lock(Mutex);
  HasWarmStart = true;
  Warm = W;
}

void RunReport::onFleetCell(const fleet::FleetTelemetry &T) {
  std::lock_guard<std::mutex> Lock(Mutex);
  TelemetryCells.push_back(T);
}

void RunReport::onFleetTrace(
    const std::string &App, int Devices, int NumClasses,
    const std::vector<analysis::FleetTraceEvent> &Events) {
  std::lock_guard<std::mutex> Lock(Mutex);
  FleetTraceOut.beginCell(App, Devices, NumClasses);
  for (const analysis::FleetTraceEvent &E : Events)
    FleetTraceOut.add(E);
}

void RunReport::onGenerationDone(const search::GenerationStats &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Builder B;
  B.field("app", Apps.empty() ? std::string() : Apps.back().Name);
  B.field("gen", S.Generation);
  B.field("evaluations", S.Evaluations);
  B.field("invalid", S.Invalid);
  B.field("best_cycles", S.BestCycles);
  B.field("worst_cycles", S.WorstCycles);
  B.field("mean_cycles", S.MeanCycles);
  Writer->appendGeneration(std::move(B).str());
}

std::string RunReport::manifestJson() const {
  double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  search::EngineCounters Totals;
  search::EngineCacheStats CacheTotals;
  search::EngineRacingStats RacingTotals;
  search::ReplayBackendStats ReplayTotals;
  for (const AppEntry &A : Apps) {
    Totals += A.Outcome.Counters;
    CacheTotals.GenomeHits += A.Outcome.Cache.GenomeHits;
    CacheTotals.BinaryHits += A.Outcome.Cache.BinaryHits;
    CacheTotals.Misses += A.Outcome.Cache.Misses;
    RacingTotals.ReplaysSpent += A.Outcome.Racing.ReplaysSpent;
    RacingTotals.FixedBudget += A.Outcome.Racing.FixedBudget;
    RacingTotals.EarlyStops += A.Outcome.Racing.EarlyStops;
    RacingTotals.Escalations += A.Outcome.Racing.Escalations;
    RacingTotals.TopUps += A.Outcome.Racing.TopUps;
    ReplayTotals += A.Outcome.ReplayBackend;
  }

  json::Builder B;
  // Schema 2 added the optional fleet section/stream; schema 3 the
  // observability flag, the per-app region_analysis section and the
  // analysis.jsonl stream; schema 4 the virtual_time field on fleet
  // records and the TransportStats fleet-section fields; schema 5 the
  // per-record provenance fields (device_class, best_provenance,
  // best_discovery_*) plus the telemetry.json and fleet.trace.json
  // artifacts; schema 6 the config session_backends flag and the
  // per-app/totals "replay_backend" sections (fork-server replay
  // sessions); schema 7 the config store field, the warm_start section
  // and the fleet class_leaderboards snapshot (the persistent
  // optimization service). Readers accept all seven.
  B.field("schema", 7);
  B.field("tool", Info.Tool);
  B.field("git", ROPT_GIT_DESCRIBE);
  B.field("seed", Info.Seed);
  B.field("jobs", Info.Jobs);
  B.field("fast", Info.Fast);
  // Whether the build carried the tracing/metrics layer at all: readers
  // treat a missing trace.json/metrics.json in an observability:false
  // run directory as expected, not truncated.
  B.field("observability", ROPT_OBSERVABILITY != 0);
  {
    json::Builder C;
    C.field("generations", Info.Generations)
        .field("population", Info.PopulationSize)
        .field("racing", Info.Racing)
        .field("min_replays_per_evaluation", Info.MinReplaysPerEvaluation)
        .field("max_replays_per_evaluation", Info.MaxReplaysPerEvaluation)
        .field("captures_per_region", Info.CapturesPerRegion)
        .field("memoize", Info.Memoize)
        .field("analysis_guided", Info.AnalysisGuided)
        .field("session_backends", Info.SessionBackends)
        .field("store", Info.StoreDir);
    B.fieldRaw("config", std::move(C).str());
  }
  B.field("wall_seconds", WallSeconds);
  B.field("evaluations", TotalEvaluations);
  {
    json::Builder AppsB(/*Array=*/true);
    for (const AppEntry &A : Apps) {
      json::Builder E;
      E.field("name", A.Name);
      E.field("succeeded", A.Outcome.Succeeded);
      if (A.Outcome.FailureReason.empty())
        E.fieldNull("failure");
      else
        E.field("failure", A.Outcome.FailureReason);
      E.fieldRaw("verdicts", countersJson(A.Outcome.Counters));
      E.fieldRaw("cache", cacheJson(A.Outcome.Cache));
      E.fieldRaw("racing", racingJson(A.Outcome.Racing));
      E.fieldRaw("replay_backend", replayBackendJson(A.Outcome.ReplayBackend));
      E.field("region_android_cycles", A.Outcome.RegionAndroid);
      E.field("region_o3_cycles", A.Outcome.RegionO3);
      E.field("region_best_cycles", A.Outcome.RegionBest);
      E.field("speedup_ga_over_android", A.Outcome.SpeedupGaOverAndroid);
      E.field("speedup_ga_over_o3", A.Outcome.SpeedupGaOverO3);
      if (!A.Outcome.Analysis.empty()) {
        json::Builder RegionsB(/*Array=*/true);
        for (const analysis::RegionReport &R : A.Outcome.Analysis.Regions)
          RegionsB.elementRaw(regionManifestJson(R));
        E.fieldRaw("region_analysis", std::move(RegionsB).str());
        E.field("applied_budget_scale", A.Outcome.AppliedBudgetScale);
        E.field("applied_pass_mask",
                static_cast<uint64_t>(A.Outcome.AppliedPassMask));
      }
      AppsB.elementRaw(std::move(E).str());
    }
    B.fieldRaw("apps", std::move(AppsB).str());
  }
  {
    json::Builder T;
    T.fieldRaw("verdicts", countersJson(Totals));
    T.fieldRaw("cache", cacheJson(CacheTotals));
    T.fieldRaw("racing", racingJson(RacingTotals));
    T.fieldRaw("replay_backend", replayBackendJson(ReplayTotals));
    B.fieldRaw("totals", std::move(T).str());
  }
  if (HasFleet) {
    json::Builder F;
    F.field("devices", Fleet.DeviceSweep)
        .field("rounds", Fleet.Rounds)
        .field("top_k", Fleet.TopK)
        .field("drop_prob", Fleet.DropProb)
        .field("reorder_prob", Fleet.ReorderProb)
        .field("hints_published", Fleet.HintsPublished)
        .field("hints_adopted", Fleet.HintsAdopted)
        .field("hints_rejected", Fleet.HintsRejected);
    Fleet.Transport.emitJson(F);
    F.field("best_speedup", Fleet.BestSpeedup);
    if (!Fleet.ClassBoards.empty()) {
      json::Builder Rows(/*Array=*/true);
      for (const ClassLeaderboardRow &R : Fleet.ClassBoards) {
        json::Builder Row;
        Row.field("app", R.App)
            .field("devices", R.Devices)
            .field("class", R.Class)
            .field("genome", R.Genome)
            .field("speedup", R.Speedup)
            .field("reports", R.Reports)
            .field("restored", R.Restored);
        Rows.elementRaw(std::move(Row).str());
      }
      F.fieldRaw("class_leaderboards", std::move(Rows).str());
    }
    B.fieldRaw("fleet", std::move(F).str());
  }
  if (HasWarmStart) {
    json::Builder W;
    W.field("used", Warm.Used)
        .field("store_schema", Warm.StoreSchema)
        .field("nights", Warm.Nights)
        .field("entries_loaded", Warm.EntriesLoaded)
        .field("quarantined_loaded", Warm.QuarantinedLoaded)
        .field("hints_injected", Warm.HintsInjected);
    B.fieldRaw("warm_start", std::move(W).str());
  }
  return std::move(B).str();
}

bool RunReport::finish() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Finished)
    return true;
  Finished = true;

  bool Ok = Writer->writeFile(ManifestFile, manifestJson());

  // Fleet telemetry + trace are pure functions of the simulation (virtual
  // clock, no wall time), so unlike metrics/trace they are written even
  // when the observability layer is compiled out — and stay byte-identical
  // at any --jobs.
  if (!TelemetryCells.empty()) {
    json::Builder B;
    B.field("schema", 5);
    uint64_t Dropped = 0;
    for (const fleet::FleetTelemetry &T : TelemetryCells)
      Dropped += T.DroppedEvents;
    B.field("dropped_events", Dropped);
    json::Builder Cells(/*Array=*/true);
    fleet::SketchSet FleetTotal;
    for (const fleet::FleetTelemetry &T : TelemetryCells) {
      Cells.elementRaw(T.json());
      FleetTotal += T.Total;
    }
    B.fieldRaw("cells", std::move(Cells).str());
    B.fieldRaw("fleet", FleetTotal.json());
    Ok &= Writer->writeFile(TelemetryFile, std::move(B).str());
  }
  if (!FleetTraceOut.empty())
    Ok &= Writer->writeFile(FleetTraceFile, FleetTraceOut.toChromeJson());

#if ROPT_OBSERVABILITY
  Ok &= Writer->writeFile(MetricsFile,
                          Metrics::instance().snapshot().toJson());
  Ok &= Writer->writeFile(TraceFile, TraceRecorder::instance().toChromeJson());
#else
  // The tracing/metrics layer is compiled out: writing empty shells would
  // only trip readers into treating the run as broken. The manifest's
  // observability:false field records why the files are absent.
#endif
  return Ok;
}
