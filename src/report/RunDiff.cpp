//===- report/RunDiff.cpp - Loading, summarizing, diffing runs ------------===//

#include "report/RunDiff.h"

#include "analysis/SpanDag.h"
#include "fleet/Telemetry.h"
#include "report/ReportWriter.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace ropt;
using namespace ropt::report;

// --- Loading ----------------------------------------------------------------

namespace {

support::Result<std::string> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return support::Error(support::ErrorCode::Unknown,
                          "cannot read " + Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Applies \p Fn to each non-empty line of \p Path as parsed JSON.
/// Returns an error naming the first bad line.
template <typename Fn>
support::Result<bool> forEachJsonl(const std::string &Path, Fn &&F) {
  support::Result<std::string> Text = slurp(Path);
  if (!Text)
    return Text.error();
  std::istringstream In(Text.value());
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    support::Result<json::Value> V = json::parse(Line);
    if (!V)
      return support::Error(support::ErrorCode::Unknown,
                            Path + ":" + std::to_string(LineNo) + ": " +
                                V.error().Message);
    F(V.value());
  }
  return true;
}

} // namespace

support::Result<LoadedRun> report::loadRun(const std::string &Dir) {
  LoadedRun Run;
  Run.Dir = Dir;

  support::Result<std::string> ManifestText =
      slurp(Dir + "/" + ManifestFile);
  if (!ManifestText)
    return ManifestText.error();
  support::Result<json::Value> Manifest = json::parse(ManifestText.value());
  if (!Manifest)
    return support::Error(support::ErrorCode::Unknown,
                          Dir + "/" + ManifestFile + ": " +
                              Manifest.error().Message);
  Run.Manifest = std::move(Manifest).value();

  support::Result<bool> Evals = forEachJsonl(
      Dir + "/" + EvaluationsFile, [&Run](const json::Value &V) {
        EvalRecord R;
        R.Id = static_cast<uint64_t>(V.number("id"));
        R.App = V.string("app");
        R.Generation = static_cast<int>(V.number("gen"));
        R.Genome = V.string("genome");
        if (const json::Value *P = V.find("parents"))
          for (const json::Value &E : P->elements())
            R.Parents.push_back(static_cast<uint64_t>(E.asNumber()));
        R.Verdict = V.string("verdict");
        R.Error = V.string("error");
        R.Cache = V.string("cache");
        R.MedianCycles = V.number("median_cycles");
        R.CiLow = V.number("ci_low");
        R.CiHigh = V.number("ci_high");
        R.CodeSize = static_cast<uint64_t>(V.number("code_size"));
        R.BinaryHash = V.string("binary_hash");
        R.SamplesSpent = static_cast<int>(V.number("samples_spent"));
        R.EscalationRounds =
            static_cast<int>(V.number("escalation_rounds"));
        if (const json::Value *ES = V.find("early_stop"))
          R.EarlyStop = ES->asBool();
        Run.Evaluations.push_back(std::move(R));
      });
  if (!Evals)
    return Evals.error();

  support::Result<bool> Gens = forEachJsonl(
      Dir + "/" + GenerationsFile, [&Run](const json::Value &V) {
        GenRecord R;
        R.App = V.string("app");
        R.Generation = static_cast<int>(V.number("gen"));
        R.Evaluations = static_cast<int>(V.number("evaluations"));
        R.Invalid = static_cast<int>(V.number("invalid"));
        R.BestCycles = V.number("best_cycles");
        R.WorstCycles = V.number("worst_cycles");
        R.MeanCycles = V.number("mean_cycles");
        Run.Generations.push_back(std::move(R));
      });
  if (!Gens)
    return Gens.error();

  // fleet.jsonl only exists for fleet runs (and only since schema 2);
  // a missing stream is normal, a present-but-unparseable one is not.
  std::string FleetPath = Dir + "/" + FleetFile;
  if (std::ifstream(FleetPath).good()) {
    Run.HasFleetLog = true;
    support::Result<bool> Fleet =
        forEachJsonl(FleetPath, [&Run](const json::Value &V) {
          FleetRecord R;
          R.App = V.string("app");
          R.FleetDevices = static_cast<int>(V.number("devices"));
          R.Round = static_cast<int>(V.number("round"));
          R.Device = static_cast<int>(V.number("device"));
          // Schema 4; absent (0) on older streams.
          R.VirtualTime = static_cast<uint64_t>(V.number("virtual_time"));
          R.BestSpeedup = V.number("best_speedup");
          R.BestGenome = V.string("best_genome");
          R.BestSource = V.string("best_source");
          if (const json::Value *F = V.find("best_from_hint"))
            R.BestFromHint = F->asBool();
          R.HintsReceived = static_cast<int>(V.number("hints_received"));
          R.HintsAdopted = static_cast<int>(V.number("hints_adopted"));
          R.HintsRejected = static_cast<int>(V.number("hints_rejected"));
          R.Evaluations = static_cast<int>(V.number("evaluations"));
          // Schema 5 provenance fields; defaults on older streams.
          R.DeviceClass = static_cast<int>(V.number("device_class"));
          std::string Prov = V.string("best_provenance");
          if (Prov.rfind("0x", 0) == 0)
            R.BestProvenance =
                std::strtoull(Prov.c_str() + 2, nullptr, 16);
          if (V.find("best_discovery_device"))
            R.BestDiscoveryDevice =
                static_cast<int>(V.number("best_discovery_device"));
          R.BestDiscoveryTime =
              static_cast<uint64_t>(V.number("best_discovery_time"));
          R.TransportAttempts =
              static_cast<int>(V.number("transport_attempts"));
          R.TransportDrops = V.number("transport_drops");
          R.TransportTicks = V.number("transport_ticks");
          if (const json::Value *D = V.find("delivered"))
            R.Delivered = D->asBool();
          Run.Fleet.push_back(std::move(R));
        });
    if (!Fleet)
      return Fleet.error();
  }

  // analysis.jsonl only exists since schema 3 and only for runs whose
  // pipeline produced a region analysis; absence is normal.
  std::string AnalysisPath = Dir + "/" + AnalysisFile;
  if (std::ifstream(AnalysisPath).good()) {
    Run.HasAnalysisLog = true;
    support::Result<bool> Analysis =
        forEachJsonl(AnalysisPath, [&Run](const json::Value &V) {
          AnalysisRecord R;
          R.App = V.string("app");
          R.Root = static_cast<uint64_t>(V.number("root"));
          R.RootName = V.string("root_name");
          R.Label = V.string("label");
          if (const json::Value *F = V.find("features")) {
            R.Cycles = F->number("cycles");
            R.Insns = F->number("insns");
            R.Branches = F->number("branches");
            R.Mispredicts = F->number("mispredicts");
            R.MemReads = F->number("mem_reads");
            R.MemWrites = F->number("mem_writes");
            R.CacheMisses = F->number("cache_misses");
            R.Allocs = F->number("allocs");
            R.AllocSlots = F->number("alloc_slots");
            R.NativeCycles = F->number("native_cycles");
            R.NativeShare = F->number("native_share");
            R.MemShare = F->number("mem_share");
            R.MispredictsPerKiloInsn =
                F->number("mispredicts_per_kiloinsn");
          }
          R.CriticalPathCycles = V.number("critical_path_cycles");
          if (const json::Value *C = V.find("critical_chain"))
            for (const json::Value &E : C->elements())
              R.CriticalChain.push_back(
                  static_cast<uint64_t>(E.asNumber()));
          R.Slack = V.number("slack");
          R.BudgetWeight = V.number("budget_weight");
          R.BudgetScale = V.number("budget_scale");
          R.Methods = static_cast<int>(V.number("methods"));
          Run.Analysis.push_back(std::move(R));
        });
    if (!Analysis)
      return Analysis.error();
  }

  // telemetry.json only exists since schema 5 and only for fleet runs;
  // absence is normal, an unparseable one is not.
  if (support::Result<std::string> TelemetryText =
          slurp(Dir + "/" + TelemetryFile)) {
    support::Result<json::Value> Telemetry =
        json::parse(TelemetryText.value());
    if (!Telemetry)
      return support::Error(support::ErrorCode::Unknown,
                            Dir + "/" + TelemetryFile + ": " +
                                Telemetry.error().Message);
    Run.Telemetry = std::move(Telemetry).value();
    Run.HasTelemetry = true;
  }

  // metrics.json only exists for observability builds; absence is normal,
  // an unparseable one is not.
  if (support::Result<std::string> MetricsText =
          slurp(Dir + "/" + MetricsFile)) {
    support::Result<json::Value> Metrics = json::parse(MetricsText.value());
    if (!Metrics)
      return support::Error(support::ErrorCode::Unknown,
                            Dir + "/" + MetricsFile + ": " +
                                Metrics.error().Message);
    Run.Metrics = std::move(Metrics).value();
    Run.HasMetrics = true;
  }

  return Run;
}

// --- Validation -------------------------------------------------------------

ValidationResult report::validateRun(const LoadedRun &Run) {
  ValidationResult Result;
  auto Problem = [&Result](std::string Msg) {
    Result.Problems.push_back(std::move(Msg));
  };
  auto Warning = [&Result](std::string Msg) {
    Result.Warnings.push_back(std::move(Msg));
  };

  for (const char *Key : {"schema", "tool", "git", "seed", "jobs",
                          "config", "apps", "totals"})
    if (!Run.Manifest.find(Key))
      Problem(std::string("manifest.json: missing field \"") + Key + "\"");
  // Schema 1 = pre-fleet runs, schema 2 added the optional fleet
  // section, schema 3 the observability flag and region analysis,
  // schema 4 virtual_time on fleet records, schema 5 per-record
  // provenance plus telemetry.json, schema 6 session_backends and the
  // replay_backend sections, schema 7 the persistent store (config.store,
  // warm_start section, fleet class_leaderboards); all stay loadable so
  // old baselines keep diffing against new runs.
  double Schema = Run.Manifest.number("schema");
  if (Run.Manifest.find("schema") && Schema != 1 && Schema != 2 &&
      Schema != 3 && Schema != 4 && Schema != 5 && Schema != 6 &&
      Schema != 7)
    Problem("manifest.json: unknown schema version");

  // Schema 7: a warm_start section only makes sense for a run that was
  // pointed at a store directory.
  if (const json::Value *W = Run.Manifest.find("warm_start")) {
    const json::Value *Config = Run.Manifest.find("config");
    std::string StoreDir = Config ? Config->string("store") : "";
    if (StoreDir.empty())
      Warning("manifest.json: warm_start section present but config.store "
              "is empty");
    if (W->number("entries_loaded") > 0 && !W->find("used"))
      Problem("manifest.json: warm_start section is missing \"used\"");
  }

  // Schema 6 session accounting: a run that *claims* fresh (non-session)
  // evaluation backends pays the loader on every replay, so a metrics
  // snapshot with replays but zero replay.pages_restored contradicts the
  // claim — loader stats were dropped somewhere (the exact bug session
  // mode's LoaderStats semantics were designed to avoid). Session runs
  // legitimately restore pages only once per session, so the check only
  // applies when session_backends is explicitly false.
  if (Schema >= 6 && Run.HasMetrics) {
    const json::Value *Config = Run.Manifest.find("config");
    const json::Value *SessionB =
        Config ? Config->find("session_backends") : nullptr;
    if (SessionB && !SessionB->asBool()) {
      if (const json::Value *Counters = Run.Metrics.find("counters")) {
        double Replays = Counters->number("replay.replays");
        double Restored = Counters->number("replay.pages_restored");
        if (Replays > 0.0 && Restored == 0.0)
          Warning("metrics.json: replay.pages_restored is zero in a "
                  "schema-6 run claiming fresh (session_backends=false) "
                  "backends — loader stats were lost");
      }
    }
  }

  // A run built without the tracing/metrics layer records
  // observability:false and legitimately has no trace.json/metrics.json;
  // that is worth a heads-up, never a gate failure.
  if (const json::Value *Obs = Run.Manifest.find("observability"))
    if (!Obs->asBool())
      Warning("manifest.json: run built with ROPT_OBSERVABILITY=0 — "
              "trace.json/metrics.json are intentionally absent");

  static const std::set<std::string> Verdicts = {
      "ok", "compile-error", "runtime-crash", "runtime-timeout",
      "wrong-output"};
  static const std::set<std::string> Caches = {"miss", "genome-hit",
                                               "binary-hit"};

  uint64_t LastId = 0;
  for (const EvalRecord &R : Run.Evaluations) {
    std::string Where = "evaluations.jsonl id " + std::to_string(R.Id);
    if (R.Id != LastId + 1)
      Problem(Where + ": ids not dense (expected " +
              std::to_string(LastId + 1) + ")");
    LastId = R.Id;
    if (!Verdicts.count(R.Verdict))
      Problem(Where + ": unknown verdict \"" + R.Verdict + "\"");
    if (!Caches.count(R.Cache))
      Problem(Where + ": unknown cache origin \"" + R.Cache + "\"");
    if (R.Verdict == "ok" && !R.Error.empty())
      Problem(Where + ": ok verdict carries error \"" + R.Error + "\"");
    for (uint64_t Parent : R.Parents)
      if (Parent == 0 || Parent >= R.Id)
        Problem(Where + ": parent " + std::to_string(Parent) +
                " does not reference an earlier record");
    if (R.BinaryHash.rfind("0x", 0) != 0)
      Problem(Where + ": binary_hash is not a hex string");
  }

  std::map<std::string, int> GenSeen;
  for (const GenRecord &G : Run.Generations) {
    if (G.Invalid > G.Evaluations)
      Problem("generations.jsonl " + G.App + " gen " +
              std::to_string(G.Generation) + ": invalid > evaluations");
    ++GenSeen[G.App];
  }
  (void)GenSeen;

  // --- Fleet artifacts. Their absence is normal for pre-fleet and
  // non-fleet runs, so presence mismatches are warnings; internally
  // inconsistent records are problems.
  const json::Value *FleetM = Run.Manifest.find("fleet");
  if (FleetM && !Run.HasFleetLog)
    Warning("manifest.json has a fleet section but fleet.jsonl is "
            "missing (truncated run directory?)");
  if (!FleetM && Run.HasFleetLog)
    Warning("fleet.jsonl present but manifest.json has no fleet section "
            "(pre-fleet tool wrote the manifest?)");

  static const std::set<std::string> Sources = {"random", "seeded", "bred",
                                                "hill-climb"};
  uint64_t Adopted = 0, Rejected = 0;
  // Schema 4 streams are written in event-commit order, so virtual times
  // must be non-decreasing within one (app, device-count) run.
  std::map<std::pair<std::string, int>, uint64_t> LastVirtual;
  for (size_t I = 0; I < Run.Fleet.size(); ++I) {
    const FleetRecord &R = Run.Fleet[I];
    std::string Where = "fleet.jsonl line " + std::to_string(I + 1);
    if (!R.BestGenome.empty() && !Sources.count(R.BestSource))
      Problem(Where + ": unknown best_source \"" + R.BestSource + "\"");
    if (R.HintsAdopted + R.HintsRejected > R.HintsReceived)
      Problem(Where + ": hints_adopted + hints_rejected > hints_received");
    if (R.FleetDevices > 0 && R.Device >= R.FleetDevices)
      Problem(Where + ": device id " + std::to_string(R.Device) +
              " out of range for a " + std::to_string(R.FleetDevices) +
              "-device run");
    if (R.BestSpeedup < 0.0)
      Problem(Where + ": negative best_speedup");
    uint64_t &Last = LastVirtual[{R.App, R.FleetDevices}];
    if (R.VirtualTime < Last)
      Problem(Where + ": virtual_time runs backwards (not commit order)");
    Last = R.VirtualTime;
    Adopted += static_cast<uint64_t>(R.HintsAdopted);
    Rejected += static_cast<uint64_t>(R.HintsRejected);
  }
  if (FleetM && Run.HasFleetLog) {
    if (static_cast<uint64_t>(FleetM->number("hints_adopted")) != Adopted)
      Problem("manifest.json fleet.hints_adopted disagrees with the "
              "fleet.jsonl round log");
    if (static_cast<uint64_t>(FleetM->number("hints_rejected")) != Rejected)
      Problem("manifest.json fleet.hints_rejected disagrees with the "
              "fleet.jsonl round log");
  }

  // --- Fleet telemetry (schema 5). The sketch-merge law is checkable
  // from the artifact alone: fixed bounds make the merge a bucket-wise
  // sum, so class sketches must sum exactly to their cell total and cell
  // totals to the fleet total. Chains must be causally ordered (nothing
  // merges or gets adopted before it was discovered), and every
  // fleet.jsonl best_provenance must resolve to a chain of its cell.
  if (Schema >= 5 && Run.HasFleetLog && !Run.HasTelemetry)
    Warning("schema-5 fleet run without telemetry.json (truncated run "
            "directory?)");
  // Chain ids and (discovery time, restored flag) per (app, devices)
  // cell, for the record cross-check below.
  std::map<std::pair<std::string, int>,
           std::map<uint64_t, std::pair<uint64_t, bool>>>
      CellChains;
  if (Run.HasTelemetry) {
    const json::Value &T = Run.Telemetry;
    auto CountsOf = [](const json::Value *S) {
      std::vector<uint64_t> C;
      if (S)
        if (const json::Value *Co = S->find("counts"))
          for (const json::Value &E : Co->elements())
            C.push_back(static_cast<uint64_t>(E.asNumber()));
      return C;
    };
    auto AddInto = [](std::vector<uint64_t> &Acc,
                      const std::vector<uint64_t> &C) {
      if (Acc.size() < C.size())
        Acc.resize(C.size(), 0);
      for (size_t I = 0; I < C.size(); ++I)
        Acc[I] += C[I];
    };
    static const char *SketchKeys[] = {"speedup", "step_ticks",
                                       "hint_latency"};
    std::map<std::string, std::vector<uint64_t>> FleetAcc;
    if (const json::Value *Cells = T.find("cells")) {
      int CellNo = 0;
      for (const json::Value &Cell : Cells->elements()) {
        ++CellNo;
        std::string Where =
            "telemetry.json cell " + std::to_string(CellNo);
        std::string App = Cell.string("app");
        int Devices = static_cast<int>(Cell.number("devices"));
        const json::Value *Total = Cell.find("total");
        for (const char *Key : SketchKeys) {
          std::vector<uint64_t> ClassSum;
          if (const json::Value *Classes = Cell.find("classes"))
            for (const json::Value &Cl : Classes->elements())
              AddInto(ClassSum, CountsOf(Cl.find(Key)));
          std::vector<uint64_t> CellTotal =
              CountsOf(Total ? Total->find(Key) : nullptr);
          if (ClassSum != CellTotal)
            Problem(Where + ": class " + Key +
                    " sketches do not sum to the cell total "
                    "(merge law violated)");
          AddInto(FleetAcc[Key], CellTotal);
        }
        if (const json::Value *Chains = Cell.find("chains"))
          for (const json::Value &Ch : Chains->elements()) {
            std::string Hex = Ch.string("id");
            uint64_t Id = Hex.rfind("0x", 0) == 0
                              ? std::strtoull(Hex.c_str() + 2, nullptr, 16)
                              : 0;
            uint64_t Disc =
                static_cast<uint64_t>(Ch.number("discovery_time"));
            uint64_t Merge =
                static_cast<uint64_t>(Ch.number("first_merge_time"));
            uint64_t Adopt =
                static_cast<uint64_t>(Ch.number("first_adopt_time"));
            // Schema 7: a chain restored from a persistent store was
            // discovered on a prior run's virtual clock, so same-clock
            // causality checks do not apply to its discovery time.
            bool Restored = false;
            if (const json::Value *R = Ch.find("restored"))
              Restored = R->asBool();
            std::string ChWhere = Where + " chain " + Hex;
            if (Id == 0)
              Problem(ChWhere + ": unparseable chain id");
            if (!Restored && Merge != 0 && Merge < Disc)
              Problem(ChWhere + ": merged before it was discovered");
            if (!Restored && Adopt != 0 && Adopt < Disc)
              Problem(ChWhere + ": adopted before it was discovered");
            if (Ch.number("adoptions") > 0 && Ch.number("arrivals") == 0)
              Problem(ChWhere + ": adoptions without any hint arrival");
            CellChains[{App, Devices}][Id] = {Disc, Restored};
          }
      }
    }
    for (const char *Key : SketchKeys) {
      std::vector<uint64_t> FleetTotal;
      if (const json::Value *F = T.find("fleet"))
        AddInto(FleetTotal, CountsOf(F->find(Key)));
      if (FleetAcc[Key] != FleetTotal)
        Problem(std::string("telemetry.json: cell ") + Key +
                " totals do not sum to the fleet total "
                "(merge law violated)");
    }
    for (size_t I = 0; I < Run.Fleet.size(); ++I) {
      const FleetRecord &R = Run.Fleet[I];
      // Undelivered reports never reach the server, so their genomes'
      // chains legitimately may not exist — only delivered records must
      // resolve.
      if (R.BestProvenance == 0 || !R.Delivered)
        continue;
      std::string Where = "fleet.jsonl line " + std::to_string(I + 1);
      auto Cell = CellChains.find({R.App, R.FleetDevices});
      if (Cell == CellChains.end()) {
        Problem(Where + ": best_provenance set but telemetry.json has "
                        "no chains for this cell");
        continue;
      }
      auto Chain = Cell->second.find(R.BestProvenance);
      if (Chain == Cell->second.end()) {
        Problem(Where + ": best_provenance does not resolve to a "
                        "telemetry chain");
        continue;
      }
      if (R.BestDiscoveryTime != Chain->second.first)
        Problem(Where + ": best_discovery_time disagrees with the "
                        "chain's discovery_time");
      // Restored chains were discovered on a prior run's clock, which
      // may legitimately read later than this run's step times.
      if (!Chain->second.second && R.BestDiscoveryTime > R.VirtualTime)
        Problem(Where + ": best genome discovered after the step that "
                        "reported it (time travel)");
    }
  }

  // --- Region analysis (schema 3). Absence is normal (pre-analysis runs
  // and harnesses whose pipeline never produced one); present records
  // must satisfy the allocator's invariants.
  static const std::set<std::string> Labels = {
      "native_heavy", "memory_bound", "branchy", "compute", "balanced"};
  std::map<std::string, double> WeightSum;
  std::map<std::string, int> SlackZero;
  for (size_t I = 0; I < Run.Analysis.size(); ++I) {
    const AnalysisRecord &R = Run.Analysis[I];
    std::string Where = "analysis.jsonl line " + std::to_string(I + 1);
    if (!Labels.count(R.Label))
      Problem(Where + ": unknown bottleneck label \"" + R.Label + "\"");
    if (R.BudgetWeight < 0.0 || R.BudgetWeight > 1.0)
      Problem(Where + ": budget_weight outside [0, 1]");
    if (R.BudgetScale < 0.0 || R.BudgetScale > 1.0)
      Problem(Where + ": budget_scale outside [0, 1]");
    if (R.Slack < 0.0)
      Problem(Where + ": negative slack");
    if (R.Slack == 0.0) {
      ++SlackZero[R.App];
      if (R.BudgetScale != 1.0)
        Problem(Where + ": the slack-0 region must keep the full budget "
                        "(budget_scale 1)");
    }
    if (R.CriticalPathCycles > R.Cycles)
      Problem(Where + ": critical_path_cycles exceeds region cycles");
    WeightSum[R.App] += R.BudgetWeight;
  }
  for (const auto &KV : WeightSum) {
    if (std::fabs(KV.second - 1.0) > 1e-9)
      Problem("analysis.jsonl " + KV.first +
              ": budget weights do not sum to 1");
    if (SlackZero[KV.first] != 1)
      Problem("analysis.jsonl " + KV.first +
              ": expected exactly one slack-0 region");
  }
  const bool ManifestHasAnalysis = [&Run] {
    const json::Value *AppsV = Run.Manifest.find("apps");
    if (!AppsV)
      return false;
    for (const json::Value &AppV : AppsV->elements())
      if (AppV.find("region_analysis"))
        return true;
    return false;
  }();
  if (ManifestHasAnalysis && !Run.HasAnalysisLog)
    Warning("manifest.json has region_analysis sections but "
            "analysis.jsonl is missing (truncated run directory?)");
  if (!ManifestHasAnalysis && Run.HasAnalysisLog)
    Warning("analysis.jsonl present but manifest.json has no "
            "region_analysis section (pre-analysis tool wrote the "
            "manifest?)");
  return Result;
}

// --- Summarizing ------------------------------------------------------------

namespace {

/// Per-app rollup of the evaluation stream.
struct AppRoll {
  int Total = 0;
  std::map<std::string, int> ByVerdict;
  std::map<std::string, int> ByError; ///< Rejection reasons only.
  int CacheHits = 0;
  int CacheMisses = 0;
  double BestCycles = 0.0; ///< Min ok median; 0 when no ok record.
};

std::map<std::string, AppRoll> rollUp(const LoadedRun &Run) {
  std::map<std::string, AppRoll> Apps;
  for (const EvalRecord &R : Run.Evaluations) {
    AppRoll &A = Apps[R.App];
    ++A.Total;
    ++A.ByVerdict[R.Verdict];
    if (R.Verdict != "ok" && !R.Error.empty())
      ++A.ByError[R.Error];
    if (R.Cache == "miss")
      ++A.CacheMisses;
    else
      ++A.CacheHits;
    if (R.Verdict == "ok" &&
        (A.BestCycles == 0.0 || R.MedianCycles < A.BestCycles))
      A.BestCycles = R.MedianCycles;
  }
  return Apps;
}

/// App order as the evaluation stream first mentions them (map iteration
/// would alphabetize; the stream order is the run order).
std::vector<std::string> appOrder(const LoadedRun &Run) {
  std::vector<std::string> Order;
  std::set<std::string> Seen;
  for (const EvalRecord &R : Run.Evaluations)
    if (Seen.insert(R.App).second)
      Order.push_back(R.App);
  return Order;
}

} // namespace

std::string report::summarize(const LoadedRun &Run, bool Markdown) {
  std::ostringstream Out;
  const json::Value &M = Run.Manifest;
  const char *H = Markdown ? "## " : "=== ";
  const char *HEnd = Markdown ? "" : " ===";

  Out << H << "run " << Run.Dir << HEnd << "\n";
  Out << "tool: " << M.string("tool", "?") << "   git: "
      << M.string("git", "?") << "\n";
  Out << "seed: " << static_cast<uint64_t>(M.number("seed")) << "   jobs: "
      << static_cast<int>(M.number("jobs"))
      << "   evaluations: " << Run.Evaluations.size() << "\n\n";

  std::map<std::string, AppRoll> Apps = rollUp(Run);
  for (const std::string &Name : appOrder(Run)) {
    const AppRoll &A = Apps[Name];
    Out << (Markdown ? "### " : "--- ") << Name
        << (Markdown ? "" : " ---") << "\n";

    Out << "verdicts:";
    for (const auto &KV : A.ByVerdict)
      Out << " " << KV.first << "=" << KV.second;
    Out << "  (total " << A.Total << ")\n";

    int CacheTotal = A.CacheHits + A.CacheMisses;
    Out << "cache: " << A.CacheHits << "/" << CacheTotal << " hits ("
        << format("%.1f", CacheTotal ? 100.0 * A.CacheHits / CacheTotal : 0.0)
        << "%)\n";

    // Replay-budget accounting (manifest "racing" per app), present in
    // both modes: spent vs the fixed-budget equivalent of the same fresh
    // measurements.
    if (const json::Value *AppsV = M.find("apps"))
      for (const json::Value &AppV : AppsV->elements()) {
        if (AppV.string("name") != Name)
          continue;
        const json::Value *R = AppV.find("racing");
        if (!R || R->number("fixed_budget") <= 0.0)
          break;
        double Spent = R->number("replays_spent");
        double Fixed = R->number("fixed_budget");
        Out << "replay budget: " << format("%.0f", Spent) << " spent vs "
            << format("%.0f", Fixed) << " fixed-budget equivalent ("
            << format("%.1f", 100.0 * (Fixed - Spent) / Fixed)
            << "% saved), early stops "
            << format("%.0f", R->number("early_stops")) << ", escalations "
            << format("%.0f", R->number("escalations")) << ", top-ups "
            << format("%.0f", R->number("top_ups")) << "\n";
        break;
      }

    // Fork-server session accounting (manifest "replay_backend" per app,
    // schema 6): how the replays above were served.
    if (const json::Value *AppsV = M.find("apps"))
      for (const json::Value &AppV : AppsV->elements()) {
        if (AppV.string("name") != Name)
          continue;
        const json::Value *RB = AppV.find("replay_backend");
        if (!RB)
          break;
        double SessionReplays = RB->number("session_replays");
        double FreshReplays = RB->number("fresh_replays");
        if (SessionReplays + FreshReplays <= 0.0)
          break;
        Out << "replay backend: " << format("%.0f", SessionReplays)
            << " session replays across "
            << format("%.0f", RB->number("sessions_created"))
            << " sessions, " << format("%.0f", RB->number("delta_resets"))
            << " delta resets (" << format("%.1f", RB->number("pages_per_reset"))
            << " pages/reset), " << format("%.0f", FreshReplays)
            << " fresh, " << format("%.0f", RB->number("full_rebuilds"))
            << " rebuilds\n";
        break;
      }

    if (!A.ByError.empty()) {
      // Top rejection reasons, most frequent first.
      std::vector<std::pair<int, std::string>> Reasons;
      for (const auto &KV : A.ByError)
        Reasons.push_back({KV.second, KV.first});
      std::sort(Reasons.rbegin(), Reasons.rend());
      Out << "rejections:";
      for (const auto &R : Reasons)
        Out << " " << R.second << "=" << R.first;
      Out << "\n";
    }

    bool Any = false;
    for (const GenRecord &G : Run.Generations) {
      if (G.App != Name)
        continue;
      if (!Any)
        Out << "best by generation:";
      Any = true;
      Out << " " << G.Generation << ":" << format("%.0f", G.BestCycles);
    }
    if (Any)
      Out << "\n";
    if (A.BestCycles != 0.0)
      Out << "best median cycles: " << format("%.1f", A.BestCycles)
          << "\n";
    // One line per candidate region from the observability loop (the
    // full story is `ropt-report analyze`).
    bool AnyRegion = false;
    for (const AnalysisRecord &R : Run.Analysis) {
      if (R.App != Name)
        continue;
      if (!AnyRegion)
        Out << "regions:";
      AnyRegion = true;
      Out << " " << R.RootName << "[" << R.Label << " "
          << format("%.0f", 100.0 * R.BudgetWeight) << "%]";
    }
    if (AnyRegion)
      Out << "\n";
    Out << "\n";
  }

  // Fleet section: manifest aggregate plus a per-(app, device-count)
  // round digest. Pre-fleet runs simply have neither.
  const json::Value *F = M.find("fleet");
  if (F || Run.HasFleetLog) {
    Out << H << "fleet" << HEnd << "\n";
    if (F) {
      Out << "devices: " << F->string("devices", "?") << "   rounds: "
          << static_cast<int>(F->number("rounds")) << "   top-k: "
          << static_cast<int>(F->number("top_k")) << "\n";
      Out << "hints: " << format("%.0f", F->number("hints_published"))
          << " published, " << format("%.0f", F->number("hints_adopted"))
          << " adopted, " << format("%.0f", F->number("hints_rejected"))
          << " rejected\n";
      Out << "transport: " << format("%.0f", F->number("transport_attempts"))
          << " attempts, " << format("%.0f", F->number("transport_drops"))
          << " drops (p=" << format("%.2f", F->number("drop_prob"))
          << "), " << format("%.0f", F->number("deliveries_failed"))
          << " failed deliveries\n";
      // TransportStats fields (schema 4); both default to 0 on old runs.
      Out << "reorders: " << format("%.0f", F->number("reorders"))
          << " drawn, " << format("%.0f", F->number("reorders_effective"))
          << " changed hint arrival order\n";
      Out << "best speedup: " << format("%.3f", F->number("best_speedup"))
          << "x\n";
      // Schema 7: per-class leaderboard winners, one line per
      // (app, devices, class) cell.
      if (const json::Value *Boards = F->find("class_leaderboards"))
        for (const json::Value &Row : Boards->elements())
          Out << "class board " << Row.string("app") << " x"
              << static_cast<int>(Row.number("devices")) << " c"
              << static_cast<int>(Row.number("class")) << ": "
              << Row.string("genome") << " "
              << format("%.3f", Row.number("speedup")) << "x ("
              << static_cast<int>(Row.number("reports")) << " reports"
              << (Row.find("restored") && Row.find("restored")->asBool()
                      ? ", restored"
                      : "")
              << ")\n";
    }
    // Schema 7: the persistent-store warm start, if the run used one.
    if (const json::Value *W = Run.Manifest.find("warm_start")) {
      Out << "warm start: "
          << (W->find("used") && W->find("used")->asBool() ? "yes" : "no")
          << ", night " << static_cast<int>(W->number("nights")) << ", "
          << static_cast<int>(W->number("entries_loaded")) << " entries ("
          << static_cast<int>(W->number("quarantined_loaded"))
          << " quarantined) loaded, "
          << static_cast<int>(W->number("hints_injected"))
          << " hints pre-seeded\n";
    }
    // Group the step log by (app, device count) in stream order.
    std::vector<std::pair<std::string, int>> Groups;
    for (const FleetRecord &R : Run.Fleet) {
      std::pair<std::string, int> Key{R.App, R.FleetDevices};
      if (std::find(Groups.begin(), Groups.end(), Key) == Groups.end())
        Groups.push_back(Key);
    }
    for (const auto &G : Groups) {
      Out << G.first << " x" << G.second << " devices:";
      std::map<int, double> BestByRound;
      uint64_t EndTime = 0;
      for (const FleetRecord &R : Run.Fleet)
        if (R.App == G.first && R.FleetDevices == G.second) {
          if (R.BestSpeedup > BestByRound[R.Round])
            BestByRound[R.Round] = R.BestSpeedup;
          EndTime = std::max(EndTime, R.VirtualTime);
        }
      for (const auto &KV : BestByRound)
        Out << " s" << KV.first << ":" << format("%.3f", KV.second) << "x";
      if (EndTime)
        Out << "  (vt " << EndTime << ")";
      Out << "\n";
    }
    // Per-device-class breakdown from the telemetry sketches (schema 5).
    if (Run.HasTelemetry)
      if (const json::Value *Cells = Run.Telemetry.find("cells"))
        for (const json::Value &Cell : Cells->elements()) {
          Out << Cell.string("app") << " x"
              << static_cast<int>(Cell.number("devices"))
              << " by device class:\n";
          Out << format("%8s %8s %10s %12s %10s %10s", "class", "devices",
                        "best", "quarantines", "lat p50", "lat p95")
              << "\n";
          const json::Value *Classes = Cell.find("classes");
          if (!Classes)
            continue;
          for (const json::Value &Cl : Classes->elements()) {
            const json::Value *Sp = Cl.find("speedup");
            const json::Value *HL = Cl.find("hint_latency");
            double Best = Sp && Sp->number("count") > 0 ? Sp->number("max")
                                                        : 0.0;
            Histogram::Snapshot Lat =
                HL ? fleet::sketchSnapshot(*HL)
                   : Histogram::Snapshot();
            Out << format(
                       "%8d %8d %9.3fx %12.0f %10.1f %10.1f",
                       static_cast<int>(Cl.number("class")),
                       static_cast<int>(Cl.number("devices")), Best,
                       Cl.number("quarantines"),
                       Lat.Count ? Lat.quantile(0.5) : 0.0,
                       Lat.Count ? Lat.quantile(0.95) : 0.0)
                << "\n";
          }
        }
    Out << "\n";
  }

  // Top spans by wall-clock, from the run's Chrome trace. Absent or
  // empty traces (ROPT_OBSERVABILITY=0 builds record observability:false
  // and write none) simply skip the section.
  if (support::Result<std::string> TraceText =
          slurp(Run.Dir + "/" + TraceFile)) {
    support::Result<analysis::SpanDag> Dag =
        analysis::SpanDag::fromChromeJson(TraceText.value());
    if (Dag && !Dag.value().nodes().empty()) {
      std::vector<analysis::SpanStats> Top = Dag.value().topSpans(10);
      Out << H << "top spans" << HEnd << "\n";
      Out << format("%-28s %8s %12s %12s", "name", "count", "total ms",
                    "self ms")
          << "\n";
      for (const analysis::SpanStats &S : Top)
        Out << format("%-28s %8llu %12.3f %12.3f", S.Name.c_str(),
                      static_cast<unsigned long long>(S.Count),
                      S.TotalUs / 1000.0, S.SelfUs / 1000.0)
            << "\n";
      Out << "\n";
    }
  }
  return Out.str();
}

// --- Analyzing --------------------------------------------------------------

std::string report::analyzeRun(const LoadedRun &Run,
                               const LoadedRun *Baseline) {
  std::ostringstream Out;
  const json::Value &M = Run.Manifest;

  Out << "=== analysis " << Run.Dir << " ===\n";
  Out << "tool: " << M.string("tool", "?") << "   seed: "
      << static_cast<uint64_t>(M.number("seed")) << "\n";
  bool Guided = false;
  if (const json::Value *C = M.find("config"))
    if (const json::Value *G = C->find("analysis_guided"))
      Guided = G->asBool();
  Out << "analysis-guided search: " << (Guided ? "on" : "off") << "\n\n";

  if (!Run.HasAnalysisLog) {
    Out << "no analysis.jsonl — pre-analysis run directory\n";
    return Out.str();
  }

  // Stream order is run order: regions arrive hottest-first per app.
  std::vector<std::string> Order;
  std::set<std::string> Seen;
  for (const AnalysisRecord &R : Run.Analysis)
    if (Seen.insert(R.App).second)
      Order.push_back(R.App);

  int LabelChanges = 0;
  for (const std::string &App : Order) {
    Out << "--- " << App << " ---\n";
    for (const AnalysisRecord &R : Run.Analysis) {
      if (R.App != App)
        continue;
      Out << (R.Slack == 0.0 ? "* " : "  ") << R.RootName << " ("
          << R.Methods << " methods): " << R.Label << ", cycles "
          << format("%.0f", R.Cycles) << ", critical path "
          << format("%.0f", R.CriticalPathCycles) << ", slack "
          << format("%.0f", R.Slack) << ", budget "
          << format("%.1f", 100.0 * R.BudgetWeight) << "% (scale "
          << format("%.3f", R.BudgetScale) << ")\n";
      Out << "    features: native " << format("%.2f", R.NativeShare)
          << ", mem " << format("%.2f", R.MemShare) << ", mispredicts/ki "
          << format("%.2f", R.MispredictsPerKiloInsn) << "\n";
      if (R.Slack == 0.0 && !R.CriticalChain.empty()) {
        Out << "    critical chain:";
        for (uint64_t Id : R.CriticalChain)
          Out << " m" << Id;
        Out << "\n";
      }
      if (Baseline)
        for (const AnalysisRecord &B : Baseline->Analysis)
          if (B.App == R.App && B.Root == R.Root && B.Label != R.Label) {
            ++LabelChanges;
            Out << "    LABEL CHANGE vs baseline: " << B.Label << " -> "
                << R.Label << "\n";
          }
    }
    Out << "\n";
  }
  if (Baseline)
    Out << "label changes vs " << Baseline->Dir << ": " << LabelChanges
        << "\n";
  return Out.str();
}

// --- Diffing ----------------------------------------------------------------

namespace {

/// Fleet cells of a run in stream order, with each cell's final best
/// speedup (max over its step records — the device-best is monotone, so
/// this is the end-of-run fleet best).
std::vector<std::pair<std::pair<std::string, int>, double>>
cellBests(const LoadedRun &Run) {
  std::vector<std::pair<std::pair<std::string, int>, double>> Cells;
  for (const FleetRecord &R : Run.Fleet) {
    std::pair<std::string, int> Key{R.App, R.FleetDevices};
    auto It = std::find_if(Cells.begin(), Cells.end(),
                           [&Key](const auto &C) { return C.first == Key; });
    if (It == Cells.end())
      Cells.push_back({Key, R.BestSpeedup});
    else
      It->second = std::max(It->second, R.BestSpeedup);
  }
  return Cells;
}

using CellList = std::vector<std::pair<std::pair<std::string, int>, double>>;

/// Pairs baseline cells with new-run cells for the fleet gate: exact
/// (app, device-count) matches first, then — because churn folds late
/// joiners into a cell's participant count — a same-app fallback when
/// each run has exactly one cell of that app left over. Returns, for
/// each baseline cell, the index of its new-run partner (-1: unmatched).
std::vector<int> matchFleetCells(const CellList &A, const CellList &B) {
  std::vector<int> Match(A.size(), -1);
  std::vector<bool> Used(B.size(), false);
  for (size_t I = 0; I < A.size(); ++I)
    for (size_t J = 0; J < B.size(); ++J)
      if (!Used[J] && B[J].first == A[I].first) {
        Match[I] = static_cast<int>(J);
        Used[J] = true;
        break;
      }
  for (size_t I = 0; I < A.size(); ++I) {
    if (Match[I] != -1)
      continue;
    const std::string &App = A[I].first.first;
    size_t LeftA = 0;
    for (size_t K = 0; K < A.size(); ++K)
      if (Match[K] == -1 && A[K].first.first == App)
        ++LeftA;
    int Cand = -1;
    size_t LeftB = 0;
    for (size_t J = 0; J < B.size(); ++J)
      if (!Used[J] && B[J].first.first == App) {
        ++LeftB;
        Cand = static_cast<int>(J);
      }
    if (LeftA == 1 && LeftB == 1) {
      Match[I] = Cand;
      Used[static_cast<size_t>(Cand)] = true;
    }
  }
  return Match;
}

/// The fleet gate shared by diffRuns and fleetReport: each baseline
/// cell's final best speedup against its matched new-run cell. Appends
/// regression/improvement/unmatched lines to \p Text and returns the
/// regression count. Unmatched cells are noted but never gate —
/// device-count sweeps legitimately differ between runs.
int gateFleetCells(const CellList &CellsA, const CellList &CellsB,
                   const std::string &DirA, const std::string &DirB,
                   double Threshold, std::ostringstream &Text) {
  int Regressions = 0;
  std::vector<int> Match = matchFleetCells(CellsA, CellsB);
  std::vector<bool> Used(CellsB.size(), false);
  for (int J : Match)
    if (J >= 0)
      Used[static_cast<size_t>(J)] = true;
  for (size_t I = 0; I < CellsA.size(); ++I) {
    std::string Cell =
        CellsA[I].first.first + " x" + std::to_string(CellsA[I].first.second);
    if (Match[I] < 0) {
      Text << Cell << ": fleet cell only in baseline " << DirA << "\n";
      continue;
    }
    const auto &CB = CellsB[static_cast<size_t>(Match[I])];
    if (CB.first != CellsA[I].first)
      Cell += " -> x" + std::to_string(CB.first.second);
    double BestA = CellsA[I].second, BestB = CB.second;
    if (BestA <= 0.0)
      continue;
    double Rel = (BestA - BestB) / BestA;
    if (Rel > Threshold) {
      ++Regressions;
      Text << Cell << ": FLEET REGRESSION best speedup "
           << format("%.3f", BestA) << "x -> " << format("%.3f", BestB)
           << "x (-" << format("%.1f", 100.0 * Rel) << "%)\n";
    } else if (Rel < -Threshold) {
      Text << Cell << ": fleet improved best " << format("%.3f", BestA)
           << "x -> " << format("%.3f", BestB) << "x\n";
    }
  }
  for (size_t J = 0; J < CellsB.size(); ++J)
    if (!Used[J])
      Text << CellsB[J].first.first << " x" << CellsB[J].first.second
           << ": fleet cell only in new run " << DirB << "\n";
  return Regressions;
}

} // namespace

DiffResult report::diffRuns(const LoadedRun &A, const LoadedRun &B,
                            const DiffOptions &Opt) {
  DiffResult Out;
  std::ostringstream Text;

  std::map<std::string, AppRoll> RollA = rollUp(A), RollB = rollUp(B);

  for (const std::string &Name : appOrder(A)) {
    if (!RollB.count(Name)) {
      Text << Name << ": only in baseline " << A.Dir << "\n";
      continue;
    }
    const AppRoll &RA = RollA[Name];
    const AppRoll &RB = RollB[Name];

    // Fitness gate: best-of-run median cycles, B relative to A.
    if (RA.BestCycles > 0.0 && RB.BestCycles > 0.0) {
      double Rel = (RB.BestCycles - RA.BestCycles) / RA.BestCycles;
      if (Rel > Opt.FitnessThreshold) {
        ++Out.FitnessRegressions;
        Text << Name << ": FITNESS REGRESSION best "
             << format("%.1f", RA.BestCycles) << " -> "
             << format("%.1f", RB.BestCycles) << " (+"
             << format("%.1f", 100.0 * Rel) << "%)\n";
      } else if (Rel < -Opt.FitnessThreshold) {
        Text << Name << ": improved best " << format("%.1f", RA.BestCycles)
             << " -> " << format("%.1f", RB.BestCycles) << " ("
             << format("%.1f", 100.0 * Rel) << "%)\n";
      }
    } else if (RA.BestCycles > 0.0 && RB.BestCycles == 0.0) {
      ++Out.FitnessRegressions;
      Text << Name << ": FITNESS REGRESSION — baseline found a valid "
                      "binary, new run did not\n";
    }

    // Verdict-mix gate: share of each verdict among all evaluations.
    std::set<std::string> Kinds;
    for (const auto &KV : RA.ByVerdict)
      Kinds.insert(KV.first);
    for (const auto &KV : RB.ByVerdict)
      Kinds.insert(KV.first);
    for (const std::string &Kind : Kinds) {
      double ShareA =
          RA.Total ? static_cast<double>(RA.ByVerdict.count(Kind)
                                             ? RA.ByVerdict.at(Kind)
                                             : 0) /
                         RA.Total
                   : 0.0;
      double ShareB =
          RB.Total ? static_cast<double>(RB.ByVerdict.count(Kind)
                                             ? RB.ByVerdict.at(Kind)
                                             : 0) /
                         RB.Total
                   : 0.0;
      if (std::fabs(ShareA - ShareB) > Opt.MixThreshold) {
        ++Out.VerdictShifts;
        Text << Name << ": verdict mix shift " << Kind << " "
             << format("%.1f", 100.0 * ShareA) << "% -> "
             << format("%.1f", 100.0 * ShareB) << "%\n";
      }
    }
  }
  for (const std::string &Name : appOrder(B))
    if (!RollA.count(Name))
      Text << Name << ": only in new run " << B.Dir << "\n";

  // Fleet gate (schema 5): each (app, device-count) cell's final best
  // speedup, B against A (churned cells pair by app when the device
  // count shifted — see matchFleetCells).
  Out.FleetRegressions = gateFleetCells(cellBests(A), cellBests(B), A.Dir,
                                        B.Dir, Opt.FleetThreshold, Text);

  if (Out.FitnessRegressions == 0 && Out.VerdictShifts == 0 &&
      Out.FleetRegressions == 0)
    Text << "no regressions (" << A.Dir << " vs " << B.Dir << ")\n";
  Out.Text = Text.str();
  return Out;
}

// --- Fleet report -----------------------------------------------------------

FleetDiffResult report::fleetReport(const LoadedRun &Run,
                                    const LoadedRun *Baseline,
                                    double Threshold) {
  FleetDiffResult Out;
  std::ostringstream Text;
  Text << "=== fleet " << Run.Dir << " ===\n";
  if (!Run.HasFleetLog) {
    Text << "no fleet.jsonl — not a fleet run\n";
    Out.Text = Text.str();
    return Out;
  }

  auto Cells = cellBests(Run);
  for (const auto &Cell : Cells) {
    const std::string &App = Cell.first.first;
    int Devices = Cell.first.second;
    Text << "--- " << App << " x" << Devices << " devices (best "
         << format("%.3f", Cell.second) << "x) ---\n";

    // Round curves per device class: best speedup any class member had
    // reported by each step index.
    std::map<int, std::map<int, double>> ByClass; // class -> round -> best
    int Attempts = 0, Steps = 0, Delivered = 0;
    double Drops = 0.0, Ticks = 0.0;
    for (const FleetRecord &R : Run.Fleet) {
      if (R.App != App || R.FleetDevices != Devices)
        continue;
      double &Best = ByClass[R.DeviceClass][R.Round];
      Best = std::max(Best, R.BestSpeedup);
      ++Steps;
      Attempts += R.TransportAttempts;
      Drops += R.TransportDrops;
      Ticks += R.TransportTicks;
      Delivered += R.Delivered ? 1 : 0;
    }
    for (const auto &KV : ByClass) {
      Text << "class " << KV.first << ":";
      for (const auto &RK : KV.second)
        Text << " s" << RK.first << ":" << format("%.3f", RK.second)
             << "x";
      Text << "\n";
    }
    Text << "transport: " << Attempts << " attempts, "
         << format("%.0f", Drops) << " drops, " << Delivered << "/"
         << Steps << " reports delivered, avg latency "
         << format("%.1f", Attempts ? Ticks / Attempts : 0.0)
         << " ticks\n";

    // Top provenance chains of this cell, winner first, then by fleet
    // reach (adoptions, arrivals).
    if (!Run.HasTelemetry)
      continue;
    const json::Value *CellsV = Run.Telemetry.find("cells");
    if (!CellsV)
      continue;
    for (const json::Value &CellV : CellsV->elements()) {
      if (CellV.string("app") != App ||
          static_cast<int>(CellV.number("devices")) != Devices)
        continue;
      const json::Value *Chains = CellV.find("chains");
      if (!Chains)
        break;
      auto Won = [](const json::Value &Ch) {
        const json::Value *W = Ch.find("won");
        return W && W->asBool();
      };
      std::vector<const json::Value *> Sorted;
      for (const json::Value &Ch : Chains->elements())
        Sorted.push_back(&Ch);
      std::stable_sort(Sorted.begin(), Sorted.end(),
                       [&Won](const json::Value *L, const json::Value *R) {
                         if (Won(*L) != Won(*R))
                           return Won(*L);
                         if (L->number("adoptions") != R->number("adoptions"))
                           return L->number("adoptions") >
                                  R->number("adoptions");
                         return L->number("arrivals") > R->number("arrivals");
                       });
      size_t Shown = std::min<size_t>(Sorted.size(), 5);
      Text << "chains (" << Shown << " of " << Sorted.size() << "):\n";
      for (size_t I = 0; I < Shown; ++I) {
        const json::Value &Ch = *Sorted[I];
        double Arrivals = Ch.number("arrivals");
        Text << "  " << Ch.string("id") << " " << Ch.string("key")
             << ": discovered d"
             << static_cast<int>(Ch.number("device")) << "@vt"
             << format("%.0f", Ch.number("discovery_time")) << ", merged@vt"
             << format("%.0f", Ch.number("first_merge_time")) << ", "
             << format("%.0f", Arrivals) << " arrivals";
        if (Arrivals > 0)
          Text << " (mean latency "
               << format("%.1f",
                         Ch.number("latency_ticks_total") / Arrivals)
               << " ticks)";
        Text << ", " << format("%.0f", Ch.number("adoptions"))
             << " adopted, " << format("%.0f", Ch.number("rejections"))
             << " rejected";
        if (Ch.number("adoptions") > 0)
          Text << ", first adopter d"
               << static_cast<int>(Ch.number("first_adopt_device")) << "@vt"
               << format("%.0f", Ch.number("first_adopt_time"));
        if (Won(Ch))
          Text << "  [winner]";
        Text << "\n";
      }
      break;
    }
  }

  // Baseline gate: same per-cell final-best comparison as diffRuns.
  if (Baseline) {
    Out.Regressions = gateFleetCells(cellBests(*Baseline), Cells,
                                     Baseline->Dir, Run.Dir, Threshold, Text);
    if (Out.Regressions == 0)
      Text << "no fleet regressions (" << Baseline->Dir << " vs "
           << Run.Dir << ")\n";
  }
  Out.Text = Text.str();
  return Out;
}
