//===- report/ReportWriter.cpp - Run-directory artifact streams -----------===//

#include "report/ReportWriter.h"

#include <filesystem>

using namespace ropt;
using namespace ropt::report;

support::Result<std::unique_ptr<ReportWriter>>
ReportWriter::open(const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return support::Error(support::ErrorCode::Unknown,
                          "cannot create run directory " + Dir + ": " +
                              Ec.message());

  std::unique_ptr<ReportWriter> W(new ReportWriter(Dir));
  std::string EvalsPath = Dir + "/" + EvaluationsFile;
  std::string GensPath = Dir + "/" + GenerationsFile;
  W->Evals = std::fopen(EvalsPath.c_str(), "w");
  W->Gens = std::fopen(GensPath.c_str(), "w");
  if (!W->Evals || !W->Gens)
    return support::Error(support::ErrorCode::Unknown,
                          "cannot open report streams under " + Dir);
  return W;
}

ReportWriter::~ReportWriter() {
  if (Evals)
    std::fclose(Evals);
  if (Gens)
    std::fclose(Gens);
  if (Fleet)
    std::fclose(Fleet);
  if (Analysis)
    std::fclose(Analysis);
}

void ReportWriter::appendLine(std::FILE *F, const std::string &Json) {
  if (!F)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  std::fflush(F);
}

void ReportWriter::appendEvaluation(const std::string &Json) {
  appendLine(Evals, Json);
}

void ReportWriter::appendGeneration(const std::string &Json) {
  appendLine(Gens, Json);
}

void ReportWriter::appendFleetRound(const std::string &Json) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Fleet) {
      std::string Path = Dir + "/" + FleetFile;
      Fleet = std::fopen(Path.c_str(), "w");
      if (!Fleet)
        return;
    }
  }
  appendLine(Fleet, Json);
}

void ReportWriter::appendAnalysis(const std::string &Json) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Analysis) {
      std::string Path = Dir + "/" + AnalysisFile;
      Analysis = std::fopen(Path.c_str(), "w");
      if (!Analysis)
        return;
    }
  }
  appendLine(Analysis, Json);
}

bool ReportWriter::writeFile(const char *Name, const std::string &Content) {
  std::string Path = Dir + "/" + Name;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Closed = std::fclose(F) == 0;
  return Written == Content.size() && Closed;
}
