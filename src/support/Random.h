//===- support/Random.h - Deterministic random number generation -*- C++ -*-=//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG used everywhere randomness is needed
/// (genetic search, workload inputs, measurement noise, ASLR). We do not use
/// std::mt19937 so that streams are stable across standard-library
/// implementations, and we support cheap splitting so that independent
/// subsystems draw from independent streams.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_RANDOM_H
#define ROPT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ropt {

/// xoshiro256** seeded via SplitMix64. Deterministic and splittable.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the stream from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit draw.
  uint64_t next();

  /// Returns an independent generator derived from this one's stream.
  /// Advances this generator by one draw.
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

  /// Returns a uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Returns a uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Returns a standard-normal draw (Box-Muller, one value per call).
  double gaussian();

  /// Returns a draw from a normal with the given mean and sigma.
  double gaussian(double Mean, double Sigma) {
    return Mean + Sigma * gaussian();
  }

  /// Returns exp(N(Mu, Sigma)); used to model skewed latency noise.
  double logNormal(double Mu, double Sigma);

  /// Returns an index into [0, Weights.size()) with probability
  /// proportional to the weights. Weights must be non-negative and sum > 0.
  size_t weightedIndex(const std::vector<double> &Weights);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(below(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// Picks a uniformly random element of the non-empty \p Values.
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "pick() from empty vector");
    return Values[static_cast<size_t>(below(Values.size()))];
  }

private:
  uint64_t State[4];
  bool HaveSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace ropt

#endif // ROPT_SUPPORT_RANDOM_H
