//===- support/Result.h - Typed error propagation ---------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Result<T>` — a value or a typed `Error` (code + message) — replaces
/// the bool/optional/sentinel failure signalling that used to leak out of
/// the capture and replay layers. Callers that only care whether the
/// operation worked use `ok()`; callers that classify failures (the
/// evaluation engine mapping replay errors onto `EvalKind`) switch on
/// `error().Code` in one place instead of re-deriving the class from trap
/// kinds at every call site.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_RESULT_H
#define ROPT_SUPPORT_RESULT_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ropt {
namespace support {

/// Failure classes surfaced by the capture/replay/compile layers.
enum class ErrorCode {
  Unknown,
  CaptureNotReady, ///< takeCapture() before an armed capture completed.
  CaptureFailed,   ///< The capture protocol never produced a snapshot.
  ReplayCrash,     ///< The replayed region trapped.
  ReplayTimeout,   ///< The replay exhausted its instruction budget.
  OutputMismatch,  ///< Verification-map divergence (wrong output).
  CompileFailed,   ///< Backend rejected the pipeline.
};

const char *errorCodeName(ErrorCode Code);

/// One failure: a machine-readable class plus a human-readable message.
struct Error {
  ErrorCode Code = ErrorCode::Unknown;
  std::string Message;

  Error() = default;
  Error(ErrorCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}
};

/// A value of type \p T or an Error. Construction is implicit from either
/// side so `return Error{...};` and `return SomeT;` both work.
template <typename T> class [[nodiscard]] Result {
public:
  Result(T Value) : Storage(std::move(Value)) {}
  Result(Error E) : Storage(std::move(E)) {}
  Result(ErrorCode Code, std::string Message)
      : Storage(Error(Code, std::move(Message))) {}

  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &value() & {
    assert(ok() && "value() on failed Result");
    return std::get<T>(Storage);
  }
  const T &value() const & {
    assert(ok() && "value() on failed Result");
    return std::get<T>(Storage);
  }
  /// Moves the value out of a temporary: `T V = f().value();`.
  T value() && {
    assert(ok() && "value() on failed Result");
    return std::move(std::get<T>(Storage));
  }

  T valueOr(T Default) const & {
    return ok() ? std::get<T>(Storage) : std::move(Default);
  }

  const Error &error() const {
    assert(!ok() && "error() on successful Result");
    return std::get<Error>(Storage);
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace support
} // namespace ropt

#endif // ROPT_SUPPORT_RESULT_H
