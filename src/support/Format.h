//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of ReplayOpt, a reproduction of "Developer and User-Transparent
// Compiler Optimization for Interactive Applications" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting helpers used throughout the library. We avoid
/// <iostream> in library code; everything funnels through std::snprintf.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_FORMAT_H
#define ROPT_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace ropt {

/// Returns the printf-style formatting of \p Fmt with the given arguments.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of format().
std::string formatV(const char *Fmt, va_list Args);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Left-pads \p S with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

} // namespace ropt

#endif // ROPT_SUPPORT_FORMAT_H
