//===- support/Serialize.h - Byte-stream serialization ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte writer/reader used to spool captured memory snapshots
/// to the simulated storage device and to persist optimization results.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_SERIALIZE_H
#define ROPT_SUPPORT_SERIALIZE_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ropt {

/// Appends fixed-width little-endian values to a growing byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeU32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeU64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }

  void writeF64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    writeU64(Bits);
  }

  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  void writeBytes(const uint8_t *Data, size_t Size) {
    Bytes.insert(Bytes.end(), Data, Data + Size);
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }
  size_t size() const { return Bytes.size(); }

private:
  std::vector<uint8_t> Bytes;
};

/// Reads values written by ByteWriter. An out-of-bounds read sets the
/// sticky failed() flag and yields zeros / empty values instead of
/// touching memory past the buffer, so parsers of untrusted bytes can
/// decode optimistically and reject once at the end.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t readU8() {
    if (!take(1))
      return 0;
    return Data[Pos++];
  }

  uint32_t readU32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }

  uint64_t readU64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }

  int64_t readI64() { return static_cast<int64_t>(readU64()); }

  double readF64() {
    uint64_t Bits = readU64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string readString() {
    uint32_t Len = readU32();
    if (!take(Len))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

  void readBytes(uint8_t *Out, size_t Count) {
    if (!take(Count)) {
      std::memset(Out, 0, Count);
      return;
    }
    std::memcpy(Out, Data + Pos, Count);
    Pos += Count;
  }

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }
  /// True once any read ran past the end of the buffer.
  bool failed() const { return Failed; }

private:
  /// Checks that \p Count more bytes exist; trips failed() otherwise.
  bool take(size_t Count) {
    if (Count > Size - Pos) {
      Failed = true;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace ropt

#endif // ROPT_SUPPORT_SERIALIZE_H
