//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//

#include "support/ThreadPool.h"

#include "support/Trace.h"

#include <atomic>

using namespace ropt;

size_t ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(size_t Threads) {
  if (Threads == 0)
    Threads = defaultThreadCount();
  Workers.reserve(Threads);
  for (size_t I = 0; I != Threads; ++I)
    Workers.emplace_back([this, I] {
      TraceRecorder::instance().setCurrentThreadName(
          "worker-" + std::to_string(I));
      workerMain();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    Queue.clear();
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerMain() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Future = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Packaged));
  }
  Cv.notify_one();
  return Future;
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t, size_t)> &Body) {
  if (N == 0)
    return;
  size_t Runners = std::min(size(), N);
  if (Runners <= 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I, 0);
    return;
  }

  std::atomic<size_t> Next{0};
  std::mutex ErrorMutex;
  std::exception_ptr FirstError;

  std::vector<std::future<void>> Futures;
  Futures.reserve(Runners);
  for (size_t Slot = 0; Slot != Runners; ++Slot) {
    Futures.push_back(submit([&, Slot] {
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= N)
          return;
        try {
          Body(I, Slot);
        } catch (...) {
          {
            std::lock_guard<std::mutex> Lock(ErrorMutex);
            if (!FirstError)
              FirstError = std::current_exception();
          }
          Next.store(N, std::memory_order_relaxed); // stop the sweep
          return;
        }
      }
    }));
  }
  for (std::future<void> &F : Futures)
    F.get();
  if (FirstError)
    std::rethrow_exception(FirstError);
}
