//===- support/Metrics.h - Named counters, gauges, histograms --*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry behind the pipeline's accounting:
/// monotonic counters (pages spooled, replays run, genomes rejected),
/// gauges (last-seen values) and fixed-bucket histograms (capture sizes,
/// per-capture overhead). Instruments are registered by name on first use
/// and keep a stable address for the life of the process, so hot sites
/// cache the reference once (`ROPT_METRIC_ADD` does this with a static
/// local) and pay one relaxed atomic add thereafter.
///
/// Naming follows the trace convention: `layer.noun`, e.g.
/// `capture.pages_spooled`, `replay.replays`, `search.genomes_rejected`.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_METRICS_H
#define ROPT_SUPPORT_METRICS_H

#ifndef ROPT_OBSERVABILITY
#define ROPT_OBSERVABILITY 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ropt {

/// Monotonic counter. add() is wait-free.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value.
class Gauge {
public:
  void set(int64_t New) { V.store(New, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed-bucket histogram: counts per upper-bound bucket plus an implicit
/// overflow bucket, with sum/min/max. observe() takes a mutex — fine for
/// the per-capture / per-replay rates it is used at.
class Histogram {
public:
  /// \p UpperBounds must be sorted ascending; a value lands in the first
  /// bucket whose bound is >= the value, or in the overflow bucket.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double Value);
  void reset();

  struct Snapshot {
    std::vector<double> Bounds;   ///< Upper bounds, one per finite bucket.
    std::vector<uint64_t> Counts; ///< Bounds.size() + 1 entries (overflow).
    uint64_t Count = 0;
    double Sum = 0.0;
    double Min = 0.0; ///< 0 when Count == 0.
    double Max = 0.0;
    double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
    /// Estimated \p Q-quantile (Q in [0,1]) by linear interpolation
    /// inside the bucket holding the target rank — the Prometheus
    /// histogram_quantile estimator, except the first bucket interpolates
    /// from the observed Min (not 0) and the overflow bucket toward the
    /// observed Max, so estimates are always within [Min, Max].
    double quantile(double Q) const;
  };
  Snapshot snapshot() const;

private:
  mutable std::mutex Mutex;
  std::vector<double> Bounds;
  std::vector<uint64_t> Counts;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, int64_t>> Gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> Histograms;

  /// Counter value by name; 0 when the counter was never registered.
  uint64_t counter(const std::string &Name) const;
  /// Gauge value by name; 0 when absent.
  int64_t gauge(const std::string &Name) const;

  /// Human-readable dump, one instrument per line.
  std::string toText() const;
  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string toJson() const;
};

/// The registry. instance() is the process-wide one the pipeline uses;
/// independent registries can be constructed for tests.
class Metrics {
public:
  static Metrics &instance();

  Metrics() = default;
  Metrics(const Metrics &) = delete;
  Metrics &operator=(const Metrics &) = delete;

  /// Find-or-create; the returned reference is stable forever.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p UpperBounds is only consulted on first registration.
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (references stay valid).
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace ropt

#if ROPT_OBSERVABILITY

/// Bumps the named process-wide counter. The registry lookup happens once
/// per site (static local); the steady-state cost is one relaxed add.
#define ROPT_METRIC_ADD(NameLiteral, Delta)                                  \
  do {                                                                       \
    static ::ropt::Counter &RoptMetricC =                                    \
        ::ropt::Metrics::instance().counter(NameLiteral);                    \
    RoptMetricC.add(static_cast<uint64_t>(Delta));                           \
  } while (false)
#define ROPT_METRIC_INC(NameLiteral) ROPT_METRIC_ADD(NameLiteral, 1)
#define ROPT_METRIC_GAUGE_SET(NameLiteral, Value)                            \
  do {                                                                       \
    static ::ropt::Gauge &RoptMetricG =                                      \
        ::ropt::Metrics::instance().gauge(NameLiteral);                      \
    RoptMetricG.set(static_cast<int64_t>(Value));                            \
  } while (false)
/// \p ... is the brace-initializer of upper bounds, e.g. ({1, 10, 100}).
#define ROPT_METRIC_OBSERVE(NameLiteral, Value, ...)                         \
  do {                                                                       \
    static ::ropt::Histogram &RoptMetricH =                                  \
        ::ropt::Metrics::instance().histogram(NameLiteral,                   \
                                              std::vector<double> __VA_ARGS__); \
    RoptMetricH.observe(static_cast<double>(Value));                         \
  } while (false)

#else // !ROPT_OBSERVABILITY

#define ROPT_METRIC_ADD(NameLiteral, Delta)                                  \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
    (void)sizeof(Delta);                                                     \
  } while (false)
#define ROPT_METRIC_INC(NameLiteral)                                         \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
  } while (false)
#define ROPT_METRIC_GAUGE_SET(NameLiteral, Value)                            \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
    (void)sizeof(Value);                                                     \
  } while (false)
#define ROPT_METRIC_OBSERVE(NameLiteral, Value, ...)                         \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
    (void)sizeof(Value);                                                     \
  } while (false)

#endif // ROPT_OBSERVABILITY

#endif // ROPT_SUPPORT_METRICS_H
