//===- support/Json.cpp - Minimal JSON building and parsing -----------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>

using namespace ropt;
using namespace ropt::json;

// --- Escaping ----------------------------------------------------------------

void json::appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    unsigned char C = static_cast<unsigned char>(*S);
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
}

void json::appendEscaped(std::string &Out, const std::string &S) {
  appendEscaped(Out, S.c_str());
}

std::string json::quoted(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  appendEscaped(Out, S);
  Out += '"';
  return Out;
}

// --- Builder -----------------------------------------------------------------

void Builder::comma() {
  if (!First)
    Out += ',';
  First = false;
}

void Builder::key(const char *Key) {
  comma();
  Out += '"';
  appendEscaped(Out, Key);
  Out += "\":";
}

namespace {

std::string numberToJson(double Value) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  // JSON has no inf/nan; the report layer never produces them, but stay
  // well-formed if a caller does.
  if (Buf[0] == 'i' || Buf[0] == '-' ? Buf[1] == 'i' : Buf[0] == 'n')
    return "0";
  return Buf;
}

} // namespace

Builder &Builder::field(const char *K, const std::string &V) {
  key(K);
  Out += quoted(V);
  return *this;
}

Builder &Builder::field(const char *K, const char *V) {
  key(K);
  Out += quoted(V);
  return *this;
}

Builder &Builder::field(const char *K, double V) {
  key(K);
  Out += numberToJson(V);
  return *this;
}

Builder &Builder::field(const char *K, int64_t V) {
  key(K);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  Out += Buf;
  return *this;
}

Builder &Builder::field(const char *K, uint64_t V) {
  key(K);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
  return *this;
}

Builder &Builder::field(const char *K, bool V) {
  key(K);
  Out += V ? "true" : "false";
  return *this;
}

Builder &Builder::fieldNull(const char *K) {
  key(K);
  Out += "null";
  return *this;
}

Builder &Builder::fieldRaw(const char *K, const std::string &Json) {
  key(K);
  Out += Json;
  return *this;
}

Builder &Builder::element(double V) {
  comma();
  Out += numberToJson(V);
  return *this;
}

Builder &Builder::element(uint64_t V) {
  comma();
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
  return *this;
}

Builder &Builder::element(const std::string &V) {
  comma();
  Out += quoted(V);
  return *this;
}

Builder &Builder::elementRaw(const std::string &Json) {
  comma();
  Out += Json;
  return *this;
}

std::string Builder::str() && {
  Out += Array ? ']' : '}';
  return std::move(Out);
}

// --- Value -------------------------------------------------------------------

Value Value::boolean(bool V) {
  Value Out;
  Out.K = Kind::Bool;
  Out.B = V;
  return Out;
}

Value Value::number(double V) {
  Value Out;
  Out.K = Kind::Number;
  Out.N = V;
  return Out;
}

Value Value::makeString(std::string V) {
  Value Out;
  Out.K = Kind::String;
  Out.S = std::move(V);
  return Out;
}

Value Value::array(std::vector<Value> V) {
  Value Out;
  Out.K = Kind::Array;
  Out.Elems = std::move(V);
  return Out;
}

Value Value::object(std::vector<Member> V) {
  Value Out;
  Out.K = Kind::Object;
  Out.Members = std::move(V);
  return Out;
}

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

double Value::number(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V ? V->asNumber(Default) : Default;
}

std::string Value::string(const std::string &Key,
                          const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

// --- Parser ------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(const std::string &S) : S(S) {}

  support::Result<Value> run() {
    skipWs();
    Value V;
    if (!value(V))
      return fail();
    skipWs();
    if (Pos != S.size())
      return support::Error(support::ErrorCode::Unknown,
                            "trailing characters after JSON value");
    return V;
  }

private:
  support::Result<Value> fail() {
    return support::Error(support::ErrorCode::Unknown,
                          "JSON parse error at offset " +
                              std::to_string(Pos));
  }

  bool value(Value &Out) {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{': return object(Out);
    case '[': return array(Out);
    case '"': {
      std::string Str;
      if (!string(Str))
        return false;
      Out = Value::makeString(std::move(Str));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value::boolean(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value::null();
      return true;
    default: return number(Out);
    }
  }

  bool object(Value &Out) {
    ++Pos; // '{'
    std::vector<Value::Member> Members;
    skipWs();
    if (peek() == '}') {
      ++Pos;
      Out = Value::object(std::move(Members));
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      Value V;
      if (!value(V))
        return false;
      Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        Out = Value::object(std::move(Members));
        return true;
      }
      return false;
    }
  }

  bool array(Value &Out) {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWs();
    if (peek() == ']') {
      ++Pos;
      Out = Value::array(std::move(Elems));
      return true;
    }
    for (;;) {
      skipWs();
      Value V;
      if (!value(V))
        return false;
      Elems.push_back(std::move(V));
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        Out = Value::array(std::move(Elems));
        return true;
      }
      return false;
    }
  }

  bool string(std::string &Out) {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        switch (S[Pos]) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'u': {
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            if (++Pos >= S.size())
              return false;
            char C = S[Pos];
            Code <<= 4;
            if (C >= '0' && C <= '9')
              Code |= static_cast<unsigned>(C - '0');
            else if (C >= 'a' && C <= 'f')
              Code |= static_cast<unsigned>(C - 'a' + 10);
            else if (C >= 'A' && C <= 'F')
              Code |= static_cast<unsigned>(C - 'A' + 10);
            else
              return false;
          }
          // Our writers only escape control characters; decode the BMP
          // code point as UTF-8 for completeness.
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default: return false;
        }
        ++Pos;
        continue;
      }
      Out += S[Pos++];
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number(Value &Out) {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && (std::isdigit(static_cast<unsigned char>(
                                  S[Pos])) ||
                              S[Pos] == '.' || S[Pos] == 'e' ||
                              S[Pos] == 'E' || S[Pos] == '+' ||
                              S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Text = S.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Text.c_str(), &End);
    if (End != Text.c_str() + Text.size())
      return false;
    Out = Value::number(V);
    return true;
  }

  bool literal(const char *Lit) {
    size_t Len = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

support::Result<Value> json::parse(const std::string &Text) {
  return Parser(Text).run();
}
