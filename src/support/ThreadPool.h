//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool behind the parallel evaluation engine.
/// Two entry points: `submit()` for one-off tasks (the returned future
/// carries exceptions), and `parallelFor()` for index-space fan-out with a
/// stable *worker slot* id — each slot is only ever driven by one thread
/// at a time, so callers can keep per-slot mutable state (replay
/// sandboxes, RNGs) without any synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_THREAD_POOL_H
#define ROPT_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ropt {

class ThreadPool {
public:
  /// \p Threads = 0 picks the hardware concurrency.
  explicit ThreadPool(size_t Threads = 0);
  /// Drains nothing: queued-but-unstarted tasks are abandoned (their
  /// futures get a broken_promise), running tasks finish, threads join.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t size() const { return Workers.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t defaultThreadCount();

  /// Enqueues \p Task; the future rethrows anything the task threw.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(Index, Worker) for every Index in [0, N), spread over the
  /// pool. Worker identifies a slot in [0, min(size(), N)) that is never
  /// used by two threads concurrently. Blocks until every index ran (or
  /// an exception stopped the sweep) and rethrows the first exception.
  /// With a single-thread pool (or N == 1) the body runs inline on the
  /// caller. Must not be called from inside a pool task.
  void parallelFor(size_t N,
                   const std::function<void(size_t, size_t)> &Body);

private:
  void workerMain();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<std::packaged_task<void()>> Queue;
  bool Stopping = false;
};

} // namespace ropt

#endif // ROPT_SUPPORT_THREAD_POOL_H
