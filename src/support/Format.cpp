//===- support/Format.cpp - printf-style string formatting ---------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdio>

using namespace ropt;

std::string ropt::formatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  assert(Needed >= 0 && "invalid format string");
  std::string Out(static_cast<size_t>(Needed), '\0');
  // +1 for the terminating NUL that vsnprintf always writes.
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string ropt::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::string ropt::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string ropt::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string ropt::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
