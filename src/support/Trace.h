//===- support/Trace.h - Process-wide execution tracing ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zero-dependency trace recorder for the capture -> replay -> search
/// pipeline. Instrumentation sites open RAII spans
/// (`ROPT_TRACE_SPAN("capture.spool")`) and emit counter/instant events;
/// the recorder exports Chrome `trace_event`-format JSON (loadable in
/// chrome://tracing or https://ui.perfetto.dev) and a compact JSONL
/// stream. Recording is off by default and costs a single relaxed atomic
/// load per site while disabled; building with `ROPT_OBSERVABILITY=0`
/// compiles every site out entirely.
///
/// Span and counter names must be string literals (the recorder stores
/// the pointer, not a copy). Naming convention: `layer.verb_or_noun`,
/// lower_snake within a dot-separated hierarchy — `capture.spool`,
/// `replay.run`, `search.generation`, `pipeline.optimize`.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_TRACE_H
#define ROPT_SUPPORT_TRACE_H

#ifndef ROPT_OBSERVABILITY
#define ROPT_OBSERVABILITY 1
#endif

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ropt {

/// One recorded event, in the Chrome trace_event model.
struct TraceEvent {
  enum class Phase : uint8_t {
    Complete, ///< "ph":"X" — a span with a start and a duration.
    Counter,  ///< "ph":"C" — a sampled numeric series.
    Instant,  ///< "ph":"i" — a point-in-time marker.
  };
  Phase Ph = Phase::Complete;
  const char *Name = "";
  uint64_t StartUs = 0; ///< Microseconds since the recorder's epoch.
  uint64_t DurUs = 0;   ///< Complete events only.
  int64_t Value = 0;    ///< Counter value, or an optional span argument.
  bool HasValue = false;
  uint32_t ThreadId = 0; ///< Small dense id, 1-based per thread.
};

/// The process-wide recorder. All methods are thread-safe; recording
/// methods are no-ops (after one relaxed atomic load) while disabled.
class TraceRecorder {
public:
  static TraceRecorder &instance();

  void enable(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every recorded event (the epoch is unchanged); the dropped
  /// counter resets with the buffer.
  void clear();

  /// The in-memory buffer is bounded: past \p Cap events the oldest are
  /// dropped first, so week-long fleet runs cannot grow without limit.
  /// The default cap is one million events (~40 MB). A cap of 0 keeps
  /// exactly one event (the cap is clamped to >= 1, not unlimited).
  static constexpr size_t DefaultMaxEvents = 1000000;
  void setMaxEvents(size_t Cap);
  size_t maxEvents() const;
  /// Events evicted oldest-first since the last clear(); also exported
  /// as the `trace.dropped_events` metrics counter.
  uint64_t droppedEvents() const;

  /// Microseconds since the recorder was constructed.
  uint64_t nowUs() const;

  /// Registers a human-readable name for the calling thread (e.g.
  /// "worker-3"); exported as Chrome "M" thread_name metadata so Perfetto
  /// lanes are labeled instead of dense numeric ids. Unlike event
  /// recording this works while disabled — names are metadata, and a
  /// thread registers once at start-up.
  void setCurrentThreadName(const std::string &Name);

  /// Registered names by dense thread id (for tests and exporters).
  std::map<uint32_t, std::string> threadNames() const;

  /// Records a finished span. \p Value attaches an optional argument
  /// (e.g. a generation index) when \p HasValue is set.
  void recordComplete(const char *Name, uint64_t StartUs, uint64_t DurUs,
                      int64_t Value = 0, bool HasValue = false);
  void recordCounter(const char *Name, int64_t Value);
  void recordInstant(const char *Name);

  size_t eventCount() const;
  /// Snapshot copy of the event list, in recording order.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string toChromeJson() const;
  /// One compact JSON object per line, same fields as the Chrome export.
  std::string toJsonl() const;
  /// Write either format to \p Path; false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;
  bool writeJsonl(const std::string &Path) const;

private:
  TraceRecorder();

  /// Appends under the lock, evicting the oldest event past MaxEvents.
  void append(const TraceEvent &E);

  std::atomic<bool> Enabled{false};
  uint64_t EpochNs = 0;
  mutable std::mutex Mutex;
  std::deque<TraceEvent> Events;
  size_t MaxEvents = DefaultMaxEvents;
  uint64_t DroppedEvents = 0;
  std::map<uint32_t, std::string> ThreadNames;
};

/// RAII span: stamps the start on construction, records a Complete event
/// on destruction. Inert (no clock read) when the recorder is disabled at
/// construction time.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) {
    TraceRecorder &T = TraceRecorder::instance();
    if (!T.enabled())
      return;
    Rec = &T;
    this->Name = Name;
    StartUs = T.nowUs();
  }
  ScopedSpan(const char *Name, int64_t Value) : ScopedSpan(Name) {
    this->Value = Value;
    HasValue = true;
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (Rec)
      Rec->recordComplete(Name, StartUs, Rec->nowUs() - StartUs, Value,
                          HasValue);
  }

private:
  TraceRecorder *Rec = nullptr;
  const char *Name = "";
  uint64_t StartUs = 0;
  int64_t Value = 0;
  bool HasValue = false;
};

} // namespace ropt

#define ROPT_TRACE_CONCAT_IMPL(A, B) A##B
#define ROPT_TRACE_CONCAT(A, B) ROPT_TRACE_CONCAT_IMPL(A, B)

#if ROPT_OBSERVABILITY

/// Opens a span covering the rest of the enclosing scope.
#define ROPT_TRACE_SPAN(NameLiteral)                                         \
  ::ropt::ScopedSpan ROPT_TRACE_CONCAT(RoptTraceSpan, __LINE__)(NameLiteral)
/// Span with an attached integer argument (shown in the trace viewer).
#define ROPT_TRACE_SPAN_V(NameLiteral, Value)                                \
  ::ropt::ScopedSpan ROPT_TRACE_CONCAT(RoptTraceSpan,                        \
                                       __LINE__)(NameLiteral,                \
                                                 static_cast<int64_t>(Value))
#define ROPT_TRACE_COUNTER(NameLiteral, Value)                               \
  do {                                                                       \
    ::ropt::TraceRecorder &RoptTraceRec = ::ropt::TraceRecorder::instance(); \
    if (RoptTraceRec.enabled())                                              \
      RoptTraceRec.recordCounter(NameLiteral,                                \
                                 static_cast<int64_t>(Value));               \
  } while (false)
#define ROPT_TRACE_INSTANT(NameLiteral)                                      \
  do {                                                                       \
    ::ropt::TraceRecorder &RoptTraceRec = ::ropt::TraceRecorder::instance(); \
    if (RoptTraceRec.enabled())                                              \
      RoptTraceRec.recordInstant(NameLiteral);                               \
  } while (false)

#else // !ROPT_OBSERVABILITY

// sizeof() marks the operands used without evaluating them, keeping the
// disabled build warning-clean under -Wall -Wextra.
#define ROPT_TRACE_SPAN(NameLiteral)                                         \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
  } while (false)
#define ROPT_TRACE_SPAN_V(NameLiteral, Value)                                \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
    (void)sizeof(Value);                                                     \
  } while (false)
#define ROPT_TRACE_COUNTER(NameLiteral, Value)                               \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
    (void)sizeof(Value);                                                     \
  } while (false)
#define ROPT_TRACE_INSTANT(NameLiteral)                                      \
  do {                                                                       \
    (void)sizeof(NameLiteral);                                               \
  } while (false)

#endif // ROPT_OBSERVABILITY

#endif // ROPT_SUPPORT_TRACE_H
