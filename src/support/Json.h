//===- support/Json.h - Minimal JSON building and parsing -------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON substrate every exporter shares: string escaping (used by
/// the trace recorder, the metrics registry and the run-report writer), a
/// tiny append-style object/array builder for streaming JSONL records, and
/// a strict recursive-descent parser for reading them back (`ropt-report`
/// summarizing and diffing run directories).
///
/// The parser keeps object members in file order and exposes them through
/// `find()`; numbers are doubles, which is why 64-bit identities (binary
/// hashes) are serialized as hex *strings* everywhere in this repo.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_JSON_H
#define ROPT_SUPPORT_JSON_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ropt {
namespace json {

/// Appends \p S to \p Out with JSON string escaping ("\\", control
/// characters as \uXXXX). Does not add the surrounding quotes.
void appendEscaped(std::string &Out, const char *S);
void appendEscaped(std::string &Out, const std::string &S);

/// Returns \p S quoted and escaped: `"..."`.
std::string quoted(const std::string &S);

/// Append-style builder for one JSON object or array. Values are written
/// in call order; the builder inserts commas and key quoting. Doubles are
/// formatted with %.17g so a write -> parse round trip is exact.
class Builder {
public:
  /// \p Array selects `[...]` instead of `{...}`.
  explicit Builder(bool Array = false) : Array(Array) {
    Out += Array ? '[' : '{';
  }

  Builder &field(const char *Key, const std::string &Value);
  Builder &field(const char *Key, const char *Value);
  Builder &field(const char *Key, double Value);
  Builder &field(const char *Key, int64_t Value);
  Builder &field(const char *Key, uint64_t Value);
  Builder &field(const char *Key, int Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  Builder &field(const char *Key, bool Value);
  Builder &fieldNull(const char *Key);
  /// Inserts a pre-rendered JSON value (an object, array, or number that
  /// the caller formatted itself).
  Builder &fieldRaw(const char *Key, const std::string &Json);

  /// Array flavours (no key).
  Builder &element(double Value);
  Builder &element(uint64_t Value);
  Builder &element(const std::string &Value);
  Builder &elementRaw(const std::string &Json);

  /// Closes the object/array and returns the rendered JSON.
  std::string str() &&;

private:
  void comma();
  void key(const char *Key);

  std::string Out;
  bool Array = false;
  bool First = true;
};

/// One parsed JSON value.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Typed accessors with defaults (no throwing on a kind mismatch —
  /// callers validate shape separately).
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  double asNumber(double Default = 0.0) const {
    return K == Kind::Number ? N : Default;
  }
  const std::string &asString() const { return S; }
  const std::vector<Value> &elements() const { return Elems; }
  const std::vector<Member> &members() const { return Members; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const;
  /// Shorthand: member number/string with a default.
  double number(const std::string &Key, double Default = 0.0) const;
  std::string string(const std::string &Key,
                     const std::string &Default = "") const;

  // Construction (used by the parser).
  static Value null() { return Value(); }
  static Value boolean(bool V);
  static Value number(double V);
  static Value makeString(std::string V);
  static Value array(std::vector<Value> V);
  static Value object(std::vector<Member> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<Value> Elems;
  std::vector<Member> Members;
};

/// Strict parse of one JSON document (trailing garbage is an error).
support::Result<Value> parse(const std::string &Text);

} // namespace json
} // namespace ropt

#endif // ROPT_SUPPORT_JSON_H
