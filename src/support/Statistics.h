//===- support/Statistics.h - Statistical methodology ----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistical machinery Section 4 of the paper prescribes: median
/// absolute deviation outlier removal for replay timings, a two-sided
/// Student's t-test for ranking transformation pairs, and bootstrapped
/// confidence intervals for the online-vs-offline experiment (Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_SUPPORT_STATISTICS_H
#define ROPT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace ropt {

class Rng;

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 values.
double sampleVariance(const std::vector<double> &Values);

/// Sample standard deviation.
double sampleStdDev(const std::vector<double> &Values);

/// Median; 0 for an empty vector. Does not modify the input.
double median(std::vector<double> Values);

/// Median absolute deviation (unscaled).
double medianAbsDeviation(const std::vector<double> &Values);

/// Removes values further than \p Cutoff scaled MADs from the median, the
/// outlier-removal step the paper applies to replay timings. The scale
/// constant 1.4826 makes the MAD consistent with sigma for normal data.
/// When the MAD is zero (all values equal) the input is returned unchanged.
std::vector<double> removeOutliersMAD(const std::vector<double> &Values,
                                      double Cutoff = 3.0);

/// Result of a two-sample comparison.
struct TTestResult {
  double TStatistic = 0.0;
  double DegreesOfFreedom = 0.0;
  /// Two-sided p-value; 1.0 when either sample is degenerate.
  double PValue = 1.0;
};

/// Welch's two-sided t-test on two samples ("two-side student's t-test" per
/// Section 4). Returns PValue = 1 when either sample has < 2 entries or both
/// variances are zero with equal means.
TTestResult welchTTest(const std::vector<double> &A,
                       const std::vector<double> &B);

/// True when \p A is statistically smaller than \p B at level \p Alpha.
bool significantlyLess(const std::vector<double> &A,
                       const std::vector<double> &B, double Alpha = 0.05);

/// Outcome of a three-way statistical comparison of two timing samples.
enum class SampleOrder {
  Less,              ///< A is significantly smaller than B.
  Indistinguishable, ///< No significant difference at the given level.
  Greater,           ///< A is significantly larger than B.
};

const char *sampleOrderName(SampleOrder O);

/// Three-way comparison of two samples at level \p Alpha, computing the
/// rank statistic once. Exactly equivalent to the pair
/// (significantlyLess(A,B), significantlyLess(B,A)) — which can never
/// both be true — at half the cost. Degenerate samples (either empty)
/// are Indistinguishable.
SampleOrder compareSamples(const std::vector<double> &A,
                           const std::vector<double> &B,
                           double Alpha = 0.05);

/// Alpha-spending schedule for the sequential racing test (DESIGN.md
/// §11): cumulative significance budget spent after escalation round
/// \p Round (1-based) of \p MaxRounds. Geometric spending
///
///   spent(r) = Alpha * (2^r - 1) / (2^MaxRounds - 1)
///
/// so early low-power rounds (few samples) spend little of the budget,
/// the per-round increments are strictly increasing, and the total over
/// all rounds is exactly \p Alpha — a Bonferroni bound keeps the
/// family-wise error of the whole race at or below \p Alpha.
double racingSpentAlpha(double Alpha, int Round, int MaxRounds);

/// The increment spent at round \p Round alone: the per-round test level
/// the racing engine passes to compareSamples.
double racingRoundAlpha(double Alpha, int Round, int MaxRounds);

/// A two-sided bootstrap percentile interval.
struct BootstrapInterval {
  double Low = 0.0;
  double High = 0.0;
};

/// Percentile bootstrap CI for the mean of \p Values at the given
/// \p Confidence (e.g. 0.95), using \p Resamples resamples drawn from \p R.
BootstrapInterval bootstrapMeanCI(const std::vector<double> &Values,
                                  double Confidence, Rng &R,
                                  size_t Resamples = 1000);

/// Percentile bootstrap CI for the ratio mean(A)/mean(B) — the speedup
/// estimator Figure 3 tracks as evaluations accumulate.
BootstrapInterval bootstrapRatioCI(const std::vector<double> &A,
                                   const std::vector<double> &B,
                                   double Confidence, Rng &R,
                                   size_t Resamples = 1000);

/// Regularized incomplete beta function I_x(a, b); exposed for testing.
double regularizedIncompleteBeta(double A, double B, double X);

} // namespace ropt

#endif // ROPT_SUPPORT_STATISTICS_H
