//===- support/Random.cpp - Deterministic random number generation -------===//

#include "support/Random.h"

#include <cmath>

using namespace ropt;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  uint64_t SM = Seed;
  for (uint64_t &S : State)
    S = splitMix64(SM);
  HaveSpareGaussian = false;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "below(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  // Span == 0 means the full 64-bit range.
  if (Span == 0)
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(below(Span));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniform();
}

double Rng::gaussian() {
  if (HaveSpareGaussian) {
    HaveSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = uniform(-1.0, 1.0);
    V = uniform(-1.0, 1.0);
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Scale = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Scale;
  HaveSpareGaussian = true;
  return U * Scale;
}

double Rng::logNormal(double Mu, double Sigma) {
  return std::exp(gaussian(Mu, Sigma));
}

size_t Rng::weightedIndex(const std::vector<double> &Weights) {
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  assert(Total > 0.0 && "weights must not all be zero");
  double Draw = uniform() * Total;
  double Acc = 0.0;
  for (size_t I = 0; I != Weights.size(); ++I) {
    Acc += Weights[I];
    if (Draw < Acc)
      return I;
  }
  return Weights.size() - 1;
}
