//===- support/Statistics.cpp - Statistical methodology ------------------===//

#include "support/Statistics.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ropt;

double ropt::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ropt::sampleVariance(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return Sum / static_cast<double>(Values.size() - 1);
}

double ropt::sampleStdDev(const std::vector<double> &Values) {
  return std::sqrt(sampleVariance(Values));
}

double ropt::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  size_t Mid = Values.size() / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  double Upper = Values[Mid];
  if (Values.size() % 2 == 1)
    return Upper;
  double Lower = *std::max_element(Values.begin(), Values.begin() + Mid);
  return 0.5 * (Lower + Upper);
}

double ropt::medianAbsDeviation(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Med = median(Values);
  std::vector<double> Deviations;
  Deviations.reserve(Values.size());
  for (double V : Values)
    Deviations.push_back(std::fabs(V - Med));
  return median(std::move(Deviations));
}

std::vector<double> ropt::removeOutliersMAD(const std::vector<double> &Values,
                                            double Cutoff) {
  double MAD = medianAbsDeviation(Values);
  if (MAD == 0.0)
    return Values;
  double Med = median(Values);
  double Limit = Cutoff * 1.4826 * MAD;
  std::vector<double> Kept;
  Kept.reserve(Values.size());
  for (double V : Values)
    if (std::fabs(V - Med) <= Limit)
      Kept.push_back(V);
  return Kept;
}

/// Log of the gamma function (Lanczos approximation).
static double logGamma(double X) {
  static const double Coeffs[6] = {76.18009172947146,  -86.50532032941677,
                                   24.01409824083091,  -1.231739572450155,
                                   0.1208650973866179e-2, -0.5395239384953e-5};
  double Y = X;
  double Tmp = X + 5.5;
  Tmp -= (X + 0.5) * std::log(Tmp);
  double Ser = 1.000000000190015;
  for (double C : Coeffs)
    Ser += C / ++Y;
  return -Tmp + std::log(2.5066282746310005 * Ser / X);
}

/// Continued-fraction evaluation for the incomplete beta function
/// (Numerical Recipes "betacf" scheme, modified Lentz method).
static double betaContinuedFraction(double A, double B, double X) {
  const double Eps = 3.0e-12;
  const double FpMin = 1.0e-300;
  double Qab = A + B;
  double Qap = A + 1.0;
  double Qam = A - 1.0;
  double C = 1.0;
  double D = 1.0 - Qab * X / Qap;
  if (std::fabs(D) < FpMin)
    D = FpMin;
  D = 1.0 / D;
  double H = D;
  for (int M = 1; M <= 300; ++M) {
    int M2 = 2 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1.0) < Eps)
      break;
  }
  return H;
}

double ropt::regularizedIncompleteBeta(double A, double B, double X) {
  assert(A > 0.0 && B > 0.0 && "shape parameters must be positive");
  if (X <= 0.0)
    return 0.0;
  if (X >= 1.0)
    return 1.0;
  double LogBt = logGamma(A + B) - logGamma(A) - logGamma(B) +
                 A * std::log(X) + B * std::log(1.0 - X);
  double Bt = std::exp(LogBt);
  if (X < (A + 1.0) / (A + B + 2.0))
    return Bt * betaContinuedFraction(A, B, X) / A;
  return 1.0 - Bt * betaContinuedFraction(B, A, 1.0 - X) / B;
}

/// Two-sided p-value for a t statistic with \p Df degrees of freedom.
static double tTestPValue(double T, double Df) {
  if (Df <= 0.0)
    return 1.0;
  double X = Df / (Df + T * T);
  return regularizedIncompleteBeta(Df / 2.0, 0.5, X);
}

TTestResult ropt::welchTTest(const std::vector<double> &A,
                             const std::vector<double> &B) {
  TTestResult Result;
  if (A.size() < 2 || B.size() < 2)
    return Result;
  double MeanA = mean(A), MeanB = mean(B);
  double VarA = sampleVariance(A), VarB = sampleVariance(B);
  double Na = static_cast<double>(A.size());
  double Nb = static_cast<double>(B.size());
  double Se2 = VarA / Na + VarB / Nb;
  if (Se2 == 0.0) {
    // Both samples are constant: either identical (p = 1) or trivially
    // different (p = 0).
    Result.PValue = (MeanA == MeanB) ? 1.0 : 0.0;
    return Result;
  }
  Result.TStatistic = (MeanA - MeanB) / std::sqrt(Se2);
  double Num = Se2 * Se2;
  double Den = (VarA / Na) * (VarA / Na) / (Na - 1.0) +
               (VarB / Nb) * (VarB / Nb) / (Nb - 1.0);
  Result.DegreesOfFreedom = Num / Den;
  Result.PValue = tTestPValue(Result.TStatistic, Result.DegreesOfFreedom);
  return Result;
}

bool ropt::significantlyLess(const std::vector<double> &A,
                             const std::vector<double> &B, double Alpha) {
  return compareSamples(A, B, Alpha) == SampleOrder::Less;
}

const char *ropt::sampleOrderName(SampleOrder O) {
  switch (O) {
  case SampleOrder::Less: return "less";
  case SampleOrder::Indistinguishable: return "indistinguishable";
  case SampleOrder::Greater: return "greater";
  }
  return "unknown";
}

SampleOrder ropt::compareSamples(const std::vector<double> &A,
                                 const std::vector<double> &B,
                                 double Alpha) {
  if (A.empty() || B.empty())
    return SampleOrder::Indistinguishable;
  double MeanA = mean(A), MeanB = mean(B);
  if (MeanA == MeanB)
    return SampleOrder::Indistinguishable;
  // Degenerate equal-constant samples: a strict mean difference with zero
  // variance is treated as significant by welchTTest (p = 0).
  if (welchTTest(A, B).PValue >= Alpha)
    return SampleOrder::Indistinguishable;
  return MeanA < MeanB ? SampleOrder::Less : SampleOrder::Greater;
}

double ropt::racingSpentAlpha(double Alpha, int Round, int MaxRounds) {
  if (MaxRounds <= 0 || Round <= 0)
    return 0.0;
  if (Round >= MaxRounds)
    return Alpha;
  // 2^r - 1 over 2^R - 1; rounds are small (budget / block size), so the
  // doubles are exact.
  double Num = std::ldexp(1.0, Round) - 1.0;
  double Den = std::ldexp(1.0, MaxRounds) - 1.0;
  return Alpha * Num / Den;
}

double ropt::racingRoundAlpha(double Alpha, int Round, int MaxRounds) {
  return racingSpentAlpha(Alpha, Round, MaxRounds) -
         racingSpentAlpha(Alpha, Round - 1, MaxRounds);
}

/// Draws one bootstrap resample of \p Values and returns its mean.
static double resampleMean(const std::vector<double> &Values, Rng &R) {
  double Sum = 0.0;
  for (size_t I = 0; I != Values.size(); ++I)
    Sum += Values[static_cast<size_t>(R.below(Values.size()))];
  return Sum / static_cast<double>(Values.size());
}

/// Percentile interval from a sorted vector of statistic draws.
static BootstrapInterval percentileInterval(std::vector<double> Stats,
                                            double Confidence) {
  std::sort(Stats.begin(), Stats.end());
  double Tail = (1.0 - Confidence) / 2.0;
  size_t N = Stats.size();
  size_t LoIdx = static_cast<size_t>(Tail * static_cast<double>(N - 1) + 0.5);
  size_t HiIdx =
      static_cast<size_t>((1.0 - Tail) * static_cast<double>(N - 1) + 0.5);
  BootstrapInterval Interval;
  Interval.Low = Stats[std::min(LoIdx, N - 1)];
  Interval.High = Stats[std::min(HiIdx, N - 1)];
  return Interval;
}

BootstrapInterval ropt::bootstrapMeanCI(const std::vector<double> &Values,
                                        double Confidence, Rng &R,
                                        size_t Resamples) {
  if (Values.empty())
    return {};
  std::vector<double> Stats;
  Stats.reserve(Resamples);
  for (size_t I = 0; I != Resamples; ++I)
    Stats.push_back(resampleMean(Values, R));
  return percentileInterval(std::move(Stats), Confidence);
}

BootstrapInterval ropt::bootstrapRatioCI(const std::vector<double> &A,
                                         const std::vector<double> &B,
                                         double Confidence, Rng &R,
                                         size_t Resamples) {
  if (A.empty() || B.empty())
    return {};
  std::vector<double> Stats;
  Stats.reserve(Resamples);
  for (size_t I = 0; I != Resamples; ++I) {
    double Denominator = resampleMean(B, R);
    if (Denominator == 0.0)
      Denominator = 1e-300;
    Stats.push_back(resampleMean(A, R) / Denominator);
  }
  return percentileInterval(std::move(Stats), Confidence);
}
