//===- support/Metrics.cpp - Named counters, gauges, histograms -------------===//

#include "support/Metrics.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace ropt;

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1, 0) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must ascend");
}

void Histogram::observe(double Value) {
  size_t Bucket = 0;
  while (Bucket < Bounds.size() && Value > Bounds[Bucket])
    ++Bucket;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counts[Bucket];
  ++Count;
  Sum += Value;
  if (Count == 1) {
    Min = Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::fill(Counts.begin(), Counts.end(), 0);
  Count = 0;
  Sum = Min = Max = 0.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Snapshot S;
  S.Bounds = Bounds;
  S.Counts = Counts;
  S.Count = Count;
  S.Sum = Sum;
  S.Min = Min;
  S.Max = Max;
  return S;
}

double Histogram::Snapshot::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  double TargetRank = Q * static_cast<double>(Count);
  uint64_t Before = 0;
  for (size_t B = 0; B != Counts.size(); ++B) {
    if (Counts[B] == 0)
      continue;
    double InBucket = static_cast<double>(Counts[B]);
    if (TargetRank > static_cast<double>(Before) + InBucket) {
      Before += Counts[B];
      continue;
    }
    bool Overflow = B >= Bounds.size();
    double Lo = B == 0 ? Min : Bounds[B - 1];
    double Hi = Overflow ? Max : Bounds[B];
    Lo = std::clamp(Lo, Min, Max);
    Hi = std::clamp(Hi, Min, Max);
    double Frac = (TargetRank - static_cast<double>(Before)) / InBucket;
    return Lo + Frac * (Hi - Lo);
  }
  return Max;
}

// --- MetricsSnapshot ---------------------------------------------------------

uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  for (const auto &KV : Counters)
    if (KV.first == Name)
      return KV.second;
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string &Name) const {
  for (const auto &KV : Gauges)
    if (KV.first == Name)
      return KV.second;
  return 0;
}

std::string MetricsSnapshot::toText() const {
  std::string Out;
  for (const auto &KV : Counters)
    Out += format("%-34s %llu\n", KV.first.c_str(),
                  static_cast<unsigned long long>(KV.second));
  for (const auto &KV : Gauges)
    Out += format("%-34s %lld (gauge)\n", KV.first.c_str(),
                  static_cast<long long>(KV.second));
  for (const auto &KV : Histograms) {
    const Histogram::Snapshot &H = KV.second;
    Out += format("%-34s n=%llu mean=%.3f min=%.3f max=%.3f (histogram)\n",
                  KV.first.c_str(),
                  static_cast<unsigned long long>(H.Count), H.mean(), H.Min,
                  H.Max);
  }
  return Out;
}

namespace {

void appendJsonKey(std::string &Out, const std::string &Name) {
  // Instrument names are dot/underscore ASCII; quote-escape defensively.
  Out += '"';
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

} // namespace

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\"counters\":{";
  for (size_t I = 0; I != Counters.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonKey(Out, Counters[I].first);
    Out += format(":%llu",
                  static_cast<unsigned long long>(Counters[I].second));
  }
  Out += "},\"gauges\":{";
  for (size_t I = 0; I != Gauges.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonKey(Out, Gauges[I].first);
    Out += format(":%lld", static_cast<long long>(Gauges[I].second));
  }
  Out += "},\"histograms\":{";
  for (size_t I = 0; I != Histograms.size(); ++I) {
    if (I)
      Out += ",";
    const Histogram::Snapshot &H = Histograms[I].second;
    appendJsonKey(Out, Histograms[I].first);
    Out += format(":{\"count\":%llu,\"sum\":%.6f,\"min\":%.6f,"
                  "\"max\":%.6f,\"buckets\":[",
                  static_cast<unsigned long long>(H.Count), H.Sum, H.Min,
                  H.Max);
    for (size_t B = 0; B != H.Counts.size(); ++B) {
      if (B)
        Out += ",";
      bool Overflow = B >= H.Bounds.size();
      Out += format("{\"le\":%s,\"count\":%llu}",
                    Overflow ? "\"inf\""
                             : format("%.6f", H.Bounds[B]).c_str(),
                    static_cast<unsigned long long>(H.Counts[B]));
    }
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

// --- Metrics -----------------------------------------------------------------

Metrics &Metrics::instance() {
  static Metrics M;
  return M;
}

Counter &Metrics::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Metrics::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Metrics::histogram(const std::string &Name,
                              std::vector<double> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot S;
  for (const auto &KV : Counters)
    S.Counters.emplace_back(KV.first, KV.second->value());
  for (const auto &KV : Gauges)
    S.Gauges.emplace_back(KV.first, KV.second->value());
  for (const auto &KV : Histograms)
    S.Histograms.emplace_back(KV.first, KV.second->snapshot());
  return S;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &KV : Counters)
    KV.second->reset();
  for (auto &KV : Gauges)
    KV.second->reset();
  for (auto &KV : Histograms)
    KV.second->reset();
}
