//===- support/Trace.cpp - Process-wide execution tracing -------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>

#include <chrono>
#include <cstdio>

using namespace ropt;
using json::appendEscaped; // string escaping shared with the run-report
                           // and metrics exporters

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small dense thread ids (Chrome's tid field), 1-based in first-use order.
uint32_t currentThreadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

/// One event as a compact JSON object (shared by both exporters).
void appendEventJson(std::string &Out, const TraceEvent &E) {
  char Buf[96];
  Out += "{\"pid\":1,\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", E.ThreadId);
  Out += Buf;
  Out += ",\"name\":\"";
  appendEscaped(Out, E.Name);
  Out += "\",\"cat\":\"ropt\",\"ts\":";
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(E.StartUs));
  Out += Buf;
  switch (E.Ph) {
  case TraceEvent::Phase::Complete:
    Out += ",\"ph\":\"X\",\"dur\":";
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(E.DurUs));
    Out += Buf;
    if (E.HasValue) {
      Out += ",\"args\":{\"value\":";
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(E.Value));
      Out += Buf;
      Out += "}";
    }
    break;
  case TraceEvent::Phase::Counter:
    Out += ",\"ph\":\"C\",\"args\":{\"value\":";
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(E.Value));
    Out += Buf;
    Out += "}";
    break;
  case TraceEvent::Phase::Instant:
    Out += ",\"ph\":\"i\",\"s\":\"t\"";
    break;
  }
  Out += "}";
}

/// Chrome "M" thread_name metadata: labels the lane for \p Tid.
void appendThreadNameJson(std::string &Out, uint32_t Tid,
                          const std::string &Name) {
  char Buf[32];
  Out += "{\"pid\":1,\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", Tid);
  Out += Buf;
  Out += ",\"name\":\"thread_name\",\"ph\":\"M\",\"args\":{\"name\":\"";
  appendEscaped(Out, Name);
  Out += "\"}}";
}

bool writeWholeFile(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Ok = Written == Content.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace

TraceRecorder::TraceRecorder() : EpochNs(steadyNowNs()) {}

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder T;
  return T;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  DroppedEvents = 0;
}

void TraceRecorder::setMaxEvents(size_t Cap) {
  std::lock_guard<std::mutex> Lock(Mutex);
  MaxEvents = std::max<size_t>(Cap, 1);
  while (Events.size() > MaxEvents) {
    Events.pop_front();
    ++DroppedEvents;
    ROPT_METRIC_INC("trace.dropped_events");
  }
}

size_t TraceRecorder::maxEvents() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MaxEvents;
}

uint64_t TraceRecorder::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DroppedEvents;
}

void TraceRecorder::append(const TraceEvent &E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= MaxEvents) {
    Events.pop_front();
    ++DroppedEvents;
    ROPT_METRIC_INC("trace.dropped_events");
  }
  Events.push_back(E);
}

uint64_t TraceRecorder::nowUs() const {
  return (steadyNowNs() - EpochNs) / 1000;
}

void TraceRecorder::recordComplete(const char *Name, uint64_t StartUs,
                                   uint64_t DurUs, int64_t Value,
                                   bool HasValue) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Complete;
  E.Name = Name;
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Value = Value;
  E.HasValue = HasValue;
  E.ThreadId = currentThreadId();
  append(E);
}

void TraceRecorder::recordCounter(const char *Name, int64_t Value) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Counter;
  E.Name = Name;
  E.StartUs = nowUs();
  E.Value = Value;
  E.HasValue = true;
  E.ThreadId = currentThreadId();
  append(E);
}

void TraceRecorder::recordInstant(const char *Name) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Instant;
  E.Name = Name;
  E.StartUs = nowUs();
  E.ThreadId = currentThreadId();
  append(E);
}

void TraceRecorder::setCurrentThreadName(const std::string &Name) {
  uint32_t Id = currentThreadId();
  std::lock_guard<std::mutex> Lock(Mutex);
  ThreadNames[Id] = Name;
}

std::map<uint32_t, std::string> TraceRecorder::threadNames() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return ThreadNames;
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return std::vector<TraceEvent>(Events.begin(), Events.end());
}

std::string TraceRecorder::toChromeJson() const {
  std::vector<TraceEvent> Snapshot = events();
  std::map<uint32_t, std::string> Names = threadNames();
  std::string Out;
  Out.reserve(64 + Snapshot.size() * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  // Metadata first so viewers label the lanes before any event lands.
  for (const auto &KV : Names) {
    Out += First ? "\n" : ",\n";
    First = false;
    appendThreadNameJson(Out, KV.first, KV.second);
  }
  for (const TraceEvent &E : Snapshot) {
    Out += First ? "\n" : ",\n";
    First = false;
    appendEventJson(Out, E);
  }
  Out += "\n]}\n";
  return Out;
}

std::string TraceRecorder::toJsonl() const {
  std::vector<TraceEvent> Snapshot = events();
  std::map<uint32_t, std::string> Names = threadNames();
  std::string Out;
  Out.reserve(Snapshot.size() * 96);
  for (const auto &KV : Names) {
    appendThreadNameJson(Out, KV.first, KV.second);
    Out += "\n";
  }
  for (const TraceEvent &E : Snapshot) {
    appendEventJson(Out, E);
    Out += "\n";
  }
  return Out;
}

bool TraceRecorder::writeChromeJson(const std::string &Path) const {
  return writeWholeFile(Path, toChromeJson());
}

bool TraceRecorder::writeJsonl(const std::string &Path) const {
  return writeWholeFile(Path, toJsonl());
}
