//===- support/Result.cpp - Typed error propagation --------------------------===//

#include "support/Result.h"

using namespace ropt;

const char *support::errorCodeName(support::ErrorCode Code) {
  switch (Code) {
  case support::ErrorCode::Unknown: return "unknown";
  case support::ErrorCode::CaptureNotReady: return "capture-not-ready";
  case support::ErrorCode::CaptureFailed: return "capture-failed";
  case support::ErrorCode::ReplayCrash: return "replay-crash";
  case support::ErrorCode::ReplayTimeout: return "replay-timeout";
  case support::ErrorCode::OutputMismatch: return "output-mismatch";
  case support::ErrorCode::CompileFailed: return "compile-failed";
  }
  return "unknown";
}
