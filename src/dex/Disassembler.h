//===- dex/Disassembler.h - Human-readable bytecode dumps ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug-oriented textual rendering of bytecode methods.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_DEX_DISASSEMBLER_H
#define ROPT_DEX_DISASSEMBLER_H

#include <string>

namespace ropt {
namespace dex {

class DexFile;
struct Method;
struct Insn;

/// Renders one instruction, resolving ids against \p File.
std::string disassembleInsn(const DexFile &File, const Insn &I);

/// Renders a full method listing with instruction indices.
std::string disassemble(const DexFile &File, const Method &M);

} // namespace dex
} // namespace ropt

#endif // ROPT_DEX_DISASSEMBLER_H
