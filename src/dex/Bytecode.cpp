//===- dex/Bytecode.cpp - ISA helpers -------------------------------------===//

#include "dex/Bytecode.h"

using namespace ropt;
using namespace ropt::dex;

const char *dex::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop: return "nop";
  case Opcode::ConstI: return "const-i";
  case Opcode::ConstF: return "const-f";
  case Opcode::ConstNull: return "const-null";
  case Opcode::Move: return "move";
  case Opcode::AddI: return "add-i";
  case Opcode::SubI: return "sub-i";
  case Opcode::MulI: return "mul-i";
  case Opcode::DivI: return "div-i";
  case Opcode::RemI: return "rem-i";
  case Opcode::AndI: return "and-i";
  case Opcode::OrI: return "or-i";
  case Opcode::XorI: return "xor-i";
  case Opcode::ShlI: return "shl-i";
  case Opcode::ShrI: return "shr-i";
  case Opcode::NegI: return "neg-i";
  case Opcode::AddF: return "add-f";
  case Opcode::SubF: return "sub-f";
  case Opcode::MulF: return "mul-f";
  case Opcode::DivF: return "div-f";
  case Opcode::NegF: return "neg-f";
  case Opcode::CmpF: return "cmp-f";
  case Opcode::SqrtF: return "sqrt-f";
  case Opcode::I2F: return "i2f";
  case Opcode::F2I: return "f2i";
  case Opcode::Goto: return "goto";
  case Opcode::IfEq: return "if-eq";
  case Opcode::IfNe: return "if-ne";
  case Opcode::IfLt: return "if-lt";
  case Opcode::IfLe: return "if-le";
  case Opcode::IfGt: return "if-gt";
  case Opcode::IfGe: return "if-ge";
  case Opcode::IfEqz: return "if-eqz";
  case Opcode::IfNez: return "if-nez";
  case Opcode::IfLtz: return "if-ltz";
  case Opcode::IfLez: return "if-lez";
  case Opcode::IfGtz: return "if-gtz";
  case Opcode::IfGez: return "if-gez";
  case Opcode::InvokeStatic: return "invoke-static";
  case Opcode::InvokeVirtual: return "invoke-virtual";
  case Opcode::InvokeNative: return "invoke-native";
  case Opcode::Ret: return "ret";
  case Opcode::RetVoid: return "ret-void";
  case Opcode::NewInstance: return "new-instance";
  case Opcode::GetFieldI: return "get-field-i";
  case Opcode::GetFieldF: return "get-field-f";
  case Opcode::GetFieldR: return "get-field-r";
  case Opcode::PutFieldI: return "put-field-i";
  case Opcode::PutFieldF: return "put-field-f";
  case Opcode::PutFieldR: return "put-field-r";
  case Opcode::GetStaticI: return "get-static-i";
  case Opcode::GetStaticF: return "get-static-f";
  case Opcode::GetStaticR: return "get-static-r";
  case Opcode::PutStaticI: return "put-static-i";
  case Opcode::PutStaticF: return "put-static-f";
  case Opcode::PutStaticR: return "put-static-r";
  case Opcode::NewArrayI: return "new-array-i";
  case Opcode::NewArrayF: return "new-array-f";
  case Opcode::NewArrayR: return "new-array-r";
  case Opcode::ALoadI: return "aload-i";
  case Opcode::ALoadF: return "aload-f";
  case Opcode::ALoadR: return "aload-r";
  case Opcode::AStoreI: return "astore-i";
  case Opcode::AStoreF: return "astore-f";
  case Opcode::AStoreR: return "astore-r";
  case Opcode::ArrayLen: return "array-len";
  case Opcode::OpcodeCount: break;
  }
  return "invalid";
}

bool dex::isConditionalBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfLe:
  case Opcode::IfGt:
  case Opcode::IfGe:
  case Opcode::IfEqz:
  case Opcode::IfNez:
  case Opcode::IfLtz:
  case Opcode::IfLez:
  case Opcode::IfGtz:
  case Opcode::IfGez:
    return true;
  default:
    return false;
  }
}

bool dex::isBranch(Opcode Op) {
  return Op == Opcode::Goto || isConditionalBranch(Op);
}

bool dex::isReturn(Opcode Op) {
  return Op == Opcode::Ret || Op == Opcode::RetVoid;
}

bool dex::isInvoke(Opcode Op) {
  return Op == Opcode::InvokeStatic || Op == Opcode::InvokeVirtual ||
         Op == Opcode::InvokeNative;
}
