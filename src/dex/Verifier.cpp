//===- dex/Verifier.cpp - Bytecode well-formedness checks -----------------===//

#include "dex/Verifier.h"

#include "dex/DexFile.h"
#include "support/Format.h"

using namespace ropt;
using namespace ropt::dex;

namespace {

/// Collects problems for one method.
class MethodVerifier {
public:
  MethodVerifier(const DexFile &File, const Method &M,
                 std::vector<std::string> &Out)
      : File(File), M(M), Out(Out) {}

  void run();

private:
  void error(size_t Pc, const std::string &Msg) {
    Out.push_back(format("%s@%zu: %s", M.Name.c_str(), Pc, Msg.c_str()));
  }

  /// Checks that \p R is a readable/writable register.
  void checkReg(size_t Pc, RegIdx R, const char *What) {
    if (R >= M.RegCount)
      error(Pc, format("%s register r%u out of range (%u regs)", What,
                       unsigned(R), unsigned(M.RegCount)));
  }

  void checkTarget(size_t Pc, int32_t Target) {
    if (Target < 0 || static_cast<size_t>(Target) >= M.Code.size())
      error(Pc, format("branch target %d out of range", Target));
  }

  void checkInvoke(size_t Pc, const Insn &I);

  const DexFile &File;
  const Method &M;
  std::vector<std::string> &Out;
};

} // namespace

void MethodVerifier::checkInvoke(size_t Pc, const Insn &I) {
  for (unsigned N = 0; N != I.ArgCount; ++N)
    checkReg(Pc, I.Args[N], "argument");

  uint16_t ExpectedParams = 0;
  bool CalleeReturns = false;

  if (I.Op == Opcode::InvokeNative) {
    if (I.Idx >= File.natives().size()) {
      error(Pc, format("unknown native id %u", I.Idx));
      return;
    }
    const NativeDecl &N = File.native(I.Idx);
    ExpectedParams = N.ParamCount;
    CalleeReturns = N.ReturnsValue;
  } else {
    if (I.Idx >= File.methods().size()) {
      error(Pc, format("unknown method id %u", I.Idx));
      return;
    }
    const Method &Callee = File.method(I.Idx);
    ExpectedParams = Callee.ParamCount;
    CalleeReturns = Callee.ReturnsValue;
    if (I.Op == Opcode::InvokeVirtual && !Callee.IsVirtual)
      error(Pc, format("invoke-virtual on non-virtual %s",
                       Callee.Name.c_str()));
    if (I.Op == Opcode::InvokeStatic && Callee.IsVirtual)
      error(Pc, format("invoke-static on virtual %s", Callee.Name.c_str()));
  }

  if (I.ArgCount != ExpectedParams)
    error(Pc, format("call passes %u args, callee takes %u",
                     unsigned(I.ArgCount), unsigned(ExpectedParams)));
  if (I.A != NoReg) {
    checkReg(Pc, I.A, "result");
    if (!CalleeReturns)
      error(Pc, "result register on void callee");
  }
}

void MethodVerifier::run() {
  if (M.IsNative)
    return;
  if (M.Code.empty()) {
    Out.push_back(format("%s: empty body", M.Name.c_str()));
    return;
  }
  if (M.RegCount < M.ParamCount)
    Out.push_back(format("%s: fewer registers than parameters",
                         M.Name.c_str()));

  for (size_t Pc = 0; Pc != M.Code.size(); ++Pc) {
    const Insn &I = M.Code[Pc];
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::ConstI:
    case Opcode::ConstF:
    case Opcode::ConstNull:
      checkReg(Pc, I.A, "destination");
      break;
    case Opcode::Move:
    case Opcode::NegI:
    case Opcode::NegF:
    case Opcode::SqrtF:
    case Opcode::I2F:
    case Opcode::F2I:
    case Opcode::ArrayLen:
    case Opcode::NewArrayI:
    case Opcode::NewArrayF:
    case Opcode::NewArrayR:
      checkReg(Pc, I.A, "destination");
      checkReg(Pc, I.B, "source");
      break;
    case Opcode::AddI:
    case Opcode::SubI:
    case Opcode::MulI:
    case Opcode::DivI:
    case Opcode::RemI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::XorI:
    case Opcode::ShlI:
    case Opcode::ShrI:
    case Opcode::AddF:
    case Opcode::SubF:
    case Opcode::MulF:
    case Opcode::DivF:
    case Opcode::CmpF:
      checkReg(Pc, I.A, "destination");
      checkReg(Pc, I.B, "source");
      checkReg(Pc, I.C, "source");
      break;
    case Opcode::Goto:
      checkTarget(Pc, I.Target);
      break;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
      checkReg(Pc, I.B, "compared");
      checkReg(Pc, I.C, "compared");
      checkTarget(Pc, I.Target);
      break;
    case Opcode::IfEqz:
    case Opcode::IfNez:
    case Opcode::IfLtz:
    case Opcode::IfLez:
    case Opcode::IfGtz:
    case Opcode::IfGez:
      checkReg(Pc, I.B, "compared");
      checkTarget(Pc, I.Target);
      break;
    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual:
    case Opcode::InvokeNative:
      checkInvoke(Pc, I);
      break;
    case Opcode::Ret:
      checkReg(Pc, I.B, "returned");
      if (!M.ReturnsValue)
        error(Pc, "ret in void method");
      break;
    case Opcode::RetVoid:
      if (M.ReturnsValue)
        error(Pc, "ret-void in value-returning method");
      break;
    case Opcode::NewInstance:
      checkReg(Pc, I.A, "destination");
      if (I.Idx >= File.classes().size())
        error(Pc, format("unknown class id %u", I.Idx));
      break;
    case Opcode::GetFieldI:
    case Opcode::GetFieldF:
    case Opcode::GetFieldR:
    case Opcode::PutFieldI:
    case Opcode::PutFieldF:
    case Opcode::PutFieldR:
      checkReg(Pc, I.A, "value");
      checkReg(Pc, I.B, "object");
      if (I.Idx >= File.fields().size())
        error(Pc, format("unknown field id %u", I.Idx));
      break;
    case Opcode::GetStaticI:
    case Opcode::GetStaticF:
    case Opcode::GetStaticR:
    case Opcode::PutStaticI:
    case Opcode::PutStaticF:
    case Opcode::PutStaticR:
      checkReg(Pc, I.A, "value");
      if (I.Idx >= File.staticFields().size())
        error(Pc, format("unknown static field id %u", I.Idx));
      break;
    case Opcode::ALoadI:
    case Opcode::ALoadF:
    case Opcode::ALoadR:
    case Opcode::AStoreI:
    case Opcode::AStoreF:
    case Opcode::AStoreR:
      checkReg(Pc, I.A, "value");
      checkReg(Pc, I.B, "array");
      checkReg(Pc, I.C, "index");
      break;
    case Opcode::OpcodeCount:
      error(Pc, "invalid opcode");
      break;
    }
  }

  // No fall-through off the end: the last instruction must divert control.
  Opcode Last = M.Code.back().Op;
  if (!isReturn(Last) && Last != Opcode::Goto)
    Out.push_back(
        format("%s: control can fall off the end", M.Name.c_str()));
}

void dex::verifyMethod(const DexFile &File, const Method &M,
                       std::vector<std::string> &Out) {
  MethodVerifier(File, M, Out).run();
}

std::vector<std::string> dex::verify(const DexFile &File) {
  std::vector<std::string> Problems;
  for (const Method &M : File.methods())
    verifyMethod(File, M, Problems);
  return Problems;
}
