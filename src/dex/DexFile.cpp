//===- dex/DexFile.cpp - Linked application image --------------------------===//

#include "dex/DexFile.h"

#include <cassert>

using namespace ropt;
using namespace ropt::dex;

MethodId DexFile::findMethod(const std::string &Name) const {
  for (const Method &M : Methods)
    if (M.Name == Name)
      return M.Id;
  return InvalidId;
}

ClassId DexFile::findClass(const std::string &Name) const {
  for (const ClassInfo &C : Classes)
    if (C.Name == Name)
      return C.Id;
  return InvalidId;
}

MethodId DexFile::resolveVirtual(ClassId Receiver, MethodId Declared) const {
  const Method &M = method(Declared);
  assert(M.IsVirtual && M.VTableSlot >= 0 && "not a virtual method");
  const ClassInfo &C = classAt(Receiver);
  assert(static_cast<size_t>(M.VTableSlot) < C.VTable.size() &&
         "receiver class does not implement the declared method");
  return C.VTable[static_cast<size_t>(M.VTableSlot)];
}

bool DexFile::isSubclassOf(ClassId Sub, ClassId Base) const {
  while (Sub != InvalidId) {
    if (Sub == Base)
      return true;
    Sub = classAt(Sub).Super;
  }
  return false;
}
