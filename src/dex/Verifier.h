//===- dex/Verifier.h - Bytecode well-formedness checks ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of a linked DexFile: register bounds, branch
/// target validity, call signature agreement, and return discipline. Run
/// automatically by DexBuilder::build().
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_DEX_VERIFIER_H
#define ROPT_DEX_VERIFIER_H

#include <string>
#include <vector>

namespace ropt {
namespace dex {

class DexFile;
struct Method;

/// Verifies every method body; returns human-readable problems (empty when
/// the file is well formed).
std::vector<std::string> verify(const DexFile &File);

/// Verifies a single method against \p File; appends problems to \p Out.
void verifyMethod(const DexFile &File, const Method &M,
                  std::vector<std::string> &Out);

} // namespace dex
} // namespace ropt

#endif // ROPT_DEX_VERIFIER_H
