//===- dex/Disassembler.cpp - Human-readable bytecode dumps ---------------===//

#include "dex/Disassembler.h"

#include "dex/DexFile.h"
#include "support/Format.h"

using namespace ropt;
using namespace ropt::dex;

std::string dex::disassembleInsn(const DexFile &File, const Insn &I) {
  std::string S = opcodeName(I.Op);
  auto Reg = [](RegIdx R) {
    return R == NoReg ? std::string("_") : format("r%u", unsigned(R));
  };
  switch (I.Op) {
  case Opcode::ConstI:
    return S + format(" %s, %lld", Reg(I.A).c_str(),
                      static_cast<long long>(I.ImmI));
  case Opcode::ConstF:
    return S + format(" %s, %g", Reg(I.A).c_str(), I.ImmF);
  case Opcode::Goto:
    return S + format(" -> %d", I.Target);
  case Opcode::InvokeStatic:
  case Opcode::InvokeVirtual: {
    std::string Args;
    for (unsigned N = 0; N != I.ArgCount; ++N)
      Args += (N ? ", " : "") + Reg(I.Args[N]);
    return S + format(" %s, %s(%s)", Reg(I.A).c_str(),
                      File.method(I.Idx).Name.c_str(), Args.c_str());
  }
  case Opcode::InvokeNative: {
    std::string Args;
    for (unsigned N = 0; N != I.ArgCount; ++N)
      Args += (N ? ", " : "") + Reg(I.Args[N]);
    return S + format(" %s, native:%s(%s)", Reg(I.A).c_str(),
                      File.native(I.Idx).Name.c_str(), Args.c_str());
  }
  case Opcode::NewInstance:
    return S + format(" %s, %s", Reg(I.A).c_str(),
                      File.classAt(I.Idx).Name.c_str());
  case Opcode::GetFieldI:
  case Opcode::GetFieldF:
  case Opcode::GetFieldR:
  case Opcode::PutFieldI:
  case Opcode::PutFieldF:
  case Opcode::PutFieldR:
    return S + format(" %s, %s, %s", Reg(I.A).c_str(), Reg(I.B).c_str(),
                      File.field(I.Idx).Name.c_str());
  case Opcode::GetStaticI:
  case Opcode::GetStaticF:
  case Opcode::GetStaticR:
  case Opcode::PutStaticI:
  case Opcode::PutStaticF:
  case Opcode::PutStaticR:
    return S + format(" %s, %s", Reg(I.A).c_str(),
                      File.staticField(I.Idx).Name.c_str());
  default:
    break;
  }
  if (isConditionalBranch(I.Op)) {
    if (I.C != NoReg)
      return S + format(" %s, %s -> %d", Reg(I.B).c_str(), Reg(I.C).c_str(),
                        I.Target);
    return S + format(" %s -> %d", Reg(I.B).c_str(), I.Target);
  }
  std::string Out = S;
  bool First = true;
  for (RegIdx R : {I.A, I.B, I.C}) {
    if (R == NoReg)
      continue;
    Out += (First ? " " : ", ") + Reg(R);
    First = false;
  }
  return Out;
}

std::string dex::disassemble(const DexFile &File, const Method &M) {
  std::string Out = format("%s (params=%u regs=%u)%s\n", M.Name.c_str(),
                           unsigned(M.ParamCount), unsigned(M.RegCount),
                           M.IsNative ? " [native]" : "");
  for (size_t Pc = 0; Pc != M.Code.size(); ++Pc)
    Out += format("  %4zu: %s\n", Pc,
                  disassembleInsn(File, M.Code[Pc]).c_str());
  return Out;
}
