//===- dex/DexFile.h - Classes, methods, fields, natives --------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container for a compiled application: classes with single
/// inheritance and vtables, methods (bytecode or native), instance fields
/// with fixed 8-byte slots, static fields, and native-method declarations.
/// The analogue of an Android APK's classes.dex.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_DEX_DEXFILE_H
#define ROPT_DEX_DEXFILE_H

#include "dex/Bytecode.h"

#include <string>
#include <vector>

namespace ropt {
namespace dex {

using MethodId = uint32_t;
using ClassId = uint32_t;
using FieldId = uint32_t;
using NativeId = uint32_t;
using StaticFieldId = uint32_t;

constexpr uint32_t InvalidId = 0xffffffff;

/// Behavioural flags the replayability analysis (Section 3.1) consumes.
enum MethodFlagBits : uint32_t {
  MF_None = 0,
  MF_DoesIO = 1u << 0,         ///< Performs input/output.
  MF_NonDeterministic = 1u << 1, ///< Clock / PRNG / sensor access.
  MF_HasTryCatch = 1u << 2,    ///< Contains exception handling.
  MF_Uncompilable = 1u << 3,   ///< Android-compiler pathological case.
};

/// An instance field. All fields occupy one 8-byte slot.
struct FieldInfo {
  std::string Name;
  ClassId Owner = InvalidId;
  Type FieldType = Type::I64;
  uint32_t SlotIndex = 0; ///< Slot within the object, set at build time.
};

/// A static (class-level) field, allocated in the process data segment.
struct StaticFieldInfo {
  std::string Name;
  ClassId Owner = InvalidId;
  Type FieldType = Type::I64;
  int64_t InitialValue = 0; ///< Bit pattern for F64 initializers too.
};

/// A native (JNI) method declaration. Implementations are registered with
/// the VM's native registry by name.
struct NativeDecl {
  std::string Name;
  uint16_t ParamCount = 0;
  bool ReturnsValue = false;
  bool DoesIO = false;
  bool NonDeterministic = false;
  /// Non-empty when the LLVM backend knows an intrinsic replacement
  /// (Section 3.5's JNI-math-to-intrinsic optimization), e.g. "sin".
  std::string IntrinsicKind;
};

/// One method: either bytecode or a native stub.
struct Method {
  std::string Name; ///< Qualified "Class.method" (or plain for free fns).
  MethodId Id = InvalidId;
  ClassId Owner = InvalidId; ///< InvalidId for free functions.
  uint16_t ParamCount = 0;   ///< Includes the receiver for instance methods.
  uint16_t RegCount = 0;     ///< Total virtual registers (params first).
  bool ReturnsValue = false;
  bool IsStatic = true;
  bool IsVirtual = false;
  bool IsNative = false;
  NativeId Native = InvalidId; ///< For native methods.
  int32_t VTableSlot = -1;     ///< For virtual methods.
  uint32_t Flags = MF_None;
  std::vector<Insn> Code;

  bool doesIO() const { return Flags & MF_DoesIO; }
  bool isNonDeterministic() const { return Flags & MF_NonDeterministic; }
  bool hasTryCatch() const { return Flags & MF_HasTryCatch; }
  bool isUncompilable() const { return Flags & MF_Uncompilable; }
};

/// One class. Single inheritance; InvalidId superclass means root.
struct ClassInfo {
  std::string Name;
  ClassId Id = InvalidId;
  ClassId Super = InvalidId;
  std::vector<FieldId> Fields;    ///< Declared here (not inherited).
  std::vector<MethodId> Methods;  ///< Declared here.
  std::vector<MethodId> VTable;   ///< Full table incl. inherited slots.
  uint32_t InstanceSlots = 0;     ///< Total slots incl. inherited.
};

/// An immutable, fully linked application image.
class DexFile {
public:
  const std::vector<ClassInfo> &classes() const { return Classes; }
  const std::vector<Method> &methods() const { return Methods; }
  const std::vector<FieldInfo> &fields() const { return Fields; }
  const std::vector<StaticFieldInfo> &staticFields() const {
    return StaticFields;
  }
  const std::vector<NativeDecl> &natives() const { return Natives; }

  const ClassInfo &classAt(ClassId Id) const { return Classes.at(Id); }
  const Method &method(MethodId Id) const { return Methods.at(Id); }
  const FieldInfo &field(FieldId Id) const { return Fields.at(Id); }
  const StaticFieldInfo &staticField(StaticFieldId Id) const {
    return StaticFields.at(Id);
  }
  const NativeDecl &native(NativeId Id) const { return Natives.at(Id); }

  /// Finds a method by its qualified name; InvalidId if absent.
  MethodId findMethod(const std::string &Name) const;

  /// Finds a class by name; InvalidId if absent.
  ClassId findClass(const std::string &Name) const;

  /// Resolves the vtable target: the implementation \p Receiver's class
  /// provides for the declared method \p Declared.
  MethodId resolveVirtual(ClassId Receiver, MethodId Declared) const;

  /// True if \p Sub equals or derives from \p Base.
  bool isSubclassOf(ClassId Sub, ClassId Base) const;

private:
  friend class DexBuilder;
  std::vector<ClassInfo> Classes;
  std::vector<Method> Methods;
  std::vector<FieldInfo> Fields;
  std::vector<StaticFieldInfo> StaticFields;
  std::vector<NativeDecl> Natives;
};

} // namespace dex
} // namespace ropt

#endif // ROPT_DEX_DEXFILE_H
