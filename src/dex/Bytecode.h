//===- dex/Bytecode.h - Register-based bytecode ISA -------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of our Dalvik-like register bytecode. Methods carry a
/// fixed number of untyped 64-bit virtual registers; instructions are typed
/// (integer, double, reference). The shape mirrors Dalvik: two-address-free
/// three-operand ALU ops, compare-and-branch fusion for integers, a cmp +
/// branch-on-zero idiom for doubles, and invoke instructions that carry an
/// argument list.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_DEX_BYTECODE_H
#define ROPT_DEX_BYTECODE_H

#include <cstdint>

namespace ropt {
namespace dex {

/// Value categories the ISA distinguishes.
enum class Type : uint8_t {
  I64, ///< 64-bit integer.
  F64, ///< IEEE double.
  Ref, ///< Heap reference (object or array).
};

enum class Opcode : uint8_t {
  Nop,

  // Constants and moves. ConstI/ConstF write the immediate into register A.
  ConstI,
  ConstF,
  ConstNull,
  Move,

  // Integer ALU: A = B op C.
  AddI,
  SubI,
  MulI,
  DivI, ///< Traps on zero divisor.
  RemI, ///< Traps on zero divisor.
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI, ///< Arithmetic shift right.
  NegI, ///< A = -B.

  // Double ALU: A = B op C.
  AddF,
  SubF,
  MulF,
  DivF,
  NegF, ///< A = -B.
  CmpF, ///< A = -1/0/+1 ordering of doubles B, C (NaN compares as +1).
  SqrtF, ///< A = sqrt(B); in-ISA so kernels need not call JNI for it.

  // Conversions.
  I2F,
  F2I,

  // Control flow. Target is an instruction index within the method.
  Goto,
  IfEq, ///< if (B == C) goto Target
  IfNe,
  IfLt,
  IfLe,
  IfGt,
  IfGe,
  IfEqz, ///< if (B == 0) goto Target
  IfNez,
  IfLtz,
  IfLez,
  IfGtz,
  IfGez,

  // Calls. A is the destination register or NoReg; B is the method / native
  // id. Arguments are in Args[0..ArgCount). For virtual calls Args[0] is
  // the receiver and dispatch goes through the receiver's vtable.
  InvokeStatic,
  InvokeVirtual,
  InvokeNative,

  Ret,     ///< Return register B.
  RetVoid,

  // Objects. NewInstance: A = new (class B). Field ops use field id B.
  NewInstance,
  GetFieldI, ///< A = obj(B).field(C)
  GetFieldF,
  GetFieldR,
  PutFieldI, ///< obj(B).field(C) = A
  PutFieldF,
  PutFieldR,
  GetStaticI, ///< A = static field B
  GetStaticF,
  GetStaticR,
  PutStaticI, ///< static field B = A
  PutStaticF,
  PutStaticR,

  // Arrays. NewArray*: A = new T[len reg B]. Loads: A = arr(B)[idx C].
  // Stores: arr(B)[idx C] = A. All index accesses are bounds checked.
  NewArrayI,
  NewArrayF,
  NewArrayR,
  ALoadI,
  ALoadF,
  ALoadR,
  AStoreI,
  AStoreF,
  AStoreR,
  ArrayLen, ///< A = length of arr(B)

  OpcodeCount,
};

/// Register index type; methods are limited to 65535 registers.
using RegIdx = uint16_t;

/// Sentinel for "no destination register".
constexpr RegIdx NoReg = 0xffff;

/// Maximum argument count an invoke instruction can carry.
constexpr unsigned MaxInvokeArgs = 8;

/// One bytecode instruction. Deliberately a flat POD so methods are
/// cache-friendly vectors of these.
struct Insn {
  Opcode Op = Opcode::Nop;
  RegIdx A = NoReg; ///< Destination (or compared register for If*z).
  RegIdx B = NoReg; ///< First source / method id low bits (see Idx).
  RegIdx C = NoReg; ///< Second source.
  int32_t Target = -1; ///< Branch target (instruction index).
  uint32_t Idx = 0;    ///< Method/native/field/class id for the ops above.
  int64_t ImmI = 0;    ///< ConstI payload.
  double ImmF = 0.0;   ///< ConstF payload.
  uint8_t ArgCount = 0;
  RegIdx Args[MaxInvokeArgs] = {};
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True for Goto/If* instructions.
bool isBranch(Opcode Op);

/// True for If* instructions (conditional branches).
bool isConditionalBranch(Opcode Op);

/// True for Ret/RetVoid.
bool isReturn(Opcode Op);

/// True for the three invoke opcodes.
bool isInvoke(Opcode Op);

} // namespace dex
} // namespace ropt

#endif // ROPT_DEX_BYTECODE_H
