//===- dex/Builder.cpp - Programmatic bytecode construction ---------------===//

#include "dex/Builder.h"

#include "dex/Verifier.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ropt;
using namespace ropt::dex;

// --- FunctionBuilder ------------------------------------------------------

void FunctionBuilder::emit3(Opcode Op, RegIdx A, RegIdx B, RegIdx C) {
  Insn I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  I.C = C;
  Code.push_back(I);
}

void FunctionBuilder::constI(RegIdx D, int64_t V) {
  Insn I;
  I.Op = Opcode::ConstI;
  I.A = D;
  I.ImmI = V;
  Code.push_back(I);
}

void FunctionBuilder::constF(RegIdx D, double V) {
  Insn I;
  I.Op = Opcode::ConstF;
  I.A = D;
  I.ImmF = V;
  Code.push_back(I);
}

void FunctionBuilder::constNull(RegIdx D) {
  emit3(Opcode::ConstNull, D, NoReg, NoReg);
}

void FunctionBuilder::move(RegIdx D, RegIdx S) {
  emit3(Opcode::Move, D, S, NoReg);
}

FunctionBuilder::Label FunctionBuilder::newLabel() {
  LabelPositions.push_back(-1);
  return static_cast<Label>(LabelPositions.size() - 1);
}

void FunctionBuilder::bind(Label L) {
  assert(L < LabelPositions.size() && "unknown label");
  assert(LabelPositions[L] == -1 && "label bound twice");
  LabelPositions[L] = static_cast<int32_t>(Code.size());
}

void FunctionBuilder::addFixup(size_t InsnIndex, Label L) {
  assert(L < LabelPositions.size() && "unknown label");
  Fixups.emplace_back(InsnIndex, L);
}

void FunctionBuilder::jump(Label L) {
  Insn I;
  I.Op = Opcode::Goto;
  Code.push_back(I);
  addFixup(Code.size() - 1, L);
}

void FunctionBuilder::branch(Opcode Op, RegIdx A, RegIdx B, Label L) {
  Insn I;
  I.Op = Op;
  I.B = A;
  I.C = B;
  Code.push_back(I);
  addFixup(Code.size() - 1, L);
}

void FunctionBuilder::branchZ(Opcode Op, RegIdx A, Label L) {
  Insn I;
  I.Op = Op;
  I.B = A;
  Code.push_back(I);
  addFixup(Code.size() - 1, L);
}

void FunctionBuilder::emitInvoke(Opcode Op, RegIdx D, uint32_t Callee,
                                 const std::vector<RegIdx> &Args) {
  assert(Args.size() <= MaxInvokeArgs && "too many call arguments");
  Insn I;
  I.Op = Op;
  I.A = D;
  I.Idx = Callee;
  I.ArgCount = static_cast<uint8_t>(Args.size());
  for (size_t N = 0; N != Args.size(); ++N)
    I.Args[N] = Args[N];
  Code.push_back(I);
}

void FunctionBuilder::invokeStatic(RegIdx D, MethodId Callee,
                                   const std::vector<RegIdx> &Args) {
  emitInvoke(Opcode::InvokeStatic, D, Callee, Args);
}

void FunctionBuilder::invokeVirtual(RegIdx D, MethodId Callee,
                                    const std::vector<RegIdx> &Args) {
  assert(!Args.empty() && "virtual call needs a receiver");
  emitInvoke(Opcode::InvokeVirtual, D, Callee, Args);
}

void FunctionBuilder::invokeNative(RegIdx D, NativeId Callee,
                                   const std::vector<RegIdx> &Args) {
  emitInvoke(Opcode::InvokeNative, D, Callee, Args);
}

void FunctionBuilder::ret(RegIdx S) { emit3(Opcode::Ret, NoReg, S, NoReg); }

void FunctionBuilder::retVoid() {
  emit3(Opcode::RetVoid, NoReg, NoReg, NoReg);
}

void FunctionBuilder::newInstance(RegIdx D, ClassId Cls) {
  Insn I;
  I.Op = Opcode::NewInstance;
  I.A = D;
  I.Idx = Cls;
  Code.push_back(I);
}

void FunctionBuilder::getField(RegIdx D, RegIdx Obj, FieldId F) {
  Opcode Op;
  switch (Parent.field(F).FieldType) {
  case Type::I64: Op = Opcode::GetFieldI; break;
  case Type::F64: Op = Opcode::GetFieldF; break;
  case Type::Ref: Op = Opcode::GetFieldR; break;
  default: Op = Opcode::GetFieldI; break;
  }
  Insn I;
  I.Op = Op;
  I.A = D;
  I.B = Obj;
  I.Idx = F;
  Code.push_back(I);
}

void FunctionBuilder::putField(RegIdx Obj, FieldId F, RegIdx S) {
  Opcode Op;
  switch (Parent.field(F).FieldType) {
  case Type::I64: Op = Opcode::PutFieldI; break;
  case Type::F64: Op = Opcode::PutFieldF; break;
  case Type::Ref: Op = Opcode::PutFieldR; break;
  default: Op = Opcode::PutFieldI; break;
  }
  Insn I;
  I.Op = Op;
  I.A = S;
  I.B = Obj;
  I.Idx = F;
  Code.push_back(I);
}

void FunctionBuilder::getStatic(RegIdx D, StaticFieldId F) {
  Opcode Op;
  switch (Parent.staticField(F).FieldType) {
  case Type::I64: Op = Opcode::GetStaticI; break;
  case Type::F64: Op = Opcode::GetStaticF; break;
  case Type::Ref: Op = Opcode::GetStaticR; break;
  default: Op = Opcode::GetStaticI; break;
  }
  Insn I;
  I.Op = Op;
  I.A = D;
  I.Idx = F;
  Code.push_back(I);
}

void FunctionBuilder::putStatic(StaticFieldId F, RegIdx S) {
  Opcode Op;
  switch (Parent.staticField(F).FieldType) {
  case Type::I64: Op = Opcode::PutStaticI; break;
  case Type::F64: Op = Opcode::PutStaticF; break;
  case Type::Ref: Op = Opcode::PutStaticR; break;
  default: Op = Opcode::PutStaticI; break;
  }
  Insn I;
  I.Op = Op;
  I.A = S;
  I.Idx = F;
  Code.push_back(I);
}

void FunctionBuilder::newArray(RegIdx D, RegIdx Len, Type ElemType) {
  Opcode Op;
  switch (ElemType) {
  case Type::I64: Op = Opcode::NewArrayI; break;
  case Type::F64: Op = Opcode::NewArrayF; break;
  case Type::Ref: Op = Opcode::NewArrayR; break;
  default: Op = Opcode::NewArrayI; break;
  }
  emit3(Op, D, Len, NoReg);
}

void FunctionBuilder::aload(RegIdx D, RegIdx Arr, RegIdx Idx,
                            Type ElemType) {
  Opcode Op;
  switch (ElemType) {
  case Type::I64: Op = Opcode::ALoadI; break;
  case Type::F64: Op = Opcode::ALoadF; break;
  case Type::Ref: Op = Opcode::ALoadR; break;
  default: Op = Opcode::ALoadI; break;
  }
  emit3(Op, D, Arr, Idx);
}

void FunctionBuilder::astore(RegIdx Arr, RegIdx Idx, RegIdx S,
                             Type ElemType) {
  Opcode Op;
  switch (ElemType) {
  case Type::I64: Op = Opcode::AStoreI; break;
  case Type::F64: Op = Opcode::AStoreF; break;
  case Type::Ref: Op = Opcode::AStoreR; break;
  default: Op = Opcode::AStoreI; break;
  }
  emit3(Op, S, Arr, Idx);
}

void FunctionBuilder::arrayLen(RegIdx D, RegIdx Arr) {
  emit3(Opcode::ArrayLen, D, Arr, NoReg);
}

// --- DexBuilder -------------------------------------------------------------

std::string DexBuilder::qualify(ClassId Owner,
                                const std::string &Name) const {
  if (Owner == InvalidId)
    return Name;
  return File.Classes.at(Owner).Name + "." + Name;
}

ClassId DexBuilder::addClass(const std::string &Name, ClassId Super) {
  assert(!Built && "builder already consumed");
  assert((Super == InvalidId || Super < File.Classes.size()) &&
         "superclass must be declared before the subclass");
  ClassInfo C;
  C.Name = Name;
  C.Id = static_cast<ClassId>(File.Classes.size());
  C.Super = Super;
  File.Classes.push_back(std::move(C));
  return File.Classes.back().Id;
}

FieldId DexBuilder::addField(ClassId Owner, const std::string &Name,
                             Type T) {
  assert(Owner < File.Classes.size() && "unknown class");
  FieldInfo F;
  F.Name = qualify(Owner, Name);
  F.Owner = Owner;
  F.FieldType = T;
  FieldId Id = static_cast<FieldId>(File.Fields.size());
  File.Fields.push_back(std::move(F));
  File.Classes[Owner].Fields.push_back(Id);
  return Id;
}

StaticFieldId DexBuilder::addStaticField(ClassId Owner,
                                         const std::string &Name, Type T,
                                         int64_t InitialBits) {
  StaticFieldInfo F;
  F.Name = qualify(Owner, Name);
  F.Owner = Owner;
  F.FieldType = T;
  F.InitialValue = InitialBits;
  File.StaticFields.push_back(std::move(F));
  return static_cast<StaticFieldId>(File.StaticFields.size() - 1);
}

NativeId DexBuilder::addNative(const std::string &Name, uint16_t ParamCount,
                               bool ReturnsValue, bool DoesIO,
                               bool NonDeterministic,
                               const std::string &IntrinsicKind) {
  NativeDecl N;
  N.Name = Name;
  N.ParamCount = ParamCount;
  N.ReturnsValue = ReturnsValue;
  N.DoesIO = DoesIO;
  N.NonDeterministic = NonDeterministic;
  N.IntrinsicKind = IntrinsicKind;
  File.Natives.push_back(std::move(N));
  return static_cast<NativeId>(File.Natives.size() - 1);
}

MethodId DexBuilder::declareFunction(ClassId Owner, const std::string &Name,
                                     uint16_t ParamCount, bool ReturnsValue,
                                     uint32_t Flags) {
  Method M;
  M.Name = qualify(Owner, Name);
  M.Id = static_cast<MethodId>(File.Methods.size());
  M.Owner = Owner;
  M.ParamCount = ParamCount;
  M.RegCount = ParamCount;
  M.ReturnsValue = ReturnsValue;
  M.IsStatic = true;
  M.Flags = Flags;
  File.Methods.push_back(std::move(M));
  if (Owner != InvalidId)
    File.Classes[Owner].Methods.push_back(File.Methods.back().Id);
  return File.Methods.back().Id;
}

MethodId DexBuilder::declareVirtual(ClassId Owner, const std::string &Name,
                                    uint16_t ParamCount, bool ReturnsValue,
                                    uint32_t Flags) {
  assert(Owner != InvalidId && "virtual methods need a class");
  assert(ParamCount >= 1 && "virtual methods take the receiver");
  MethodId Id = declareFunction(Owner, Name, ParamCount, ReturnsValue,
                                Flags);
  Method &M = File.Methods[Id];
  M.IsStatic = false;
  M.IsVirtual = true;
  return Id;
}

MethodId DexBuilder::declareNativeMethod(ClassId Owner,
                                         const std::string &Name,
                                         NativeId N) {
  const NativeDecl &Decl = File.Natives.at(N);
  uint32_t Flags = MF_None;
  if (Decl.DoesIO)
    Flags |= MF_DoesIO;
  if (Decl.NonDeterministic)
    Flags |= MF_NonDeterministic;
  MethodId Id =
      declareFunction(Owner, Name, Decl.ParamCount, Decl.ReturnsValue,
                      Flags);
  Method &M = File.Methods[Id];
  M.IsNative = true;
  M.Native = N;
  return Id;
}

void DexBuilder::addMethodFlags(MethodId Id, uint32_t Flags) {
  File.Methods.at(Id).Flags |= Flags;
}

FunctionBuilder DexBuilder::beginBody(MethodId Id) {
  const Method &M = File.Methods.at(Id);
  assert(!M.IsNative && "native methods have no bytecode body");
  assert(M.Code.empty() && "method body already defined");
  return FunctionBuilder(*this, Id, M.ParamCount);
}

void DexBuilder::endBody(FunctionBuilder &FB) {
  for (const auto &[InsnIndex, L] : FB.Fixups) {
    int32_t Pos = FB.LabelPositions.at(L);
    assert(Pos >= 0 && "branch to unbound label");
    FB.Code[InsnIndex].Target = Pos;
  }
  Method &M = File.Methods.at(FB.Id);
  M.RegCount = FB.NextReg;
  M.Code = std::move(FB.Code);
}

int64_t DexBuilder::doubleBits(double V) {
  int64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

/// Returns the bare (unqualified) method name.
static std::string bareName(const std::string &Qualified) {
  size_t Dot = Qualified.rfind('.');
  return Dot == std::string::npos ? Qualified : Qualified.substr(Dot + 1);
}

DexFile DexBuilder::build() {
  assert(!Built && "builder already consumed");
  Built = true;

  // Field layout: inherited slots first, then own declarations.
  for (ClassInfo &C : File.Classes) {
    uint32_t Base =
        C.Super == InvalidId ? 0 : File.Classes[C.Super].InstanceSlots;
    uint32_t Next = Base;
    for (FieldId F : C.Fields)
      File.Fields[F].SlotIndex = Next++;
    C.InstanceSlots = Next;
  }

  // VTable linking: start from the superclass table, override slots whose
  // bare name matches, append genuinely new virtuals.
  for (ClassInfo &C : File.Classes) {
    if (C.Super != InvalidId)
      C.VTable = File.Classes[C.Super].VTable;
    for (MethodId Id : C.Methods) {
      Method &M = File.Methods[Id];
      if (!M.IsVirtual)
        continue;
      std::string Bare = bareName(M.Name);
      int32_t Slot = -1;
      for (size_t S = 0; S != C.VTable.size(); ++S) {
        if (bareName(File.Methods[C.VTable[S]].Name) == Bare) {
          Slot = static_cast<int32_t>(S);
          break;
        }
      }
      if (Slot < 0) {
        Slot = static_cast<int32_t>(C.VTable.size());
        C.VTable.push_back(Id);
      } else {
        C.VTable[static_cast<size_t>(Slot)] = Id;
      }
      M.VTableSlot = Slot;
    }
  }

  std::vector<std::string> Errors = verify(File);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "dex verifier: %s\n", E.c_str());
    std::abort();
  }
  return std::move(File);
}
