//===- dex/Builder.h - Programmatic bytecode construction -------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DexBuilder/FunctionBuilder: the API the workloads use to author
/// applications. The flow is declare-then-define: declare every class,
/// field, native and method signature first (so ids exist for calls), then
/// define method bodies, then build() to link vtables, lay out fields and
/// verify the bytecode.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_DEX_BUILDER_H
#define ROPT_DEX_BUILDER_H

#include "dex/DexFile.h"

#include <cassert>
#include <string>
#include <vector>

namespace ropt {
namespace dex {

class DexBuilder;

/// Emits the body of one previously declared method.
///
/// Registers: parameters occupy registers [0, ParamCount); newReg()
/// allocates further temporaries. Labels are created with newLabel(),
/// referenced by branches before or after being placed with bind().
class FunctionBuilder {
public:
  using Label = uint32_t;

  /// Register holding parameter \p I.
  RegIdx param(unsigned I) const {
    assert(I < NumParams && "parameter index out of range");
    return static_cast<RegIdx>(I);
  }

  /// Allocates a fresh virtual register.
  RegIdx newReg() {
    assert(NextReg < NoReg && "register file exhausted");
    return NextReg++;
  }

  // --- Constants and moves ------------------------------------------------
  void constI(RegIdx D, int64_t V);
  void constF(RegIdx D, double V);
  void constNull(RegIdx D);
  void move(RegIdx D, RegIdx S);

  // --- Integer ALU ---------------------------------------------------------
  void addI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::AddI, D, A, B); }
  void subI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::SubI, D, A, B); }
  void mulI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::MulI, D, A, B); }
  void divI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::DivI, D, A, B); }
  void remI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::RemI, D, A, B); }
  void andI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::AndI, D, A, B); }
  void orI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::OrI, D, A, B); }
  void xorI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::XorI, D, A, B); }
  void shlI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::ShlI, D, A, B); }
  void shrI(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::ShrI, D, A, B); }
  void negI(RegIdx D, RegIdx S) { emit3(Opcode::NegI, D, S, NoReg); }

  // --- Double ALU ----------------------------------------------------------
  void addF(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::AddF, D, A, B); }
  void subF(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::SubF, D, A, B); }
  void mulF(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::MulF, D, A, B); }
  void divF(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::DivF, D, A, B); }
  void negF(RegIdx D, RegIdx S) { emit3(Opcode::NegF, D, S, NoReg); }
  void cmpF(RegIdx D, RegIdx A, RegIdx B) { emit3(Opcode::CmpF, D, A, B); }
  void sqrtF(RegIdx D, RegIdx S) { emit3(Opcode::SqrtF, D, S, NoReg); }
  void i2f(RegIdx D, RegIdx S) { emit3(Opcode::I2F, D, S, NoReg); }
  void f2i(RegIdx D, RegIdx S) { emit3(Opcode::F2I, D, S, NoReg); }

  // --- Control flow ----------------------------------------------------------
  Label newLabel();
  /// Places \p L at the next emitted instruction.
  void bind(Label L);
  void jump(Label L);
  void ifEq(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfEq, A, B, L); }
  void ifNe(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfNe, A, B, L); }
  void ifLt(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfLt, A, B, L); }
  void ifLe(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfLe, A, B, L); }
  void ifGt(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfGt, A, B, L); }
  void ifGe(RegIdx A, RegIdx B, Label L) { branch(Opcode::IfGe, A, B, L); }
  void ifEqz(RegIdx A, Label L) { branchZ(Opcode::IfEqz, A, L); }
  void ifNez(RegIdx A, Label L) { branchZ(Opcode::IfNez, A, L); }
  void ifLtz(RegIdx A, Label L) { branchZ(Opcode::IfLtz, A, L); }
  void ifLez(RegIdx A, Label L) { branchZ(Opcode::IfLez, A, L); }
  void ifGtz(RegIdx A, Label L) { branchZ(Opcode::IfGtz, A, L); }
  void ifGez(RegIdx A, Label L) { branchZ(Opcode::IfGez, A, L); }

  // --- Calls -----------------------------------------------------------------
  /// Calls static/free method \p Callee; \p D may be NoReg.
  void invokeStatic(RegIdx D, MethodId Callee,
                    const std::vector<RegIdx> &Args);
  /// Virtual dispatch through Args[0]'s class on declared method \p Callee.
  void invokeVirtual(RegIdx D, MethodId Callee,
                     const std::vector<RegIdx> &Args);
  /// Direct native call.
  void invokeNative(RegIdx D, NativeId Callee,
                    const std::vector<RegIdx> &Args);

  void ret(RegIdx S);
  void retVoid();

  // --- Objects and arrays ------------------------------------------------
  void newInstance(RegIdx D, ClassId Cls);
  void getField(RegIdx D, RegIdx Obj, FieldId F);
  void putField(RegIdx Obj, FieldId F, RegIdx S);
  void getStatic(RegIdx D, StaticFieldId F);
  void putStatic(StaticFieldId F, RegIdx S);
  void newArray(RegIdx D, RegIdx Len, Type ElemType);
  void aload(RegIdx D, RegIdx Arr, RegIdx Idx, Type ElemType);
  void astore(RegIdx Arr, RegIdx Idx, RegIdx S, Type ElemType);
  void arrayLen(RegIdx D, RegIdx Arr);

  /// Convenience: D = constant-int temp (new register each call).
  RegIdx immI(int64_t V) {
    RegIdx R = newReg();
    constI(R, V);
    return R;
  }
  RegIdx immF(double V) {
    RegIdx R = newReg();
    constF(R, V);
    return R;
  }

  /// Number of instructions emitted so far.
  size_t size() const { return Code.size(); }

private:
  friend class DexBuilder;
  FunctionBuilder(DexBuilder &Parent, MethodId Id, uint16_t NumParams)
      : Parent(Parent), Id(Id), NumParams(NumParams), NextReg(NumParams) {}

  void emit3(Opcode Op, RegIdx A, RegIdx B, RegIdx C);
  void branch(Opcode Op, RegIdx A, RegIdx B, Label L);
  void branchZ(Opcode Op, RegIdx A, Label L);
  void emitInvoke(Opcode Op, RegIdx D, uint32_t Callee,
                  const std::vector<RegIdx> &Args);
  void addFixup(size_t InsnIndex, Label L);

  DexBuilder &Parent;
  MethodId Id;
  uint16_t NumParams;
  RegIdx NextReg;
  std::vector<Insn> Code;
  std::vector<int32_t> LabelPositions; ///< -1 while unbound.
  std::vector<std::pair<size_t, Label>> Fixups;
};

/// Declares program entities and produces a linked, verified DexFile.
class DexBuilder {
public:
  /// Declares a class; \p Super may be InvalidId for a root class.
  ClassId addClass(const std::string &Name, ClassId Super = InvalidId);

  /// Declares an instance field on \p Owner.
  FieldId addField(ClassId Owner, const std::string &Name, Type T);

  /// Declares a static field. \p InitialBits is the raw initial slot value
  /// (use doubleBits() for F64 initializers).
  StaticFieldId addStaticField(ClassId Owner, const std::string &Name,
                               Type T, int64_t InitialBits = 0);

  /// Declares a native (JNI) function.
  NativeId addNative(const std::string &Name, uint16_t ParamCount,
                     bool ReturnsValue, bool DoesIO = false,
                     bool NonDeterministic = false,
                     const std::string &IntrinsicKind = "");

  /// Declares a static method or free function (Owner may be InvalidId).
  MethodId declareFunction(ClassId Owner, const std::string &Name,
                           uint16_t ParamCount, bool ReturnsValue,
                           uint32_t Flags = MF_None);

  /// Declares a virtual method; ParamCount includes the receiver. Overrides
  /// a superclass virtual with the same bare name automatically.
  MethodId declareVirtual(ClassId Owner, const std::string &Name,
                          uint16_t ParamCount, bool ReturnsValue,
                          uint32_t Flags = MF_None);

  /// Declares a bytecode-level wrapper around native \p N on \p Owner
  /// (InvalidId for a free function). Flags are derived from the native.
  MethodId declareNativeMethod(ClassId Owner, const std::string &Name,
                               NativeId N);

  /// Adds extra behaviour flags to a declared method.
  void addMethodFlags(MethodId Id, uint32_t Flags);

  /// Starts defining the body of \p Id. Call FunctionBuilder methods, then
  /// endMethod().
  FunctionBuilder beginBody(MethodId Id);

  /// Finalizes a body: resolves labels and stores the code.
  void endBody(FunctionBuilder &FB);

  /// Links vtables and field layouts, verifies all bytecode, and returns
  /// the immutable image. The builder must not be reused afterwards.
  DexFile build();

  /// Bit pattern of a double, for static field initializers.
  static int64_t doubleBits(double V);

  // Accessors used by FunctionBuilder while emitting.
  const FieldInfo &field(FieldId Id) const { return File.Fields.at(Id); }
  const StaticFieldInfo &staticField(StaticFieldId Id) const {
    return File.StaticFields.at(Id);
  }
  const Method &method(MethodId Id) const { return File.Methods.at(Id); }
  const NativeDecl &native(NativeId Id) const { return File.Natives.at(Id); }

private:
  std::string qualify(ClassId Owner, const std::string &Name) const;

  DexFile File;
  bool Built = false;
};

} // namespace dex
} // namespace ropt

#endif // ROPT_DEX_BUILDER_H
