//===- lir/Passes.cpp - Scalar passes and the pass registry ----------------===//

#include "lir/Passes.h"

#include "lir/Analysis.h"
#include "support/Format.h"
#include "vm/MachineUtil.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <optional>
#include <set>

using namespace ropt;
using namespace ropt::lir;
using vm::MOpcode;

// --- Registry ----------------------------------------------------------------

const std::vector<PassDescriptor> &lir::passRegistry() {
  static const std::vector<PassDescriptor> Registry = {
      {PassId::SimplifyCfg, "simplifycfg", false, 0, 0, 0, false},
      {PassId::ConstProp, "constprop", false, 0, 0, 0, false},
      {PassId::InstCombine, "instcombine", false, 0, 0, 0, false},
      {PassId::Gvn, "gvn", false, 0, 0, 0, false},
      {PassId::Dce, "dce", false, 0, 0, 0, true},
      {PassId::Licm, "licm", false, 0, 0, 0, true},
      {PassId::Reassociate, "reassociate", false, 0, 0, 0, true},
      {PassId::LoopRotate, "loop-rotate", false, 0, 0, 0, false},
      {PassId::LoopUnroll, "loop-unroll", true, 2, 64, 4, true},
      {PassId::LoopPeel, "loop-peel", true, 1, 8, 1, false},
      {PassId::GcElide, "gc-elide", false, 0, 0, 0, true},
      {PassId::JniIntrinsics, "jni-intrinsics", false, 0, 0, 0, false},
      {PassId::Devirtualize, "devirtualize", true, 50, 100, 90, false},
      {PassId::Inline, "inline", true, 8, 400, 60, false},
      {PassId::JumpThreading, "jump-threading", false, 0, 0, 0, true},
      {PassId::BoundsCheckElim, "boundscheck-elim", false, 0, 0, 0, true},
      {PassId::Sink, "sink", false, 0, 0, 0, false},
  };
  return Registry;
}

const PassDescriptor &lir::passDescriptor(PassId Id) {
  const auto &Registry = passRegistry();
  assert(static_cast<size_t>(Id) < Registry.size());
  assert(Registry[static_cast<size_t>(Id)].Id == Id &&
         "registry out of order");
  return Registry[static_cast<size_t>(Id)];
}

bool lir::parsePassInstance(const std::string &Spec, PassInstance &Out) {
  std::string Name = Spec;
  Out = PassInstance();
  if (!Name.empty() && Name.back() == '!') {
    Out.Aggressive = true;
    Name.pop_back();
  }
  size_t Eq = Name.find('=');
  if (Eq != std::string::npos) {
    Out.IntParam = std::atoi(Name.c_str() + Eq + 1);
    Name = Name.substr(0, Eq);
  }
  for (const PassDescriptor &D : passRegistry()) {
    if (Name == D.Name) {
      Out.Id = D.Id;
      if (Eq == std::string::npos)
        Out.IntParam = D.DefaultInt;
      return true;
    }
  }
  return false;
}

std::string lir::passInstanceName(const PassInstance &P) {
  const PassDescriptor &D = passDescriptor(P.Id);
  std::string Out = D.Name;
  if (D.HasIntParam)
    Out += format("=%d", P.IntParam);
  if (P.Aggressive)
    Out += "!";
  return Out;
}

// --- Shared utilities -----------------------------------------------------------

void lir::replaceAllUses(LFunction &Fn, ValueId Old, ValueId New) {
  for (LBlock &B : Fn.Blocks) {
    for (LPhi &P : B.Phis)
      for (ValueId &V : P.In)
        if (V == Old)
          V = New;
    for (LInsn &I : B.Insns)
      forEachOperand(I, [Old, New](ValueId &V) {
        if (V == Old)
          V = New;
      });
    if (B.Term.A == Old)
      B.Term.A = New;
    if (B.Term.B == Old)
      B.Term.B = New;
  }
}

namespace {

/// Clears every block the entry cannot reach and removes their pred slots
/// (with phi inputs) from reachable blocks.
bool pruneUnreachable(LFunction &Fn) {
  std::vector<bool> Reachable(Fn.Blocks.size(), false);
  for (uint32_t Id : Fn.reversePostOrder())
    Reachable[Id] = true;

  bool Changed = false;
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &B = Fn.Blocks[Id];
    if (!Reachable[Id]) {
      if (!B.Insns.empty() || !B.Phis.empty() || !B.Preds.empty() ||
          B.Term.K != LTerminator::Kind::RetVoid) {
        B = LBlock();
        Changed = true;
      }
      continue;
    }
    for (size_t N = B.Preds.size(); N-- > 0;) {
      if (Reachable[B.Preds[N]])
        continue;
      B.Preds.erase(B.Preds.begin() + N);
      for (LPhi &P : B.Phis)
        P.In.erase(P.In.begin() + N);
      Changed = true;
    }
  }
  return Changed;
}

/// Removes the first pred slot of \p Block matching \p Pred, dropping the
/// corresponding phi inputs.
void removePredSlot(LFunction &Fn, uint32_t Block, uint32_t Pred) {
  LBlock &B = Fn.Blocks[Block];
  for (size_t N = 0; N != B.Preds.size(); ++N) {
    if (B.Preds[N] != Pred)
      continue;
    B.Preds.erase(B.Preds.begin() + N);
    for (LPhi &P : B.Phis)
      P.In.erase(P.In.begin() + N);
    return;
  }
  assert(false && "pred slot not found");
}

/// Rewrites a conditional terminator into a goto to \p Dest, detaching the
/// other edge's pred slot.
void foldCondTerminator(LFunction &Fn, uint32_t Block, uint32_t Dest,
                        uint32_t Dead) {
  if (Dead != Dest)
    removePredSlot(Fn, Dead, Block);
  else {
    // Both edges led to the same block: one slot goes away.
    removePredSlot(Fn, Dead, Block);
  }
  LTerminator &T = Fn.Blocks[Block].Term;
  T = LTerminator();
  T.K = LTerminator::Kind::Goto;
  T.Taken = Dest;
}

/// Integer constant map from MMovImmI defs.
std::map<ValueId, int64_t> collectIntConsts(const LFunction &Fn) {
  std::map<ValueId, int64_t> Consts;
  for (const LBlock &B : Fn.Blocks)
    for (const LInsn &I : B.Insns)
      if (I.Op == MOpcode::MMovImmI && I.Dst != NoValue)
        Consts[I.Dst] = I.ImmI;
  return Consts;
}

std::map<ValueId, double> collectFloatConsts(const LFunction &Fn) {
  std::map<ValueId, double> Consts;
  for (const LBlock &B : Fn.Blocks)
    for (const LInsn &I : B.Insns)
      if (I.Op == MOpcode::MMovImmF && I.Dst != NoValue)
        Consts[I.Dst] = I.ImmF;
  return Consts;
}

/// Defining instruction per value (nullptr for params/phis).
std::vector<const LInsn *> collectDefs(const LFunction &Fn) {
  std::vector<const LInsn *> Defs(Fn.NumValues, nullptr);
  for (const LBlock &B : Fn.Blocks)
    for (const LInsn &I : B.Insns)
      if (I.Dst != NoValue)
        Defs[I.Dst] = &I;
  return Defs;
}

std::optional<int64_t> foldInt(MOpcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case MOpcode::MAddI: return A + B;
  case MOpcode::MSubI: return A - B;
  case MOpcode::MMulI: return A * B;
  case MOpcode::MAndI: return A & B;
  case MOpcode::MOrI: return A | B;
  case MOpcode::MXorI: return A ^ B;
  case MOpcode::MShlI: return A << (B & 63);
  case MOpcode::MShrI: return A >> (B & 63);
  default: return std::nullopt;
  }
}

bool evalCond(MOpcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case MOpcode::MIfEq: case MOpcode::MIfEqz: return A == B;
  case MOpcode::MIfNe: case MOpcode::MIfNez: return A != B;
  case MOpcode::MIfLt: case MOpcode::MIfLtz: return A < B;
  case MOpcode::MIfLe: case MOpcode::MIfLez: return A <= B;
  case MOpcode::MIfGt: case MOpcode::MIfGtz: return A > B;
  default: return A >= B;
  }
}

void toNop(LInsn &I) { I = LInsn(); }

void toConstI(LInsn &I, int64_t V) {
  ValueId Dst = I.Dst;
  I = LInsn();
  I.Op = MOpcode::MMovImmI;
  I.Dst = Dst;
  I.ImmI = V;
}

void toConstF(LInsn &I, double V) {
  ValueId Dst = I.Dst;
  I = LInsn();
  I.Op = MOpcode::MMovImmF;
  I.Dst = Dst;
  I.ImmF = V;
}

} // namespace

// --- SimplifyCfg ------------------------------------------------------------------

bool lir::simplifyCfg(LFunction &Fn) {
  bool Changed = pruneUnreachable(Fn);

  // Trivial phi elimination: single input, all-same input, or self + one.
  bool Local = true;
  while (Local) {
    Local = false;
    for (LBlock &B : Fn.Blocks) {
      for (size_t N = B.Phis.size(); N-- > 0;) {
        LPhi &P = B.Phis[N];
        ValueId Unique = NoValue;
        bool Simple = true;
        for (ValueId In : P.In) {
          if (In == P.Dst || In == NoValue)
            continue;
          if (Unique == NoValue)
            Unique = In;
          else if (Unique != In)
            Simple = false;
        }
        if (!Simple || Unique == NoValue)
          continue;
        replaceAllUses(Fn, P.Dst, Unique);
        B.Phis.erase(B.Phis.begin() + N);
        Local = true;
        Changed = true;
      }
    }
  }

  // Goto threading through empty, phi-free blocks.
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &B = Fn.Blocks[Id];
    if (!B.Insns.empty() || !B.Phis.empty() ||
        B.Term.K != LTerminator::Kind::Goto || B.Term.Taken == Id ||
        B.Preds.empty())
      continue;
    uint32_t T = B.Term.Taken;
    if (!Fn.Blocks[T].Phis.empty())
      continue; // conservative: keep phi blocks intact
    std::vector<uint32_t> Preds = B.Preds;
    for (uint32_t P : Preds) {
      LTerminator &PT = Fn.Blocks[P].Term;
      if (PT.K == LTerminator::Kind::Goto || PT.K == LTerminator::Kind::Cond ||
          PT.K == LTerminator::Kind::Guard) {
        if (PT.Taken == Id)
          PT.Taken = T;
        if ((PT.K == LTerminator::Kind::Cond ||
             PT.K == LTerminator::Kind::Guard) &&
            PT.Fall == Id)
          PT.Fall = T;
      }
      Fn.Blocks[T].Preds.push_back(P);
    }
    removePredSlot(Fn, T, Id);
    B.Preds.clear();
    Changed = true;
  }

  // Merge single-pred/single-succ straight lines.
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &P = Fn.Blocks[Id];
    while (P.Term.K == LTerminator::Kind::Goto) {
      uint32_t S = P.Term.Taken;
      if (S == Id)
        break;
      LBlock &SB = Fn.Blocks[S];
      if (SB.Preds.size() != 1 || SB.Preds[0] != Id || !SB.Phis.empty() ||
          S == 0)
        break;
      // Splice S into P.
      P.Insns.insert(P.Insns.end(), SB.Insns.begin(), SB.Insns.end());
      P.Term = SB.Term;
      for (uint32_t Succ : P.Term.successors()) {
        LBlock &Next = Fn.Blocks[Succ];
        for (uint32_t &Pred : Next.Preds)
          if (Pred == S)
            Pred = Id;
      }
      SB = LBlock();
      Changed = true;
    }
  }

  Changed |= pruneUnreachable(Fn);
  return Changed;
}

// --- ConstProp -----------------------------------------------------------------------

bool lir::constProp(LFunction &Fn) {
  bool Changed = false;
  for (int Round = 0; Round != 8; ++Round) {
    bool RoundChanged = false;
    std::map<ValueId, int64_t> IConsts = collectIntConsts(Fn);
    std::map<ValueId, double> FConsts = collectFloatConsts(Fn);
    auto IC = [&IConsts](ValueId V) -> std::optional<int64_t> {
      auto It = IConsts.find(V);
      if (It == IConsts.end())
        return std::nullopt;
      return It->second;
    };
    auto FC = [&FConsts](ValueId V) -> std::optional<double> {
      auto It = FConsts.find(V);
      if (It == FConsts.end())
        return std::nullopt;
      return It->second;
    };

    for (LBlock &B : Fn.Blocks) {
      for (LInsn &I : B.Insns) {
        switch (I.Op) {
        case MOpcode::MMov:
          replaceAllUses(Fn, I.Dst, I.A);
          toNop(I);
          RoundChanged = true;
          break;
        case MOpcode::MAddI: case MOpcode::MSubI: case MOpcode::MMulI:
        case MOpcode::MAndI: case MOpcode::MOrI: case MOpcode::MXorI:
        case MOpcode::MShlI: case MOpcode::MShrI: {
          auto A = IC(I.A), Bc = IC(I.B);
          if (A && Bc) {
            if (auto R = foldInt(I.Op, *A, *Bc)) {
              toConstI(I, *R);
              RoundChanged = true;
            }
          }
          break;
        }
        case MOpcode::MNegI:
          if (auto A = IC(I.A)) {
            toConstI(I, -*A);
            RoundChanged = true;
          }
          break;
        case MOpcode::MAddF: case MOpcode::MSubF: case MOpcode::MMulF:
        case MOpcode::MDivF: {
          auto A = FC(I.A), Bc = FC(I.B);
          if (A && Bc) {
            double R = I.Op == MOpcode::MAddF   ? *A + *Bc
                       : I.Op == MOpcode::MSubF ? *A - *Bc
                       : I.Op == MOpcode::MMulF ? *A * *Bc
                                                : *A / *Bc;
            toConstF(I, R);
            RoundChanged = true;
          }
          break;
        }
        case MOpcode::MNegF:
          if (auto A = FC(I.A)) {
            toConstF(I, -*A);
            RoundChanged = true;
          }
          break;
        case MOpcode::MCmpF: {
          auto A = FC(I.A), Bc = FC(I.B);
          if (A && Bc) {
            toConstI(I, (*A < *Bc) ? -1 : (*A == *Bc ? 0 : 1));
            RoundChanged = true;
          }
          break;
        }
        case MOpcode::MI2F:
          if (auto A = IC(I.A)) {
            toConstF(I, static_cast<double>(*A));
            RoundChanged = true;
          }
          break;
        case MOpcode::MCheckDiv:
          if (auto A = IC(I.A); A && *A != 0) {
            toNop(I);
            RoundChanged = true;
          }
          break;
        default:
          break;
        }
      }

      LTerminator &T = B.Term;
      if (T.K == LTerminator::Kind::Cond) {
        auto A = IC(T.A);
        std::optional<int64_t> Bc(0);
        if (T.B != NoValue)
          Bc = IC(T.B);
        if (A && Bc) {
          uint32_t Id = static_cast<uint32_t>(&B - Fn.Blocks.data());
          bool Taken = evalCond(T.CondOp, *A, *Bc);
          uint32_t Dest = Taken ? T.Taken : T.Fall;
          uint32_t Dead = Taken ? T.Fall : T.Taken;
          foldCondTerminator(Fn, Id, Dest, Dead);
          RoundChanged = true;
        }
      }
    }
    if (RoundChanged)
      pruneUnreachable(Fn);
    Changed |= RoundChanged;
    if (!RoundChanged)
      break;
  }
  return Changed;
}

// --- InstCombine -------------------------------------------------------------------

bool lir::instCombine(LFunction &Fn) {
  bool Changed = false;
  std::map<ValueId, int64_t> IConsts = collectIntConsts(Fn);
  std::vector<const LInsn *> Defs = collectDefs(Fn);
  auto IC = [&IConsts](ValueId V) -> std::optional<int64_t> {
    auto It = IConsts.find(V);
    if (It == IConsts.end())
      return std::nullopt;
    return It->second;
  };

  for (LBlock &B : Fn.Blocks) {
    for (size_t Pos = 0; Pos < B.Insns.size(); ++Pos) {
      LInsn &I = B.Insns[Pos];
      auto Alias = [&](ValueId Src) {
        replaceAllUses(Fn, I.Dst, Src);
        toNop(B.Insns[Pos]);
        Changed = true;
      };

      std::optional<int64_t> CA, CB;
      if (I.A != NoValue)
        CA = IC(I.A);
      if (I.B != NoValue)
        CB = IC(I.B);

      switch (I.Op) {
      case MOpcode::MAddI:
        if (CB && *CB == 0)
          Alias(I.A);
        else if (CA && *CA == 0)
          Alias(I.B);
        break;
      case MOpcode::MSubI:
        if (CB && *CB == 0)
          Alias(I.A);
        else if (I.A == I.B) {
          toConstI(I, 0);
          Changed = true;
        }
        break;
      case MOpcode::MMulI:
        if (CB && *CB == 1)
          Alias(I.A);
        else if (CA && *CA == 1)
          Alias(I.B);
        else if ((CB && *CB == 0) || (CA && *CA == 0)) {
          toConstI(I, 0);
          Changed = true;
        } else if (CB && *CB > 1 && (*CB & (*CB - 1)) == 0) {
          // x * 2^k -> x << k with a fresh shift-amount constant.
          int64_t Shift = 0;
          for (int64_t V = *CB; V > 1; V >>= 1)
            ++Shift;
          LInsn K;
          K.Op = MOpcode::MMovImmI;
          K.ImmI = Shift;
          K.Dst = Fn.newValue();
          LInsn Shl;
          Shl.Op = MOpcode::MShlI;
          Shl.Dst = I.Dst;
          Shl.A = I.A;
          Shl.B = K.Dst;
          B.Insns[Pos] = Shl;
          B.Insns.insert(B.Insns.begin() + Pos, K);
          ++Pos;
          Changed = true;
        }
        break;
      case MOpcode::MDivI:
        if (CB && *CB == 1)
          Alias(I.A);
        break;
      case MOpcode::MXorI:
        if (I.A == I.B) {
          toConstI(I, 0);
          Changed = true;
        } else if (CB && *CB == 0)
          Alias(I.A);
        break;
      case MOpcode::MAndI:
      case MOpcode::MOrI:
        if (I.A == I.B)
          Alias(I.A);
        else if (CB && *CB == 0) {
          if (I.Op == MOpcode::MOrI)
            Alias(I.A);
          else {
            toConstI(I, 0);
            Changed = true;
          }
        }
        break;
      case MOpcode::MShlI:
      case MOpcode::MShrI:
        if (CB && *CB == 0)
          Alias(I.A);
        break;
      case MOpcode::MNegI:
        if (I.A < Defs.size() && Defs[I.A] &&
            Defs[I.A]->Op == MOpcode::MNegI)
          Alias(Defs[I.A]->A);
        break;
      case MOpcode::MNegF:
        if (I.A < Defs.size() && Defs[I.A] &&
            Defs[I.A]->Op == MOpcode::MNegF)
          Alias(Defs[I.A]->A);
        break;
      case MOpcode::MF2I:
        if (I.A < Defs.size() && Defs[I.A] &&
            Defs[I.A]->Op == MOpcode::MI2F)
          Alias(Defs[I.A]->A);
        break;
      case MOpcode::MCheckNull:
        if (I.A < Defs.size() && Defs[I.A] &&
            (Defs[I.A]->Op == MOpcode::MNewInstance ||
             Defs[I.A]->Op == MOpcode::MNewArray)) {
          toNop(B.Insns[Pos]);
          Changed = true;
        }
        break;
      case MOpcode::MMov:
        Alias(I.A);
        break;
      default:
        break;
      }
    }

    // Same-operand conditional terminators.
    LTerminator &T = B.Term;
    if (T.K == LTerminator::Kind::Cond && T.B != NoValue && T.A == T.B) {
      uint32_t Id = static_cast<uint32_t>(&B - Fn.Blocks.data());
      bool Taken = evalCond(T.CondOp, 0, 0); // A==B: evaluate reflexively
      uint32_t Dest = Taken ? T.Taken : T.Fall;
      uint32_t Dead = Taken ? T.Fall : T.Taken;
      foldCondTerminator(Fn, Id, Dest, Dead);
      Changed = true;
    }
  }
  return Changed;
}

// --- GVN --------------------------------------------------------------------------

bool lir::gvn(LFunction &Fn) {
  struct Key {
    MOpcode Op;
    ValueId A, B;
    int64_t ImmI;
    uint64_t ImmF;
    uint32_t Idx;
    bool operator<(const Key &O) const {
      return std::tie(Op, A, B, ImmI, ImmF, Idx) <
             std::tie(O.Op, O.A, O.B, O.ImmI, O.ImmF, O.Idx);
    }
  };

  bool Changed = false;
  DomTree DT = DomTree::compute(Fn);
  std::map<Key, ValueId> Available;

  // Recursive dominator-tree walk with scope rollback.
  std::function<void(uint32_t)> Walk = [&](uint32_t Block) {
    std::vector<Key> Inserted;
    for (LInsn &I : Fn.Blocks[Block].Insns) {
      if (!vm::isPureOp(I.Op) || I.Dst == NoValue)
        continue;
      uint64_t FBits;
      std::memcpy(&FBits, &I.ImmF, sizeof(FBits));
      Key K{I.Op, I.A, I.B, I.ImmI, FBits, I.Idx};
      auto It = Available.find(K);
      if (It != Available.end()) {
        replaceAllUses(Fn, I.Dst, It->second);
        toNop(I);
        Changed = true;
        continue;
      }
      Available.emplace(K, I.Dst);
      Inserted.push_back(K);
    }
    for (uint32_t Child : DT.children(Block))
      Walk(Child);
    for (const Key &K : Inserted)
      Available.erase(K);
  };
  Walk(0);
  return Changed;
}

// --- DCE --------------------------------------------------------------------------

bool lir::dce(LFunction &Fn, bool Aggressive) {
  bool Changed = false;

  // Phi liveness with cycle awareness: a phi is live only if its value
  // reaches a non-phi use, directly or through other live phis. Plain use
  // counting cannot remove mutually-referencing dead phi webs (the shape
  // SSA construction leaves at loop headers for iteration-local state).
  {
    std::vector<bool> Live(Fn.NumValues, false);
    std::vector<ValueId> Work;
    auto MarkLive = [&](ValueId V) {
      if (V != NoValue && !Live[V]) {
        Live[V] = true;
        Work.push_back(V);
      }
    };
    for (const LBlock &B : Fn.Blocks) {
      for (const LInsn &I : B.Insns)
        forEachOperand(I, MarkLive);
      MarkLive(B.Term.A);
      MarkLive(B.Term.B);
    }
    // Propagate through phis: a live phi makes its inputs live.
    std::map<ValueId, const LPhi *> PhiOf;
    for (const LBlock &B : Fn.Blocks)
      for (const LPhi &P : B.Phis)
        PhiOf[P.Dst] = &P;
    while (!Work.empty()) {
      ValueId V = Work.back();
      Work.pop_back();
      auto It = PhiOf.find(V);
      if (It == PhiOf.end())
        continue;
      for (ValueId In : It->second->In)
        MarkLive(In);
    }
    for (LBlock &B : Fn.Blocks) {
      size_t Before = B.Phis.size();
      B.Phis.erase(std::remove_if(B.Phis.begin(), B.Phis.end(),
                                  [&Live](const LPhi &P) {
                                    return !Live[P.Dst];
                                  }),
                   B.Phis.end());
      Changed |= B.Phis.size() != Before;
    }
  }

  bool Local = true;
  while (Local) {
    Local = false;
    std::vector<uint32_t> Uses = countUses(Fn);
    for (LBlock &B : Fn.Blocks) {
      for (size_t N = B.Phis.size(); N-- > 0;) {
        if (Uses[B.Phis[N].Dst] == 0) {
          B.Phis.erase(B.Phis.begin() + N);
          Local = true;
        }
      }
      for (LInsn &I : B.Insns) {
        if (I.Dst == NoValue || Uses[I.Dst] != 0)
          continue;
        bool Removable = vm::isPureOp(I.Op) ||
                         I.Op == MOpcode::MIntrinsic ||
                         I.Op == MOpcode::MLoadStatic;
        if (Aggressive)
          Removable |= vm::isLoadOp(I.Op) ||
                       I.Op == MOpcode::MNewInstance ||
                       I.Op == MOpcode::MNewArray;
        if (Removable) {
          toNop(I);
          Local = true;
        }
      }
      B.Insns.erase(std::remove_if(B.Insns.begin(), B.Insns.end(),
                                   [](const LInsn &I) {
                                     return I.Op == MOpcode::MNop;
                                   }),
                    B.Insns.end());
    }
    Changed |= Local;
  }
  return Changed;
}

// --- Reassociate ---------------------------------------------------------------------

bool lir::reassociate(LFunction &Fn, bool FastMath) {
  bool Changed = false;
  std::vector<const LInsn *> Defs = collectDefs(Fn);
  std::vector<uint32_t> Uses = countUses(Fn);

  auto Eligible = [FastMath](MOpcode Op) {
    if (Op == MOpcode::MAddI || Op == MOpcode::MMulI)
      return true;
    // Floating-point reassociation changes rounding; only "fast math"
    // allows it — and the verification map will catch the difference.
    if (FastMath && (Op == MOpcode::MAddF || Op == MOpcode::MMulF))
      return true;
    return false;
  };

  for (LBlock &B : Fn.Blocks) {
    for (size_t Pos = 0; Pos < B.Insns.size(); ++Pos) {
      LInsn &I2 = B.Insns[Pos];
      if (!Eligible(I2.Op) || I2.A == NoValue || I2.A >= Defs.size())
        continue;
      const LInsn *I1 = Defs[I2.A];
      if (!I1 || I1->Op != I2.Op || Uses[I2.A] != 1)
        continue;
      // t2 = (a op b) op c  ->  n = b op c; t2 = a op n.
      ValueId A = I1->A, Bv = I1->B, C = I2.B;
      LInsn N;
      N.Op = I2.Op;
      N.Dst = Fn.newValue();
      N.A = Bv;
      N.B = C;
      LInsn New2 = I2;
      New2.A = A;
      New2.B = N.Dst;
      B.Insns[Pos] = New2;
      B.Insns.insert(B.Insns.begin() + Pos, N);
      ++Pos;
      Changed = true;
      // Maps are stale now; one rewrite per pair per run is enough.
      Defs = collectDefs(Fn);
      Uses = countUses(Fn);
    }
  }
  return Changed;
}

// --- JNI intrinsics -------------------------------------------------------------------

bool lir::jniIntrinsics(LFunction &Fn, const dex::DexFile &File) {
  bool Changed = false;
  for (LBlock &B : Fn.Blocks) {
    for (LInsn &I : B.Insns) {
      if (I.Op != MOpcode::MCallNative)
        continue;
      const dex::NativeDecl &Decl = File.native(I.Idx);
      if (Decl.IntrinsicKind.empty())
        continue;
      vm::IntrinsicKind Kind;
      if (!vm::intrinsicFromName(Decl.IntrinsicKind, Kind))
        continue;
      I.Op = MOpcode::MIntrinsic;
      I.Idx = static_cast<uint32_t>(Kind);
      Changed = true;
    }
  }
  return Changed;
}

// --- Jump threading -------------------------------------------------------------------

bool lir::jumpThreading(LFunction &Fn, bool Aggressive) {
  bool Changed = false;
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &B = Fn.Blocks[Id];
    if (!B.Insns.empty() || B.Term.K != LTerminator::Kind::Goto ||
        B.Term.Taken == Id || B.Preds.empty())
      continue;
    uint32_t T = B.Term.Taken;
    if (!Fn.Blocks[T].Phis.empty()) {
      if (!Aggressive || !B.Phis.empty())
        continue;
      // BUG (modelled, DESIGN.md §4): threads into a phi-bearing target
      // without extending the target's phi inputs for the rerouted
      // predecessors — the arity mismatch is exactly what the verifier
      // exists to catch ("compiler crash").
      std::vector<uint32_t> Preds = B.Preds;
      for (uint32_t P : Preds) {
        LTerminator &PT = Fn.Blocks[P].Term;
        if (PT.Taken == Id)
          PT.Taken = T;
        if ((PT.K == LTerminator::Kind::Cond ||
             PT.K == LTerminator::Kind::Guard) &&
            PT.Fall == Id)
          PT.Fall = T;
        Fn.Blocks[T].Preds.push_back(P); // inputs "forgotten"
      }
      removePredSlot(Fn, T, Id);
      B.Preds.clear();
      Changed = true;
      continue;
    }

    if (B.Phis.empty()) {
      // Safe: forward every predecessor straight to T.
      std::vector<uint32_t> Preds = B.Preds;
      for (uint32_t P : Preds) {
        LTerminator &PT = Fn.Blocks[P].Term;
        if (PT.Taken == Id)
          PT.Taken = T;
        if ((PT.K == LTerminator::Kind::Cond ||
             PT.K == LTerminator::Kind::Guard) &&
            PT.Fall == Id)
          PT.Fall = T;
        Fn.Blocks[T].Preds.push_back(P);
      }
      removePredSlot(Fn, T, Id);
      B.Preds.clear();
      Changed = true;
      continue;
    }

    if (Aggressive) {
      // BUG (modelled, see DESIGN.md §4): threads a phi-bearing block
      // without reconstructing the phi values along the new edges. Any
      // surviving use of the dropped phis leaves the IR invalid, which the
      // verifier reports as a compiler error.
      std::vector<uint32_t> Preds = B.Preds;
      for (uint32_t P : Preds) {
        LTerminator &PT = Fn.Blocks[P].Term;
        if (PT.Taken == Id)
          PT.Taken = T;
        if ((PT.K == LTerminator::Kind::Cond ||
             PT.K == LTerminator::Kind::Guard) &&
            PT.Fall == Id)
          PT.Fall = T;
        Fn.Blocks[T].Preds.push_back(P);
      }
      removePredSlot(Fn, T, Id);
      B.Preds.clear();
      B.Phis.clear(); // definitions vanish; uses (if any) dangle
      Changed = true;
    }
  }
  if (Changed)
    pruneUnreachable(Fn);
  return Changed;
}

// --- Bounds check elimination ------------------------------------------------------------

namespace {

/// Sound induction-range elimination (the paper's §7 "not all array bounds
/// checking is necessary" future work): inside a counted loop
///
///   i = phi(init, i + step),  init >= 0 const, step > 0 const,
///   guarded by i < limit,
///
/// a check `bounds(A, i)` is redundant when `limit` is provably at most
/// `length(A)` — either `limit` *is* `arraylen(A)` of the same SSA array
/// value, or both are constants. Handles the two loop shapes the pipeline
/// produces: top-test headers (`if i >= limit -> exit`) and rotated
/// self-loops (`... if i' < limit -> self`).
struct InductionRange {
  ValueId Phi = NoValue;     ///< The induction variable.
  ValueId Limit = NoValue;   ///< Exclusive upper bound inside the body.
  std::set<uint32_t> Blocks; ///< Blocks where Phi < Limit holds.
};

std::vector<InductionRange>
findInductionRanges(const LFunction &Fn, const DomTree &DT,
                    const LoopInfo &LI,
                    const std::vector<const LInsn *> &Defs,
                    const std::map<ValueId, int64_t> &IConsts) {
  std::vector<InductionRange> Ranges;
  for (const Loop &L : LI.loops()) {
    const LBlock &H = Fn.Blocks[L.Header];
    for (const LPhi &P : H.Phis) {
      if (P.In.size() != 2)
        continue;
      int LatchIdx = -1;
      for (int N = 0; N != 2; ++N)
        if (L.contains(H.Preds[static_cast<size_t>(N)]))
          LatchIdx = N;
      if (LatchIdx < 0)
        continue;
      ValueId Init = P.In[static_cast<size_t>(1 - LatchIdx)];
      ValueId Next = P.In[static_cast<size_t>(LatchIdx)];
      auto InitC = IConsts.find(Init);
      if (InitC == IConsts.end() || InitC->second < 0)
        continue;
      if (Next >= Defs.size() || !Defs[Next] ||
          Defs[Next]->Op != MOpcode::MAddI)
        continue;
      const LInsn &Add = *Defs[Next];
      ValueId StepVal = Add.A == P.Dst   ? Add.B
                        : Add.B == P.Dst ? Add.A
                                         : NoValue;
      auto StepC = StepVal == NoValue ? IConsts.end()
                                      : IConsts.find(StepVal);
      if (StepC == IConsts.end() || StepC->second <= 0)
        continue;

      InductionRange R;
      R.Phi = P.Dst;
      const LTerminator &T = H.Term;
      // Shape (a): top-test header.
      if (T.K == LTerminator::Kind::Cond && T.A == P.Dst &&
          T.B != NoValue) {
        uint32_t BodySide = ~0u;
        if (T.CondOp == MOpcode::MIfGe && !L.contains(T.Taken))
          BodySide = T.Fall; // `if i >= limit -> exit`
        else if (T.CondOp == MOpcode::MIfLt && L.contains(T.Taken))
          BodySide = T.Taken; // `if i < limit -> body`
        if (BodySide != ~0u) {
          R.Limit = T.B;
          for (uint32_t Blk : L.Blocks)
            if (DT.dominates(BodySide, Blk))
              R.Blocks.insert(Blk);
          if (!R.Blocks.empty()) {
            Ranges.push_back(R);
            continue;
          }
        }
      }
      // Shape (b): rotated self-loop with the bottom test on `next`; the
      // preheader guard established `phi < limit` for the first entry.
      if (L.Blocks.size() == 1 && T.K == LTerminator::Kind::Cond &&
          T.A == Next && T.B != NoValue &&
          ((T.CondOp == MOpcode::MIfLt && T.Taken == L.Header) ||
           (T.CondOp == MOpcode::MIfGe && T.Fall == L.Header))) {
        R.Limit = T.B;
        R.Blocks = {L.Header};
        Ranges.push_back(R);
      }
    }
  }
  return Ranges;
}

} // namespace

bool lir::boundsCheckElim(LFunction &Fn, bool Aggressive) {
  bool Changed = false;
  DomTree DT = DomTree::compute(Fn);
  std::vector<const LInsn *> Defs = collectDefs(Fn);
  std::map<ValueId, int64_t> IConsts = collectIntConsts(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);
  std::vector<InductionRange> Ranges =
      findInductionRanges(Fn, DT, LI, Defs, IConsts);

  // Sound removal: `bounds(Array, Index)` in \p Block when the induction
  // range proves Index < length(Array).
  auto ProvablyInRange = [&](uint32_t Block, ValueId Array,
                             ValueId Index) {
    for (const InductionRange &R : Ranges) {
      if (R.Phi != Index || !R.Blocks.count(Block))
        continue;
      if (R.Limit < Defs.size() && Defs[R.Limit] &&
          Defs[R.Limit]->Op == MOpcode::MArrayLen &&
          Defs[R.Limit]->A == Array)
        return true;
      // The array was constructed with exactly `limit` elements.
      if (Array < Defs.size() && Defs[Array] &&
          Defs[Array]->Op == MOpcode::MNewArray &&
          Defs[Array]->A == R.Limit)
        return true;
      auto LimitC = IConsts.find(R.Limit);
      if (LimitC == IConsts.end())
        continue;
      if (Array < Defs.size() && Defs[Array] &&
          Defs[Array]->Op == MOpcode::MNewArray) {
        auto LenC = IConsts.find(Defs[Array]->A);
        if (LenC != IConsts.end() && LimitC->second <= LenC->second)
          return true;
      }
    }
    return false;
  };

  // Values whose def is a phi, or an add/sub one step from a phi: the naive
  // "induction variable" approximation the aggressive mode trusts. It is
  // exactly wrong for multiplicative updates (j = j * 2), matching the
  // motivating bug class.
  std::set<ValueId> PhiDefined;
  for (const LBlock &B : Fn.Blocks)
    for (const LPhi &P : B.Phis)
      PhiDefined.insert(P.Dst);
  auto LooksInductive = [&](ValueId V) {
    if (PhiDefined.count(V))
      return true;
    if (V < Defs.size() && Defs[V] &&
        (Defs[V]->Op == MOpcode::MAddI || Defs[V]->Op == MOpcode::MSubI))
      return PhiDefined.count(Defs[V]->A) || PhiDefined.count(Defs[V]->B);
    return false;
  };

  std::set<std::pair<ValueId, ValueId>> Seen;
  std::set<ValueId> NonNull;
  std::function<void(uint32_t)> Walk = [&](uint32_t Block) {
    std::vector<std::pair<ValueId, ValueId>> Inserted;
    std::vector<ValueId> InsertedNull;
    for (LInsn &I : Fn.Blocks[Block].Insns) {
      // Null checks dominated by an identical check (or an allocation) are
      // redundant; SSA values never change, so dominance is sufficient.
      if (I.Op == MOpcode::MCheckNull) {
        if (NonNull.count(I.A)) {
          toNop(I);
          Changed = true;
        } else {
          NonNull.insert(I.A);
          InsertedNull.push_back(I.A);
        }
        continue;
      }
      if ((I.Op == MOpcode::MNewInstance || I.Op == MOpcode::MNewArray) &&
          I.Dst != NoValue && !NonNull.count(I.Dst)) {
        NonNull.insert(I.Dst);
        InsertedNull.push_back(I.Dst);
        continue;
      }
      if (I.Op != MOpcode::MCheckBounds)
        continue;
      std::pair<ValueId, ValueId> K{I.A, I.B};
      if (Seen.count(K)) {
        toNop(I);
        Changed = true;
        continue;
      }
      // Constant index against a constant-length fresh array.
      auto IdxC = IConsts.find(I.B);
      if (IdxC != IConsts.end() && I.A < Defs.size() && Defs[I.A] &&
          Defs[I.A]->Op == MOpcode::MNewArray) {
        auto LenC = IConsts.find(Defs[I.A]->A);
        if (LenC != IConsts.end() && IdxC->second >= 0 &&
            IdxC->second < LenC->second) {
          toNop(I);
          Changed = true;
          continue;
        }
      }
      // Counted-loop induction range (sound; see findInductionRanges).
      if (ProvablyInRange(Block, I.A, I.B)) {
        toNop(I);
        Changed = true;
        continue;
      }
      if (Aggressive && LooksInductive(I.B)) {
        toNop(I);
        Changed = true;
        continue;
      }
      Seen.insert(K);
      Inserted.push_back(K);
    }
    for (uint32_t Child : DT.children(Block))
      Walk(Child);
    for (const auto &K : Inserted)
      Seen.erase(K);
    for (ValueId V : InsertedNull)
      NonNull.erase(V);
  };
  Walk(0);
  return Changed;
}

// --- Sink ------------------------------------------------------------------------------

bool lir::sinkCode(LFunction &Fn) {
  bool Changed = false;
  std::vector<uint32_t> DefBlock = computeDefBlocks(Fn);

  // Use blocks per value (NoValue-safe).
  std::vector<std::set<uint32_t>> UseBlocks(Fn.NumValues);
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    const LBlock &B = Fn.Blocks[Id];
    for (const LPhi &P : B.Phis)
      for (size_t N = 0; N != P.In.size(); ++N)
        if (P.In[N] != NoValue)
          UseBlocks[P.In[N]].insert(B.Preds[N]); // used on the edge
    for (const LInsn &I : B.Insns)
      forEachOperand(I, [&](ValueId V) { UseBlocks[V].insert(Id); });
    for (ValueId V : {B.Term.A, B.Term.B})
      if (V != NoValue)
        UseBlocks[V].insert(Id);
  }

  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &B = Fn.Blocks[Id];
    if (B.Term.K != LTerminator::Kind::Cond)
      continue;
    for (size_t Pos = B.Insns.size(); Pos-- > 0;) {
      LInsn &I = B.Insns[Pos];
      if (!vm::isPureOp(I.Op) || I.Dst == NoValue)
        continue;
      const std::set<uint32_t> &UB = UseBlocks[I.Dst];
      if (UB.size() != 1)
        continue;
      uint32_t Target = *UB.begin();
      if (Target == Id)
        continue;
      const LBlock &TB = Fn.Blocks[Target];
      bool IsSoleSucc = (B.Term.Taken == Target) != (B.Term.Fall == Target);
      if (!IsSoleSucc || TB.Preds.size() != 1 || TB.Preds[0] != Id)
        continue;
      // Operand defined later in this block? Sinking the def is fine: the
      // operands were defined before it already.
      Fn.Blocks[Target].Insns.insert(Fn.Blocks[Target].Insns.begin(), I);
      B.Insns.erase(B.Insns.begin() + Pos);
      Changed = true;
    }
  }
  return Changed;
}

// --- Driver --------------------------------------------------------------------------

bool lir::applyPass(LFunction &Fn, const PassInstance &Pass,
                    const PassContext &Ctx) {
  switch (Pass.Id) {
  case PassId::SimplifyCfg:
    return simplifyCfg(Fn);
  case PassId::ConstProp:
    return constProp(Fn);
  case PassId::InstCombine:
    return instCombine(Fn);
  case PassId::Gvn:
    return gvn(Fn);
  case PassId::Dce:
    return dce(Fn, Pass.Aggressive);
  case PassId::Licm:
    return licm(Fn, Pass.Aggressive);
  case PassId::Reassociate:
    return reassociate(Fn, Pass.Aggressive);
  case PassId::LoopRotate:
    return loopRotate(Fn);
  case PassId::LoopUnroll:
    return loopUnroll(Fn, Pass.IntParam, Pass.Aggressive);
  case PassId::LoopPeel:
    return loopPeel(Fn, Pass.IntParam);
  case PassId::GcElide:
    return gcElide(Fn, Pass.Aggressive);
  case PassId::JniIntrinsics:
    assert(Ctx.File && "jni-intrinsics needs the dex file");
    return jniIntrinsics(Fn, *Ctx.File);
  case PassId::Devirtualize:
    if (!Ctx.Profile || !Ctx.File)
      return false;
    return devirtualize(Fn, *Ctx.File, *Ctx.Profile, Pass.IntParam);
  case PassId::Inline:
    assert(Ctx.File && "inline needs the dex file");
    return inlineCalls(Fn, *Ctx.File, Pass.IntParam);
  case PassId::JumpThreading:
    return jumpThreading(Fn, Pass.Aggressive);
  case PassId::BoundsCheckElim:
    return boundsCheckElim(Fn, Pass.Aggressive);
  case PassId::Sink:
    return sinkCode(Fn);
  case PassId::PassIdCount:
    break;
  }
  return false;
}

bool lir::runPipeline(LFunction &Fn,
                      const std::vector<PassInstance> &Pipeline,
                      const PassContext &Ctx, size_t SizeBudget) {
  for (const PassInstance &Pass : Pipeline) {
    applyPass(Fn, Pass, Ctx);
    if (Fn.instructionCount() > SizeBudget)
      return false;
  }
  return true;
}
