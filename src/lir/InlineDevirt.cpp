//===- lir/InlineDevirt.cpp - Inlining and speculative devirtualization -----===//
//
// Inlining splices a callee's SSA body into the caller; speculative
// devirtualization (Section 3.4) turns profile-monomorphic virtual calls
// into a class guard plus a direct call, with the original dispatch on the
// slow path. The two compose: devirtualized direct calls become inline
// candidates, which is how the paper's backend "aggressively inlines"
// virtual call sites.
//
//===----------------------------------------------------------------------===//

#include "hgraph/Build.h"
#include "lir/Analysis.h"
#include "lir/FromHGraph.h"
#include "lir/Passes.h"

#include <cassert>

using namespace ropt;
using namespace ropt::lir;
using vm::MOpcode;

namespace {

/// Remaps every value in \p Fn-appended callee blocks through \p ValueMap.
ValueId mapped(const std::vector<ValueId> &ValueMap, ValueId V) {
  return V == NoValue ? NoValue : ValueMap[V];
}

/// Splices \p Callee into \p Fn, replacing the call at \p Block/\p InsnIdx.
/// Returns false (without mutating) when the callee shape is unsupported.
bool spliceCallee(LFunction &Fn, uint32_t Block, size_t InsnIdx,
                  const LFunction &Callee) {
  const LInsn Call = Fn.Blocks[Block].Insns[InsnIdx];
  assert(Call.Op == MOpcode::MCallStatic && "can only inline direct calls");

  // Collect the callee's return blocks first; a never-returning callee
  // whose result is used cannot be expressed after splicing.
  std::vector<uint32_t> RetBlocks;
  for (uint32_t Id = 0; Id != Callee.Blocks.size(); ++Id) {
    LTerminator::Kind K = Callee.Blocks[Id].Term.K;
    if (K == LTerminator::Kind::Ret || K == LTerminator::Kind::RetVoid)
      RetBlocks.push_back(Id);
  }
  if (RetBlocks.empty())
    return false;

  uint32_t BlockOffset = static_cast<uint32_t>(Fn.Blocks.size());

  // Value remapping: parameters take the call arguments.
  std::vector<ValueId> ValueMap(Callee.NumValues, NoValue);
  assert(Call.Args.size() == Callee.ParamCount && "call arity mismatch");
  for (uint32_t P = 0; P != Callee.ParamCount; ++P)
    ValueMap[P] = Call.Args[P];
  for (ValueId V = Callee.ParamCount; V != Callee.NumValues; ++V)
    ValueMap[V] = Fn.newValue();

  // Copy callee blocks, remapped.
  for (const LBlock &CB : Callee.Blocks) {
    LBlock NB;
    for (const LPhi &P : CB.Phis) {
      LPhi NP;
      NP.Dst = mapped(ValueMap, P.Dst);
      for (ValueId In : P.In)
        NP.In.push_back(mapped(ValueMap, In));
      NB.Phis.push_back(std::move(NP));
    }
    for (LInsn I : CB.Insns) {
      I.Dst = mapped(ValueMap, I.Dst);
      forEachOperand(I, [&ValueMap](ValueId &V) { V = ValueMap[V]; });
      NB.Insns.push_back(std::move(I));
    }
    NB.Term = CB.Term;
    NB.Term.A = mapped(ValueMap, NB.Term.A);
    NB.Term.B = mapped(ValueMap, NB.Term.B);
    NB.Term.Taken += BlockOffset;
    NB.Term.Fall += BlockOffset;
    NB.Preds = CB.Preds;
    for (uint32_t &Pred : NB.Preds)
      Pred += BlockOffset;
    Fn.Blocks.push_back(std::move(NB));
  }

  // Continuation block Y: everything after the call.
  uint32_t Y = static_cast<uint32_t>(Fn.Blocks.size());
  Fn.Blocks.emplace_back();
  {
    LBlock &XB = Fn.Blocks[Block];
    LBlock &YB = Fn.Blocks[Y];
    YB.Insns.assign(XB.Insns.begin() + InsnIdx + 1, XB.Insns.end());
    YB.Term = XB.Term;
    XB.Insns.resize(InsnIdx);
    XB.Term = LTerminator();
    XB.Term.K = LTerminator::Kind::Goto;
    XB.Term.Taken = BlockOffset; // callee entry
  }
  // Successors of the old terminator now see Y as their predecessor.
  for (uint32_t Succ : Fn.Blocks[Y].Term.successors())
    for (uint32_t &Pred : Fn.Blocks[Succ].Preds)
      if (Pred == Block)
        Pred = Y;

  Fn.Blocks[BlockOffset].Preds = {Block};

  // Return blocks feed the continuation.
  std::vector<ValueId> RetValues;
  for (uint32_t Ret : RetBlocks) {
    LBlock &RB = Fn.Blocks[BlockOffset + Ret];
    if (RB.Term.K == LTerminator::Kind::Ret)
      RetValues.push_back(RB.Term.A);
    else
      RetValues.push_back(NoValue);
    RB.Term = LTerminator();
    RB.Term.K = LTerminator::Kind::Goto;
    RB.Term.Taken = Y;
    Fn.Blocks[Y].Preds.push_back(BlockOffset + Ret);
  }

  // The call result becomes a phi over the returned values.
  if (Call.Dst != NoValue) {
    LPhi P;
    P.Dst = Call.Dst;
    P.In = RetValues;
    Fn.Blocks[Y].Phis.push_back(std::move(P));
  }
  return true;
}

} // namespace

bool lir::inlineCalls(LFunction &Fn, const dex::DexFile &File,
                      int Threshold) {
  bool Changed = false;
  int InlinesLeft = 40; // hard cap against pathological growth

  bool FoundOne = true;
  while (FoundOne && InlinesLeft > 0) {
    FoundOne = false;
    for (uint32_t Id = 0; Id != Fn.Blocks.size() && !FoundOne; ++Id) {
      LBlock &B = Fn.Blocks[Id];
      for (size_t Pos = 0; Pos != B.Insns.size(); ++Pos) {
        const LInsn &I = B.Insns[Pos];
        if (I.Op != MOpcode::MCallStatic)
          continue;
        const dex::Method &Callee = File.method(I.Idx);
        if (Callee.IsNative || Callee.isUncompilable() ||
            Callee.Id == Fn.Method)
          continue;
        LFunction CalleeFn = fromHGraph(hgraph::buildHGraph(File, I.Idx));
        if (CalleeFn.instructionCount() > static_cast<size_t>(Threshold))
          continue;
        if (!spliceCallee(Fn, Id, Pos, CalleeFn))
          continue;
        Changed = true;
        FoundOne = true;
        --InlinesLeft;
        break;
      }
    }
  }
  if (Changed)
    simplifyCfg(Fn);
  return Changed;
}

bool lir::devirtualize(LFunction &Fn, const dex::DexFile &File,
                       const TypeProfile &Profile, int MinPercent) {
  bool Changed = false;
  double MinFraction = static_cast<double>(MinPercent) / 100.0;

  size_t OriginalBlocks = Fn.Blocks.size();
  for (uint32_t Id = 0; Id != OriginalBlocks; ++Id) {
    for (size_t Pos = 0; Pos != Fn.Blocks[Id].Insns.size(); ++Pos) {
      const LInsn Call = Fn.Blocks[Id].Insns[Pos];
      if (Call.Op != MOpcode::MCallVirtual ||
          Call.SiteMethod == dex::InvalidId)
        continue;
      dex::ClassId Speculated = dex::InvalidId;
      if (!Profile.dominantType(Call.SiteMethod, Call.Site, MinFraction,
                                Speculated))
        continue;
      dex::MethodId Target = File.resolveVirtual(Speculated, Call.Idx);

      // Build the diamond: X ends in a class guard; F holds the direct
      // call, S the original dispatch, M merges and continues.
      uint32_t F = static_cast<uint32_t>(Fn.Blocks.size());
      Fn.Blocks.emplace_back();
      uint32_t S = static_cast<uint32_t>(Fn.Blocks.size());
      Fn.Blocks.emplace_back();
      uint32_t M = static_cast<uint32_t>(Fn.Blocks.size());
      Fn.Blocks.emplace_back();

      bool HasResult = Call.Dst != NoValue;
      ValueId FastVal = HasResult ? Fn.newValue() : NoValue;
      ValueId SlowVal = HasResult ? Fn.newValue() : NoValue;

      {
        LInsn Fast = Call;
        Fast.Op = MOpcode::MCallStatic;
        Fast.Idx = Target;
        Fast.Dst = FastVal;
        LBlock &FB = Fn.Blocks[F];
        FB.Insns.push_back(std::move(Fast));
        FB.Term.K = LTerminator::Kind::Goto;
        FB.Term.Taken = M;
        FB.Preds = {Id};
      }
      {
        LInsn Slow = Call;
        Slow.Dst = SlowVal;
        LBlock &SB = Fn.Blocks[S];
        SB.Insns.push_back(std::move(Slow));
        SB.Term.K = LTerminator::Kind::Goto;
        SB.Term.Taken = M;
        SB.Preds = {Id};
      }
      {
        LBlock &XB = Fn.Blocks[Id];
        LBlock &MB = Fn.Blocks[M];
        MB.Insns.assign(XB.Insns.begin() + Pos + 1, XB.Insns.end());
        MB.Term = XB.Term;
        MB.Preds = {F, S};
        if (HasResult) {
          LPhi P;
          P.Dst = Call.Dst;
          P.In = {FastVal, SlowVal};
          MB.Phis.push_back(std::move(P));
        }
        XB.Insns.resize(Pos);
        XB.Term = LTerminator();
        XB.Term.K = LTerminator::Kind::Guard;
        XB.Term.A = Call.Args.at(0);
        XB.Term.GuardClass = Speculated;
        XB.Term.Taken = S; // guard failure -> slow path
        XB.Term.Fall = F;
      }
      for (uint32_t Succ : Fn.Blocks[M].Term.successors())
        for (uint32_t &Pred : Fn.Blocks[Succ].Preds)
          if (Pred == Id)
            Pred = M;

      Changed = true;
      break; // remaining insns of this block moved to M
    }
  }
  return Changed;
}
