//===- lir/Backend.cpp - The LLVM-like compiler driver ----------------------===//

#include "lir/Backend.h"

#include "hgraph/Build.h"
#include "lir/Codegen.h"
#include "lir/FromHGraph.h"

using namespace ropt;
using namespace ropt::lir;

const char *lir::compileStatusName(CompileStatus Status) {
  switch (Status) {
  case CompileStatus::Ok: return "ok";
  case CompileStatus::VerifierError: return "verifier-error";
  case CompileStatus::SizeBudget: return "size-budget";
  case CompileStatus::Unsupported: return "unsupported";
  }
  return "unknown";
}

CompileResult lir::compileMethodLlvm(const dex::DexFile &File,
                                     dex::MethodId Method,
                                     const CompileOptions &Options,
                                     const TypeProfile *Profile) {
  CompileResult Result;
  const dex::Method &M = File.method(Method);
  if (M.IsNative || M.isUncompilable()) {
    Result.Status = CompileStatus::Unsupported;
    return Result;
  }

  hgraph::HGraph G = hgraph::buildHGraph(File, Method);
  LFunction Fn = fromHGraph(G, Options.Translate);

  PassContext Ctx;
  Ctx.File = &File;
  Ctx.Profile = Profile;
  if (!runPipeline(Fn, Options.Pipeline, Ctx, Options.SizeBudget)) {
    Result.Status = CompileStatus::SizeBudget;
    return Result;
  }

  std::string Error;
  if (!Fn.verify(Error)) {
    Result.Status = CompileStatus::VerifierError;
    Result.Error = Error;
    return Result;
  }

  Result.Fn = emitMachine(std::move(Fn), Options.RegAlloc);
  Result.Status = CompileStatus::Ok;
  return Result;
}

CompileStatus lir::compileAllLlvm(const dex::DexFile &File,
                                  const std::vector<dex::MethodId> &Methods,
                                  const CompileOptions &Options,
                                  vm::CodeCache &Cache,
                                  const TypeProfile *Profile) {
  CompileStatus Status = CompileStatus::Ok;
  for (dex::MethodId Id : Methods) {
    CompileResult Result = compileMethodLlvm(File, Id, Options, Profile);
    if (Result.ok()) {
      Cache.install(Result.Fn);
      continue;
    }
    if (Result.Status != CompileStatus::Unsupported &&
        Status == CompileStatus::Ok)
      Status = Result.Status;
  }
  return Status;
}

namespace {

PassInstance pass(PassId Id, int IntParam = 0, bool Aggressive = false) {
  PassInstance P;
  P.Id = Id;
  P.IntParam = IntParam;
  P.Aggressive = Aggressive;
  return P;
}

} // namespace

std::vector<PassInstance> lir::o0Pipeline() { return {}; }

std::vector<PassInstance> lir::o1Pipeline() {
  return {
      pass(PassId::SimplifyCfg), pass(PassId::ConstProp),
      pass(PassId::InstCombine), pass(PassId::Gvn),
      pass(PassId::Dce),         pass(PassId::SimplifyCfg),
  };
}

std::vector<PassInstance> lir::o2Pipeline() {
  std::vector<PassInstance> P = o1Pipeline();
  std::vector<PassInstance> More = {
      pass(PassId::Inline, 40),
      pass(PassId::SimplifyCfg),
      pass(PassId::ConstProp),
      pass(PassId::InstCombine),
      pass(PassId::JniIntrinsics),
      pass(PassId::Licm),
      pass(PassId::Gvn),
      pass(PassId::BoundsCheckElim),
      pass(PassId::Dce),
      pass(PassId::SimplifyCfg),
  };
  P.insert(P.end(), More.begin(), More.end());
  return P;
}

std::vector<PassInstance> lir::o3Pipeline() {
  std::vector<PassInstance> P = o2Pipeline();
  std::vector<PassInstance> More = {
      pass(PassId::Inline, 120),
      pass(PassId::LoopRotate),
      pass(PassId::Licm),
      pass(PassId::Reassociate),
      pass(PassId::Sink),
      pass(PassId::Gvn),
      pass(PassId::InstCombine),
      pass(PassId::BoundsCheckElim),
      pass(PassId::Dce),
      pass(PassId::SimplifyCfg),
  };
  P.insert(P.end(), More.begin(), More.end());
  return P;
}
