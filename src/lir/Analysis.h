//===- lir/Analysis.h - Dominators and loop analysis ------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy), dominance frontiers, and natural
/// loop detection over LFunction CFGs. These power SSA construction, GVN
/// scoping, LICM, and the loop-restructuring passes.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_ANALYSIS_H
#define ROPT_LIR_ANALYSIS_H

#include "lir/Lir.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

namespace ropt {
namespace lir {

/// Immediate-dominator tree over the reachable blocks of a function.
class DomTree {
public:
  static DomTree compute(const LFunction &Fn);

  /// Immediate dominator of \p Block; the entry's idom is itself.
  /// Unreachable blocks report the entry.
  uint32_t idom(uint32_t Block) const { return IDom[Block]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  /// Children in the dominator tree.
  const std::vector<uint32_t> &children(uint32_t Block) const {
    return Children[Block];
  }

  /// Dominator-tree preorder over reachable blocks.
  std::vector<uint32_t> preorder() const;

  /// Dominance frontier of every block.
  std::vector<std::set<uint32_t>>
  dominanceFrontiers(const LFunction &Fn) const;

  bool isReachable(uint32_t Block) const { return Reachable[Block]; }

private:
  std::vector<uint32_t> IDom;
  std::vector<std::vector<uint32_t>> Children;
  std::vector<uint32_t> DfsNumber; ///< Preorder number for dominates().
  std::vector<uint32_t> DfsLast;   ///< Max preorder number in subtree.
  std::vector<bool> Reachable;
};

/// One natural loop.
struct Loop {
  uint32_t Header = 0;
  std::vector<uint32_t> Latches; ///< Blocks with a back edge to Header.
  std::set<uint32_t> Blocks;     ///< Includes Header.
  std::vector<uint32_t> Exits;   ///< Blocks outside reached from inside.

  bool contains(uint32_t Block) const { return Blocks.count(Block) != 0; }
};

/// All natural loops (one per header; back edges to the same header merge).
class LoopInfo {
public:
  static LoopInfo compute(const LFunction &Fn, const DomTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

private:
  std::vector<Loop> Loops;
};

/// Maps every value to its defining block (params -> entry). NoValue-sized
/// entries are ~0u for never-defined ids.
std::vector<uint32_t> computeDefBlocks(const LFunction &Fn);

/// Counts uses of every value across instructions, phis, and terminators.
std::vector<uint32_t> countUses(const LFunction &Fn);

/// Invokes \p Fn over every value operand (mutable) of an instruction.
void forEachOperand(LInsn &I, const std::function<void(ValueId &)> &Fn);
void forEachOperand(const LInsn &I,
                    const std::function<void(ValueId)> &Fn);

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_ANALYSIS_H
