//===- lir/Analysis.cpp - Dominators and loop analysis ---------------------===//

#include "lir/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::lir;
using vm::MOpcode;

void lir::forEachOperand(LInsn &I,
                         const std::function<void(ValueId &)> &Fn) {
  auto Visit = [&Fn](ValueId &V) {
    if (V != NoValue)
      Fn(V);
  };
  switch (I.Op) {
  case MOpcode::MMovImmI:
  case MOpcode::MMovImmF:
  case MOpcode::MLoadStatic:
  case MOpcode::MNewInstance:
  case MOpcode::MSafepoint:
  case MOpcode::MNop:
    break;
  default:
    Visit(I.A);
    Visit(I.B);
    break;
  }
  for (ValueId &V : I.Args)
    Fn(V);
}

void lir::forEachOperand(const LInsn &I,
                         const std::function<void(ValueId)> &Fn) {
  LInsn Copy = I;
  forEachOperand(Copy, [&Fn](ValueId &V) { Fn(V); });
}

DomTree DomTree::compute(const LFunction &Fn) {
  DomTree DT;
  size_t N = Fn.Blocks.size();
  DT.IDom.assign(N, 0);
  DT.Reachable.assign(N, false);

  std::vector<uint32_t> Rpo = Fn.reversePostOrder();
  std::vector<uint32_t> RpoIndex(N, ~0u);
  for (uint32_t Pos = 0; Pos != Rpo.size(); ++Pos) {
    RpoIndex[Rpo[Pos]] = Pos;
    DT.Reachable[Rpo[Pos]] = true;
  }

  // Cooper-Harvey-Kennedy iteration.
  std::vector<uint32_t> Idom(N, ~0u);
  Idom[0] = 0;
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : Rpo) {
      if (Block == 0)
        continue;
      uint32_t NewIdom = ~0u;
      for (uint32_t Pred : Fn.Blocks[Block].Preds) {
        if (!DT.Reachable[Pred] || Idom[Pred] == ~0u)
          continue;
        NewIdom = NewIdom == ~0u ? Pred : Intersect(Pred, NewIdom);
      }
      assert(NewIdom != ~0u && "reachable block with no processed pred");
      if (Idom[Block] != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }

  for (size_t Block = 0; Block != N; ++Block)
    DT.IDom[Block] = DT.Reachable[Block] ? Idom[Block] : 0;

  // Children + preorder intervals for O(1) dominance queries.
  DT.Children.assign(N, {});
  for (uint32_t Block : Rpo)
    if (Block != 0)
      DT.Children[DT.IDom[Block]].push_back(Block);

  DT.DfsNumber.assign(N, 0);
  DT.DfsLast.assign(N, 0);
  uint32_t Counter = 0;
  std::vector<std::pair<uint32_t, size_t>> Stack{{0u, size_t(0)}};
  DT.DfsNumber[0] = Counter++;
  while (!Stack.empty()) {
    auto &[Block, NextChild] = Stack.back();
    if (NextChild < DT.Children[Block].size()) {
      uint32_t Child = DT.Children[Block][NextChild++];
      DT.DfsNumber[Child] = Counter++;
      Stack.emplace_back(Child, 0);
      continue;
    }
    DT.DfsLast[Block] = Counter - 1;
    Stack.pop_back();
  }
  return DT;
}

bool DomTree::dominates(uint32_t A, uint32_t B) const {
  if (!Reachable[A] || !Reachable[B])
    return false;
  return DfsNumber[A] <= DfsNumber[B] && DfsNumber[B] <= DfsLast[A];
}

std::vector<uint32_t> DomTree::preorder() const {
  std::vector<uint32_t> Order;
  Order.reserve(IDom.size());
  std::vector<uint32_t> Stack{0};
  while (!Stack.empty()) {
    uint32_t Block = Stack.back();
    Stack.pop_back();
    Order.push_back(Block);
    // Push in reverse so children come out in natural order.
    const std::vector<uint32_t> &Kids = Children[Block];
    for (size_t N = Kids.size(); N-- > 0;)
      Stack.push_back(Kids[N]);
  }
  return Order;
}

std::vector<std::set<uint32_t>>
DomTree::dominanceFrontiers(const LFunction &Fn) const {
  std::vector<std::set<uint32_t>> DF(Fn.Blocks.size());
  for (uint32_t Block = 0; Block != Fn.Blocks.size(); ++Block) {
    if (!Reachable[Block] || Fn.Blocks[Block].Preds.size() < 2)
      continue;
    for (uint32_t Pred : Fn.Blocks[Block].Preds) {
      if (!Reachable[Pred])
        continue;
      uint32_t Runner = Pred;
      while (Runner != IDom[Block]) {
        DF[Runner].insert(Block);
        Runner = IDom[Runner];
      }
    }
  }
  return DF;
}

LoopInfo LoopInfo::compute(const LFunction &Fn, const DomTree &DT) {
  LoopInfo LI;
  std::map<uint32_t, Loop> ByHeader;
  for (uint32_t Block = 0; Block != Fn.Blocks.size(); ++Block) {
    if (!DT.isReachable(Block))
      continue;
    for (uint32_t Succ : Fn.Blocks[Block].Term.successors()) {
      if (!DT.dominates(Succ, Block))
        continue;
      // Back edge Block -> Succ.
      Loop &L = ByHeader[Succ];
      L.Header = Succ;
      L.Latches.push_back(Block);
      // Flood backwards from the latch to collect the body.
      L.Blocks.insert(Succ);
      std::vector<uint32_t> Work{Block};
      while (!Work.empty()) {
        uint32_t Cur = Work.back();
        Work.pop_back();
        if (!L.Blocks.insert(Cur).second)
          continue;
        for (uint32_t Pred : Fn.Blocks[Cur].Preds)
          if (DT.isReachable(Pred))
            Work.push_back(Pred);
      }
    }
  }
  for (auto &KV : ByHeader) {
    Loop &L = KV.second;
    std::set<uint32_t> Exits;
    for (uint32_t Block : L.Blocks)
      for (uint32_t Succ : Fn.Blocks[Block].Term.successors())
        if (!L.contains(Succ))
          Exits.insert(Succ);
    L.Exits.assign(Exits.begin(), Exits.end());
    LI.Loops.push_back(std::move(L));
  }
  return LI;
}

std::vector<uint32_t> lir::computeDefBlocks(const LFunction &Fn) {
  std::vector<uint32_t> DefBlock(Fn.NumValues, ~0u);
  for (uint32_t P = 0; P != Fn.ParamCount; ++P)
    DefBlock[P] = 0;
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    for (const LPhi &P : Fn.Blocks[Id].Phis)
      DefBlock[P.Dst] = Id;
    for (const LInsn &I : Fn.Blocks[Id].Insns)
      if (I.Dst != NoValue)
        DefBlock[I.Dst] = Id;
  }
  return DefBlock;
}

std::vector<uint32_t> lir::countUses(const LFunction &Fn) {
  std::vector<uint32_t> Uses(Fn.NumValues, 0);
  auto Count = [&Uses](ValueId V) {
    if (V != NoValue)
      ++Uses[V];
  };
  for (const LBlock &B : Fn.Blocks) {
    for (const LPhi &P : B.Phis)
      for (ValueId V : P.In)
        Count(V);
    for (const LInsn &I : B.Insns)
      forEachOperand(I, Count);
    Count(B.Term.A);
    Count(B.Term.B);
  }
  return Uses;
}
