//===- lir/TypeProfile.h - Virtual call-site type profiles ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-call-site receiver-class histograms, recorded by the interpreted
/// replay (Section 3.4) and consumed by the speculative devirtualization
/// pass. "What is novel is the information that drives the pass."
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_TYPE_PROFILE_H
#define ROPT_LIR_TYPE_PROFILE_H

#include "dex/DexFile.h"

#include <cstdint>
#include <map>

namespace ropt {
namespace lir {

/// Identifies one invoke-virtual bytecode: (method, pc).
struct CallSiteKey {
  dex::MethodId Method = dex::InvalidId;
  uint32_t Site = 0;

  bool operator<(const CallSiteKey &O) const {
    if (Method != O.Method)
      return Method < O.Method;
    return Site < O.Site;
  }
};

/// Receiver-class frequency histograms per call site.
class TypeProfile {
public:
  void record(dex::MethodId Method, uint32_t Site, dex::ClassId Receiver) {
    ++Sites[CallSiteKey{Method, Site}][Receiver];
  }

  /// Returns true and sets \p Out when one receiver class covers at least
  /// \p MinFraction of the dispatches observed at the site.
  bool dominantType(dex::MethodId Method, uint32_t Site,
                    double MinFraction, dex::ClassId &Out) const {
    auto It = Sites.find(CallSiteKey{Method, Site});
    if (It == Sites.end() || It->second.empty())
      return false;
    uint64_t Total = 0, Best = 0;
    dex::ClassId BestClass = dex::InvalidId;
    for (const auto &KV : It->second) {
      Total += KV.second;
      if (KV.second > Best) {
        Best = KV.second;
        BestClass = KV.first;
      }
    }
    if (static_cast<double>(Best) <
        MinFraction * static_cast<double>(Total))
      return false;
    Out = BestClass;
    return true;
  }

  /// Accumulates another profile's histograms (multi-capture support).
  void merge(const TypeProfile &Other) {
    for (const auto &KV : Other.Sites)
      for (const auto &CC : KV.second)
        Sites[KV.first][CC.first] += CC.second;
  }

  size_t siteCount() const { return Sites.size(); }
  bool empty() const { return Sites.empty(); }

  const std::map<CallSiteKey, std::map<dex::ClassId, uint64_t>> &
  sites() const {
    return Sites;
  }

private:
  std::map<CallSiteKey, std::map<dex::ClassId, uint64_t>> Sites;
};

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_TYPE_PROFILE_H
