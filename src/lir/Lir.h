//===- lir/Lir.h - LLVM-like SSA intermediate representation ----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSA IR of the LLVM-like backend (the paper's "LLVM bitcode" stage,
/// Section 3.5). Produced from HGraph by the FromHGraph translation;
/// optimized by the pass pipeline the genetic search assembles; lowered to
/// vm::MachineFunction by the out-of-SSA code generator.
///
/// Values are dense ids. Every value has exactly one definition: a function
/// parameter, a block phi, or an instruction destination. Instruction
/// semantics reuse the vm::MOpcode vocabulary (only the non-control-flow
/// subset appears inside blocks; control flow lives in terminators).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_LIR_H
#define ROPT_LIR_LIR_H

#include "dex/DexFile.h"
#include "vm/Machine.h"

#include <string>
#include <vector>

namespace ropt {
namespace lir {

using ValueId = uint32_t;
constexpr ValueId NoValue = 0xffffffff;

/// One SSA instruction. Dst is NoValue for pure-effect instructions
/// (stores, checks, safepoints).
struct LInsn {
  vm::MOpcode Op = vm::MOpcode::MNop;
  ValueId Dst = NoValue;
  ValueId A = NoValue; ///< First operand (B-role in vm::MInsn).
  ValueId B = NoValue; ///< Second operand (C-role in vm::MInsn).
  int64_t ImmI = 0;
  double ImmF = 0.0;
  uint32_t Idx = 0;          ///< class/field-slot/static/method/native id.
  uint32_t Site = 0xffffffff; ///< Bytecode pc provenance (profiling key).
  /// Method the Site pc belongs to; survives inlining so profile lookups
  /// stay valid (profiles are recorded against the original bytecode).
  dex::MethodId SiteMethod = dex::InvalidId;
  std::vector<ValueId> Args; ///< Call/intrinsic arguments.
};

/// A phi node. Inputs are parallel to the owning block's Preds list.
struct LPhi {
  ValueId Dst = NoValue;
  std::vector<ValueId> In;
};

/// Block terminator; successor ids are block ids.
struct LTerminator {
  enum class Kind { Goto, Cond, Guard, Ret, RetVoid };
  Kind K = Kind::RetVoid;
  vm::MOpcode CondOp = vm::MOpcode::MNop;
  ValueId A = NoValue; ///< Condition lhs / returned value / guarded ref.
  ValueId B = NoValue; ///< Condition rhs (NoValue for the *z forms).
  vm::BranchHint Hint = vm::BranchHint::None;
  uint32_t Taken = 0;
  uint32_t Fall = 0;
  uint32_t GuardClass = 0;

  std::vector<uint32_t> successors() const;
};

struct LBlock {
  std::vector<LPhi> Phis;
  std::vector<LInsn> Insns;
  LTerminator Term;
  std::vector<uint32_t> Preds; ///< Maintained by LFunction::computePreds().
};

/// A function in SSA form. Values [0, ParamCount) are the parameters.
class LFunction {
public:
  dex::MethodId Method = dex::InvalidId;
  std::string Name;
  uint16_t ParamCount = 0;
  bool ReturnsValue = false;
  uint32_t NumValues = 0;
  std::vector<LBlock> Blocks; ///< Block 0 is the entry.

  ValueId newValue() { return NumValues++; }

  /// Recomputes predecessor lists in deterministic (block id, successor
  /// position) order. Callers that mutate the CFG must realign phi inputs
  /// with the fresh order — see remapPhisForPredChange().
  void computePreds();

  /// Reverse post order over reachable blocks.
  std::vector<uint32_t> reversePostOrder() const;

  /// Total non-phi instruction count.
  size_t instructionCount() const;

  /// Full SSA verification: single assignment, phi arity matches preds,
  /// operands defined, defs dominate uses (via a fresh dominator tree),
  /// successors in range. Returns false and fills \p Error on violation —
  /// this is the "compiler crash" detector for unsound pass interactions.
  bool verify(std::string &Error) const;

  /// Renders a debug listing.
  std::string dump() const;
};

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_LIR_H
