//===- lir/Backend.h - The LLVM-like compiler driver ------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end compilation through the LLVM-like backend: bytecode ->
/// HGraph -> SSA -> pass pipeline -> verification -> machine code. The
/// verifier and the size budget turn unsound or explosive pipelines into
/// *compiler errors/timeouts* rather than silent garbage — the offline
/// search discards those outright (Figure 1's manageable 15%).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_BACKEND_H
#define ROPT_LIR_BACKEND_H

#include "hgraph/Codegen.h"
#include "lir/FromHGraph.h"
#include "lir/Passes.h"

#include <memory>

namespace ropt {
namespace lir {

/// Compilation outcome classes.
enum class CompileStatus {
  Ok,
  VerifierError, ///< A pass pipeline produced invalid IR ("compiler crash").
  SizeBudget,    ///< Code growth exploded ("compiler timeout").
  Unsupported,   ///< Native or Android-uncompilable method.
};

const char *compileStatusName(CompileStatus Status);

/// Everything that configures one compilation.
struct CompileOptions {
  std::vector<PassInstance> Pipeline;
  hgraph::RegAllocKind RegAlloc = hgraph::RegAllocKind::LinearScan;
  TranslateOptions Translate;
  size_t SizeBudget = 50000;
};

/// Result of one compilation.
struct CompileResult {
  CompileStatus Status = CompileStatus::Unsupported;
  std::shared_ptr<vm::MachineFunction> Fn;
  std::string Error; ///< Verifier message when Status == VerifierError.

  bool ok() const { return Status == CompileStatus::Ok; }
};

/// Compiles \p Method through the backend.
CompileResult compileMethodLlvm(const dex::DexFile &File,
                                dex::MethodId Method,
                                const CompileOptions &Options,
                                const TypeProfile *Profile = nullptr);

/// Compiles every method of \p Methods into \p Cache; methods that fail
/// keep their previous tier (interpreter or whatever was installed).
/// Returns the first non-Ok status encountered (Ok if all succeeded).
CompileStatus compileAllLlvm(const dex::DexFile &File,
                             const std::vector<dex::MethodId> &Methods,
                             const CompileOptions &Options,
                             vm::CodeCache &Cache,
                             const TypeProfile *Profile = nullptr);

/// Stock preset pipelines (the "-O0/-O1/-O2/-O3" baselines). Note that the
/// presets deliberately exclude the backend's custom passes (gc-elide) —
/// they model *stock LLVM* heuristics, which is why -O3 can lose to the
/// Android compiler on safepoint-heavy loops (Section 5.1).
std::vector<PassInstance> o0Pipeline();
std::vector<PassInstance> o1Pipeline();
std::vector<PassInstance> o2Pipeline();
std::vector<PassInstance> o3Pipeline();

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_BACKEND_H
