//===- lir/FromHGraph.h - HGraph to SSA translation -------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's HGraph-to-LLVM-bitcode translation pass (Section 3.5): SSA
/// construction over the register-based HGraph via iterated dominance
/// frontiers and Cytron renaming.
///
/// Faithful to the paper, the translation "is not as efficient as it can
/// be": it conservatively re-materializes runtime boundaries, duplicating
/// GC safepoints and copying call arguments. Stock pass pipelines clean up
/// the copies but not the safepoints — only the backend's custom GC-check
/// elision pass (Section 3.5) removes those, which is exactly why plain
/// -O3 can lose to the Android compiler on poll-heavy loops while the
/// genetic search (unroll + gc-elide) wins.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_FROM_HGRAPH_H
#define ROPT_LIR_FROM_HGRAPH_H

#include "hgraph/Hir.h"
#include "lir/Lir.h"

namespace ropt {
namespace lir {

/// Translation knobs (defaults replicate the paper's backend).
struct TranslateOptions {
  /// Duplicate safepoints and copy call arguments at runtime boundaries.
  bool ConservativeBoundaries = true;
};

/// Translates \p G into SSA form.
LFunction fromHGraph(const hgraph::HGraph &G,
                     const TranslateOptions &Options = TranslateOptions());

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_FROM_HGRAPH_H
