//===- lir/Lir.cpp - LLVM-like SSA intermediate representation -------------===//

#include "lir/Lir.h"

#include "lir/Analysis.h"
#include "support/Format.h"

#include <cassert>

using namespace ropt;
using namespace ropt::lir;

std::vector<uint32_t> LTerminator::successors() const {
  switch (K) {
  case Kind::Goto:
    return {Taken};
  case Kind::Cond:
  case Kind::Guard:
    return {Taken, Fall};
  case Kind::Ret:
  case Kind::RetVoid:
    return {};
  }
  return {};
}

void LFunction::computePreds() {
  for (LBlock &B : Blocks)
    B.Preds.clear();
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id)
    for (uint32_t Succ : Blocks[Id].Term.successors())
      Blocks[Succ].Preds.push_back(Id);
}

std::vector<uint32_t> LFunction::reversePostOrder() const {
  std::vector<uint8_t> State(Blocks.size(), 0);
  std::vector<uint32_t> PostOrder;
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    std::vector<uint32_t> Succs = Blocks[Block].Term.successors();
    if (NextSucc < Succs.size()) {
      uint32_t S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[Block] = 2;
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  return std::vector<uint32_t>(PostOrder.rbegin(), PostOrder.rend());
}

size_t LFunction::instructionCount() const {
  size_t Count = 0;
  for (const LBlock &B : Blocks)
    Count += B.Insns.size();
  return Count;
}

bool LFunction::verify(std::string &Error) const {
  Error.clear();
  if (Blocks.empty()) {
    Error = "function has no blocks";
    return false;
  }

  // Successor range and phi arity.
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    const LBlock &B = Blocks[Id];
    for (uint32_t Succ : B.Term.successors())
      if (Succ >= Blocks.size()) {
        Error = format("block %u: successor %u out of range", Id, Succ);
        return false;
      }
    for (const LPhi &P : B.Phis)
      if (P.In.size() != B.Preds.size()) {
        Error = format("block %u: phi v%u has %zu inputs for %zu preds",
                       Id, P.Dst, P.In.size(), B.Preds.size());
        return false;
      }
  }

  // Single assignment; collect def block per value.
  std::vector<uint32_t> DefBlock(NumValues, ~0u);
  for (uint32_t P = 0; P != ParamCount; ++P)
    DefBlock[P] = 0;
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    const LBlock &B = Blocks[Id];
    auto Define = [&](ValueId V) -> bool {
      if (V >= NumValues) {
        Error = format("block %u: defines out-of-range value v%u", Id, V);
        return false;
      }
      if (DefBlock[V] != ~0u) {
        Error = format("block %u: value v%u defined twice", Id, V);
        return false;
      }
      DefBlock[V] = Id;
      return true;
    };
    for (const LPhi &P : B.Phis)
      if (!Define(P.Dst))
        return false;
    for (const LInsn &I : B.Insns)
      if (I.Dst != NoValue && !Define(I.Dst))
        return false;
  }

  DomTree DT = DomTree::compute(*this);

  // Uses: defined, and defs dominate uses. Phi uses must be defined in (or
  // dominate) the corresponding predecessor.
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    if (!DT.isReachable(Id))
      continue;
    const LBlock &B = Blocks[Id];
    auto CheckUse = [&](ValueId V) -> bool {
      if (V == NoValue)
        return true;
      if (V >= NumValues || DefBlock[V] == ~0u) {
        Error = format("block %u: use of undefined value v%u", Id, V);
        return false;
      }
      if (!DT.isReachable(DefBlock[V]) || !DT.dominates(DefBlock[V], Id)) {
        Error = format("block %u: use of v%u not dominated by its def "
                       "(block %u)",
                       Id, V, DefBlock[V]);
        return false;
      }
      return true;
    };

    // In-block ordering: a value defined later in the same block must not
    // be used earlier. Track what is already visible.
    std::vector<bool> SeenHere(1, false); // placeholder to avoid O(V) init
    (void)SeenHere;
    std::set<ValueId> Visible;
    if (Id == 0)
      for (uint32_t P = 0; P != ParamCount; ++P)
        Visible.insert(P);
    for (const LPhi &P : B.Phis)
      Visible.insert(P.Dst);
    for (const LPhi &P : B.Phis)
      for (size_t N = 0; N != P.In.size(); ++N) {
        ValueId V = P.In[N];
        if (V == NoValue)
          continue;
        if (V >= NumValues || DefBlock[V] == ~0u) {
          Error = format("block %u: phi input v%u undefined", Id, V);
          return false;
        }
        uint32_t Pred = B.Preds[N];
        if (DT.isReachable(Pred) && DT.isReachable(DefBlock[V]) &&
            !DT.dominates(DefBlock[V], Pred)) {
          Error = format("block %u: phi input v%u (from pred %u) not "
                         "dominated by def",
                         Id, V, Pred);
          return false;
        }
      }
    for (const LInsn &I : B.Insns) {
      bool Ok = true;
      forEachOperand(I, [&](ValueId V) {
        if (!Ok || V == NoValue)
          return;
        if (DefBlock[V] == Id && !Visible.count(V)) {
          Error = format("block %u: use of v%u before its definition", Id,
                         V);
          Ok = false;
          return;
        }
        if (DefBlock[V] != Id && !CheckUse(V))
          Ok = false;
      });
      if (!Ok)
        return false;
      if (I.Dst != NoValue)
        Visible.insert(I.Dst);
    }
    for (ValueId V : {B.Term.A, B.Term.B}) {
      if (V == NoValue)
        continue;
      if (DefBlock[V] == Id) {
        if (!Visible.count(V)) {
          Error = format("block %u: terminator uses v%u before def", Id, V);
          return false;
        }
      } else if (!CheckUse(V)) {
        return false;
      }
    }
  }
  return true;
}

std::string LFunction::dump() const {
  std::string Out = format("lfunc %s (params=%u values=%u)\n", Name.c_str(),
                           unsigned(ParamCount), NumValues);
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    const LBlock &B = Blocks[Id];
    Out += format("bb%u:", Id);
    if (!B.Preds.empty()) {
      Out += " ; preds:";
      for (uint32_t P : B.Preds)
        Out += format(" bb%u", P);
    }
    Out += "\n";
    for (const LPhi &P : B.Phis) {
      Out += format("  v%u = phi", P.Dst);
      for (size_t N = 0; N != P.In.size(); ++N)
        Out += format("%s v%u", N ? "," : "", P.In[N]);
      Out += "\n";
    }
    for (const LInsn &I : B.Insns) {
      Out += "  ";
      if (I.Dst != NoValue)
        Out += format("v%u = ", I.Dst);
      Out += vm::mopcodeName(I.Op);
      if (I.A != NoValue)
        Out += format(" v%u", I.A);
      if (I.B != NoValue)
        Out += format(", v%u", I.B);
      if (I.Op == vm::MOpcode::MMovImmI)
        Out += format(" #%lld", static_cast<long long>(I.ImmI));
      if (I.Op == vm::MOpcode::MMovImmF)
        Out += format(" #%g", I.ImmF);
      if (!I.Args.empty()) {
        Out += " (";
        for (size_t N = 0; N != I.Args.size(); ++N)
          Out += format("%sv%u", N ? ", " : "", I.Args[N]);
        Out += ")";
      }
      Out += "\n";
    }
    const LTerminator &T = B.Term;
    switch (T.K) {
    case LTerminator::Kind::Goto:
      Out += format("  goto bb%u\n", T.Taken);
      break;
    case LTerminator::Kind::Cond:
      Out += format("  %s v%u%s -> bb%u else bb%u\n",
                    vm::mopcodeName(T.CondOp), T.A,
                    T.B == NoValue ? "" : format(", v%u", T.B).c_str(),
                    T.Taken, T.Fall);
      break;
    case LTerminator::Kind::Guard:
      Out += format("  guard v%u class%u ? bb%u : bb%u\n", T.A,
                    T.GuardClass, T.Fall, T.Taken);
      break;
    case LTerminator::Kind::Ret:
      Out += format("  ret v%u\n", T.A);
      break;
    case LTerminator::Kind::RetVoid:
      Out += "  ret-void\n";
      break;
    }
  }
  return Out;
}
