//===- lir/LoopPasses.cpp - Loop restructuring passes -----------------------===//
//
// Loop-invariant code motion, rotation (while -> guarded do-while),
// unrolling and peeling of rotated self-loops, and the paper's custom
// GC-safepoint elision (Section 3.5). Unrolling + gc-elide is the
// combination the genetic search discovers for FFT where plain -O3 loses
// to the Android compiler.
//
//===----------------------------------------------------------------------===//

#include "lir/Analysis.h"
#include "lir/Passes.h"

#include "vm/MachineUtil.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ropt;
using namespace ropt::lir;
using vm::MOpcode;

namespace {

/// Value substitution helper.
ValueId subst(const std::map<ValueId, ValueId> &Map, ValueId V) {
  auto It = Map.find(V);
  return It == Map.end() ? V : It->second;
}

void substInsn(LInsn &I, const std::map<ValueId, ValueId> &Map) {
  forEachOperand(I, [&Map](ValueId &V) { V = subst(Map, V); });
}

/// Finds the unique outside predecessor of a loop header with a Goto
/// terminator; returns ~0u when the shape does not match.
uint32_t findPreheader(const LFunction &Fn, const Loop &L) {
  uint32_t Preheader = ~0u;
  for (uint32_t Pred : Fn.Blocks[L.Header].Preds) {
    if (L.contains(Pred))
      continue;
    if (Preheader != ~0u)
      return ~0u; // multiple entries
    Preheader = Pred;
  }
  if (Preheader == ~0u)
    return ~0u;
  if (Fn.Blocks[Preheader].Term.K != LTerminator::Kind::Goto)
    return ~0u;
  return Preheader;
}

/// Replaces uses of \p Old with \p New everywhere except inside \p Skip
/// blocks and except the phi nodes of block \p SkipPhisOf.
void replaceUsesOutside(LFunction &Fn, ValueId Old, ValueId New,
                        const std::set<uint32_t> &Skip,
                        uint32_t SkipPhisOf) {
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    if (Skip.count(Id))
      continue;
    LBlock &B = Fn.Blocks[Id];
    if (Id != SkipPhisOf)
      for (LPhi &P : B.Phis)
        for (ValueId &V : P.In)
          if (V == Old)
            V = New;
    for (LInsn &I : B.Insns)
      forEachOperand(I, [Old, New](ValueId &V) {
        if (V == Old)
          V = New;
      });
    if (B.Term.A == Old)
      B.Term.A = New;
    if (B.Term.B == Old)
      B.Term.B = New;
  }
}

} // namespace

// --- LICM -------------------------------------------------------------------------

bool lir::licm(LFunction &Fn, bool SpeculateDiv) {
  bool Changed = false;
  DomTree DT = DomTree::compute(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);
  std::vector<uint32_t> DefBlock = computeDefBlocks(Fn);

  for (const Loop &L : LI.loops()) {
    uint32_t Preheader = findPreheader(Fn, L);
    if (Preheader == ~0u)
      continue;

    // Loop side effects determine whether loads are hoistable.
    bool HasStoresOrCalls = false;
    for (uint32_t Id : L.Blocks)
      for (const LInsn &I : Fn.Blocks[Id].Insns)
        if (vm::isStoreOp(I.Op) || vm::isCallOp(I.Op))
          HasStoresOrCalls = true;

    auto IsInvariant = [&](ValueId V, const std::set<ValueId> &Hoisted) {
      if (V == NoValue)
        return true;
      if (Hoisted.count(V))
        return true;
      uint32_t Def = V < DefBlock.size() ? DefBlock[V] : ~0u;
      return Def != ~0u && !L.contains(Def);
    };

    std::set<ValueId> Hoisted;
    bool Fixpoint = false;
    while (!Fixpoint) {
      Fixpoint = true;
      for (uint32_t Id : L.Blocks) {
        LBlock &B = Fn.Blocks[Id];
        for (size_t Pos = 0; Pos < B.Insns.size(); ++Pos) {
          LInsn &I = B.Insns[Pos];
          bool Hoistable = vm::isPureOp(I.Op) ||
                           I.Op == MOpcode::MIntrinsic;
          // Loads are invariant when nothing in the loop writes memory.
          if (!HasStoresOrCalls && vm::isLoadOp(I.Op))
            Hoistable = true;
          // UNSOUND with SpeculateDiv: a hoisted division executes even
          // when the loop body would have been skipped or the divisor
          // guarded — a genuine new trap (DESIGN.md §4).
          if (SpeculateDiv &&
              (I.Op == MOpcode::MDivI || I.Op == MOpcode::MRemI))
            Hoistable = true;
          if (!Hoistable || I.Dst == NoValue)
            continue;
          bool OperandsInvariant = true;
          forEachOperand(I, [&](ValueId &V) {
            if (!IsInvariant(V, Hoisted))
              OperandsInvariant = false;
          });
          if (!OperandsInvariant)
            continue;
          Fn.Blocks[Preheader].Insns.push_back(I);
          Hoisted.insert(I.Dst);
          B.Insns.erase(B.Insns.begin() + Pos);
          --Pos;
          Changed = true;
          Fixpoint = false;
        }
      }
    }
  }
  return Changed;
}

// --- Loop rotation -----------------------------------------------------------------

bool lir::loopRotate(LFunction &Fn) {
  bool Changed = false;
  // Rotating invalidates the analyses; handle one loop per outer round.
  for (int Round = 0; Round != 8; ++Round) {
    DomTree DT = DomTree::compute(Fn);
    LoopInfo LI = LoopInfo::compute(Fn, DT);
    bool Rotated = false;

    for (const Loop &L : LI.loops()) {
      LBlock &H = Fn.Blocks[L.Header];
      // Shape: header with phis only + conditional exit test; one latch
      // ending in goto; one outside pred ending in goto.
      if (!H.Insns.empty() || H.Term.K != LTerminator::Kind::Cond)
        continue;
      if (L.Latches.size() != 1 || H.Preds.size() != 2)
        continue;
      uint32_t Latch = L.Latches[0];
      if (Fn.Blocks[Latch].Term.K != LTerminator::Kind::Goto)
        continue;
      uint32_t Preheader = findPreheader(Fn, L);
      if (Preheader == ~0u)
        continue;

      uint32_t Succ0 = H.Term.Taken, Succ1 = H.Term.Fall;
      bool TakenInLoop = L.contains(Succ0);
      uint32_t Body = TakenInLoop ? Succ0 : Succ1;
      uint32_t Exit = TakenInLoop ? Succ1 : Succ0;
      if (L.contains(Exit) || !L.contains(Body) || Body == L.Header)
        continue;
      // The body entry must be private to this loop path.
      if (Fn.Blocks[Body].Preds.size() != 1 || !Fn.Blocks[Body].Phis.empty())
        continue;
      if (Exit == Body || Exit == Preheader)
        continue;
      // The exit must be reachable only through the header: a second exit
      // edge from inside the loop would keep using the header's phis on a
      // path the rotated guard bypasses.
      if (Fn.Blocks[Exit].Preds.size() != 1)
        continue;

      size_t IdxP = H.Preds[0] == Preheader ? 0 : 1;
      size_t IdxL = 1 - IdxP;
      assert(H.Preds[IdxP] == Preheader && H.Preds[IdxL] == Latch &&
             "unexpected header predecessors");

      std::map<ValueId, ValueId> EntryMap, LatchMap;
      for (const LPhi &P : H.Phis) {
        EntryMap[P.Dst] = P.In[IdxP];
        LatchMap[P.Dst] = P.In[IdxL];
      }

      // Guard in the preheader: the header test over entry values.
      LTerminator Guard = H.Term;
      Guard.A = subst(EntryMap, Guard.A);
      if (Guard.B != NoValue)
        Guard.B = subst(EntryMap, Guard.B);
      Fn.Blocks[Preheader].Term = Guard;

      // Bottom test in the latch: the header test over next-iter values.
      LTerminator Bottom = H.Term;
      Bottom.A = subst(LatchMap, Bottom.A);
      if (Bottom.B != NoValue)
        Bottom.B = subst(LatchMap, Bottom.B);
      // Taken/Fall targets keep the same orientation but the in-loop side
      // now re-enters at Body.
      if (TakenInLoop)
        Bottom.Taken = Body;
      else
        Bottom.Fall = Body;
      Fn.Blocks[Latch].Term = Bottom;

      // Move phis into the body entry (now the rotated loop header).
      LBlock &BB = Fn.Blocks[Body];
      BB.Preds = {Preheader, Latch};
      for (LPhi P : H.Phis) {
        LPhi NewP;
        NewP.Dst = P.Dst; // keep ids: in-loop uses stay valid
        NewP.In = {P.In[IdxP], P.In[IdxL]};
        BB.Phis.push_back(std::move(NewP));
      }

      // Exit block surgery: the H edge becomes edges from Preheader (guard
      // false) and Latch (bottom test false).
      LBlock &EB = Fn.Blocks[Exit];
      bool ExitWasSinglePred =
          EB.Preds.size() == 1 && EB.Preds[0] == L.Header;
      size_t IdxE = ~size_t(0);
      for (size_t N = 0; N != EB.Preds.size(); ++N)
        if (EB.Preds[N] == L.Header)
          IdxE = N;
      assert(IdxE != ~size_t(0) && "exit lost its header edge");
      EB.Preds[IdxE] = Preheader;
      EB.Preds.push_back(Latch);
      for (LPhi &P : EB.Phis) {
        ValueId FromH = P.In[IdxE];
        P.In[IdxE] = subst(EntryMap, FromH);
        P.In.push_back(subst(LatchMap, FromH));
      }

      // Direct uses of the old header phis outside the loop (only possible
      // when the exit had the header as its single predecessor).
      if (ExitWasSinglePred) {
        std::set<uint32_t> LoopBlocks = L.Blocks;
        for (const LPhi &P : H.Phis) {
          LPhi ExitPhi;
          ExitPhi.Dst = Fn.newValue();
          ExitPhi.In = {EntryMap[P.Dst], LatchMap[P.Dst]};
          // Replace uses of P.Dst outside the loop with the exit phi; the
          // phi we just moved into Body keeps the in-loop uses.
          replaceUsesOutside(Fn, P.Dst, ExitPhi.Dst, LoopBlocks, Exit);
          // The exit block's own phis were already fixed above; its body
          // and terminator must use the exit phi too.
          for (LInsn &I : EB.Insns)
            forEachOperand(I, [&](ValueId &V) {
              if (V == P.Dst)
                V = ExitPhi.Dst;
            });
          if (EB.Term.A == P.Dst)
            EB.Term.A = ExitPhi.Dst;
          if (EB.Term.B == P.Dst)
            EB.Term.B = ExitPhi.Dst;
          EB.Phis.push_back(std::move(ExitPhi));
        }
      }

      // The old header is gone.
      H.Phis.clear();
      H.Preds.clear();
      H.Term = LTerminator();
      H.Term.K = LTerminator::Kind::RetVoid;

      Changed = true;
      Rotated = true;
      break; // analyses are stale
    }
    if (!Rotated)
      break;
  }
  if (Changed)
    simplifyCfg(Fn);
  return Changed;
}

// --- Self-loop replication (shared by unroll and peel) --------------------------------

namespace {

/// A rotated self-loop: block B with a conditional terminator where one
/// successor is B itself.
struct SelfLoop {
  uint32_t Block;
  uint32_t Exit;
  bool TakenIsSelf;
  size_t SelfPredSlot;    ///< Index of B in B.Preds.
  size_t OutsidePredSlot; ///< Index of the entry pred in B.Preds.
};

bool matchSelfLoop(const LFunction &Fn, uint32_t Id, SelfLoop &Out) {
  const LBlock &B = Fn.Blocks[Id];
  if (B.Term.K != LTerminator::Kind::Cond)
    return false;
  bool TakenIsSelf = B.Term.Taken == Id;
  bool FallIsSelf = B.Term.Fall == Id;
  if (TakenIsSelf == FallIsSelf)
    return false; // not a self-loop (or a degenerate both-self)
  if (B.Preds.size() != 2)
    return false;
  size_t SelfSlot = B.Preds[0] == Id ? 0 : (B.Preds[1] == Id ? 1 : ~0u);
  if (SelfSlot == ~0u)
    return false;
  Out.Block = Id;
  Out.Exit = TakenIsSelf ? B.Term.Fall : B.Term.Taken;
  Out.TakenIsSelf = TakenIsSelf;
  Out.SelfPredSlot = SelfSlot;
  Out.OutsidePredSlot = 1 - SelfSlot;
  if (Out.Exit == Id)
    return false;
  return true;
}

/// Clones the body of self-loop block \p B applying \p Map to operands and
/// registering fresh destinations in \p Map. Returns the new block id. The
/// terminator is cloned with substituted operands; successors are left for
/// the caller to set.
uint32_t cloneBody(LFunction &Fn, uint32_t B,
                   std::map<ValueId, ValueId> &Map) {
  uint32_t NewId = static_cast<uint32_t>(Fn.Blocks.size());
  Fn.Blocks.emplace_back();
  // Note: Fn.Blocks may have reallocated; index afresh.
  for (const LInsn &Orig : Fn.Blocks[B].Insns) {
    LInsn Clone = Orig;
    substInsn(Clone, Map);
    if (Clone.Dst != NoValue) {
      ValueId Fresh = Fn.newValue();
      Map[Orig.Dst] = Fresh;
      Clone.Dst = Fresh;
    }
    Fn.Blocks[NewId].Insns.push_back(std::move(Clone));
  }
  LTerminator Term = Fn.Blocks[B].Term;
  Term.A = subst(Map, Term.A);
  if (Term.B != NoValue)
    Term.B = subst(Map, Term.B);
  Fn.Blocks[NewId].Term = Term;
  return NewId;
}

/// Values defined in block \p B (phis + instructions).
std::vector<ValueId> blockDefs(const LFunction &Fn, uint32_t B) {
  std::vector<ValueId> Defs;
  for (const LPhi &P : Fn.Blocks[B].Phis)
    Defs.push_back(P.Dst);
  for (const LInsn &I : Fn.Blocks[B].Insns)
    if (I.Dst != NoValue)
      Defs.push_back(I.Dst);
  return Defs;
}

} // namespace

bool lir::loopUnroll(LFunction &Fn, int Factor, bool AssumeDivisible) {
  if (Factor < 2)
    return false;
  bool Changed = false;

  // The aggressive mode "helpfully" rotates first so more loops qualify —
  // and then miscompiles them (see below).
  if (AssumeDivisible)
    loopRotate(Fn);

  size_t OriginalBlocks = Fn.Blocks.size();
  for (uint32_t Id = 0; Id != OriginalBlocks; ++Id) {
    SelfLoop SL;
    if (!matchSelfLoop(Fn, Id, SL))
      continue;
    uint32_t B = SL.Block, E = SL.Exit;
    bool ExitWasSinglePred = Fn.Blocks[E].Preds.size() == 1;

    // Per-replica substitution maps; replica 1 is the original block.
    // Map_j sends original values to replica-j values.
    std::map<ValueId, ValueId> PrevMap; // identity for replica 1
    std::vector<std::map<ValueId, ValueId>> Maps; // for replicas 2..k
    std::vector<uint32_t> Clones;

    for (int J = 2; J <= Factor; ++J) {
      // Seed: each phi value continues from the previous replica's image
      // of its latch input.
      std::map<ValueId, ValueId> Map;
      for (const LPhi &P : Fn.Blocks[B].Phis)
        Map[P.Dst] = subst(PrevMap, P.In[SL.SelfPredSlot]);
      uint32_t Clone = cloneBody(Fn, B, Map);
      Clones.push_back(Clone);
      Maps.push_back(Map);
      PrevMap = Map;
    }

    // Chain: B -> C2 -> C3 -> ... -> Ck -> B, exits to E everywhere.
    auto SetSuccs = [&](uint32_t Block, uint32_t Continue) {
      LTerminator &T = Fn.Blocks[Block].Term;
      if (SL.TakenIsSelf) {
        T.Taken = Continue;
        T.Fall = E;
      } else {
        T.Fall = Continue;
        T.Taken = E;
      }
    };
    SetSuccs(B, Clones.front());
    for (size_t N = 0; N != Clones.size(); ++N)
      SetSuccs(Clones[N], N + 1 < Clones.size() ? Clones[N + 1] : B);

    // Locate B's pred slot in the exit block before any edges are
    // rewritten; both branches below key off it.
    LBlock &EB = Fn.Blocks[E];
    size_t IdxE = ~size_t(0);
    for (size_t N = 0; N != EB.Preds.size(); ++N)
      if (EB.Preds[N] == B)
        IdxE = N;
    assert(IdxE != ~size_t(0) && "exit lost its loop edge");

    if (AssumeDivisible) {
      // UNSOUND (DESIGN.md §4): only the final replica keeps its exit
      // test. When the trip count is not a multiple of the factor, the
      // overshoot iterations run with out-of-range state — genuine
      // memory corruption or wild traps, like a real remainder bug.
      auto DropExit = [&](uint32_t Block, uint32_t Continue) {
        LTerminator &T = Fn.Blocks[Block].Term;
        T = LTerminator();
        T.K = LTerminator::Kind::Goto;
        T.Taken = Continue;
      };
      DropExit(B, Clones.front());
      for (size_t N = 0; N + 1 < Clones.size(); ++N)
        DropExit(Clones[N], Clones[N + 1]);
      // The exit edge now leaves from the last replica only: retarget
      // B's old pred slot in place (keeping Preds and phi inputs
      // aligned) instead of erasing and re-adding slots.
      EB.Preds[IdxE] = Clones.back();
      for (LPhi &P : EB.Phis)
        P.In[IdxE] = subst(Maps.back(), P.In[IdxE]);
    } else {
      // Every replica keeps its exit test: one new pred slot per clone.
      for (size_t N = 0; N != Clones.size(); ++N) {
        EB.Preds.push_back(Clones[N]);
        for (LPhi &P : EB.Phis)
          P.In.push_back(subst(Maps[N], P.In[IdxE]));
      }
    }

    // Clone pred lists: linear chain.
    Fn.Blocks[Clones[0]].Preds = {B};
    for (size_t N = 1; N != Clones.size(); ++N)
      Fn.Blocks[Clones[N]].Preds = {Clones[N - 1]};

    // B's self edge now comes from the last clone; remap the phi inputs
    // through the final map.
    uint32_t LastClone = Clones.back();
    Fn.Blocks[B].Preds[SL.SelfPredSlot] = LastClone;
    for (LPhi &P : Fn.Blocks[B].Phis)
      P.In[SL.SelfPredSlot] =
          subst(Maps.back(), P.In[SL.SelfPredSlot]);

    // Values defined in B and used beyond the loop need merge phis in E
    // (only possible when E's one pred was B).
    if (ExitWasSinglePred) {
      std::set<uint32_t> Skip{B};
      for (uint32_t C : Clones)
        Skip.insert(C);
      for (ValueId V : blockDefs(Fn, B)) {
        LPhi ExitPhi;
        ExitPhi.Dst = Fn.newValue();
        if (AssumeDivisible) {
          // Only the last replica reaches E: one input.
          ExitPhi.In.push_back(subst(Maps.back(), V));
        } else {
          ExitPhi.In.push_back(V); // from B
          for (const auto &Map : Maps)
            ExitPhi.In.push_back(subst(Map, V));
        }
        replaceUsesOutside(Fn, V, ExitPhi.Dst, Skip, E);
        EB.Phis.push_back(std::move(ExitPhi));
      }
      // Dead exit phis are cheap; dce cleans them.
    }
    Changed = true;
  }
  return Changed;
}

bool lir::loopPeel(LFunction &Fn, int Count) {
  if (Count < 1)
    return false;
  bool Changed = false;

  size_t OriginalBlocks = Fn.Blocks.size();
  for (uint32_t Id = 0; Id != OriginalBlocks; ++Id) {
    SelfLoop SL;
    if (!matchSelfLoop(Fn, Id, SL))
      continue;
    uint32_t B = SL.Block, E = SL.Exit;
    uint32_t EntryPred = Fn.Blocks[B].Preds[SL.OutsidePredSlot];
    // The peeled chain hangs off a goto edge.
    if (Fn.Blocks[EntryPred].Term.K != LTerminator::Kind::Goto)
      continue;
    bool ExitWasSinglePred = Fn.Blocks[E].Preds.size() == 1;

    // Map_1: phi values take their entry inputs.
    std::map<ValueId, ValueId> Map;
    for (const LPhi &P : Fn.Blocks[B].Phis)
      Map[P.Dst] = P.In[SL.OutsidePredSlot];

    std::vector<uint32_t> Peels;
    std::vector<std::map<ValueId, ValueId>> Maps;
    for (int J = 0; J != Count; ++J) {
      if (J != 0) {
        std::map<ValueId, ValueId> Next;
        for (const LPhi &P : Fn.Blocks[B].Phis)
          Next[P.Dst] = subst(Map, P.In[SL.SelfPredSlot]);
        Map = Next;
      }
      uint32_t Clone = cloneBody(Fn, B, Map);
      Peels.push_back(Clone);
      Maps.push_back(Map);
    }

    // Wire: EntryPred -> P1 -> P2 ... -> Pc -> B; exits to E.
    Fn.Blocks[EntryPred].Term.Taken = Peels.front();
    Fn.Blocks[Peels[0]].Preds = {EntryPred};
    for (size_t N = 0; N != Peels.size(); ++N) {
      LTerminator &T = Fn.Blocks[Peels[N]].Term;
      uint32_t Continue = N + 1 < Peels.size() ? Peels[N + 1] : B;
      if (SL.TakenIsSelf) {
        T.Taken = Continue;
        T.Fall = E;
      } else {
        T.Fall = Continue;
        T.Taken = E;
      }
      if (N + 1 < Peels.size())
        Fn.Blocks[Peels[N + 1]].Preds = {Peels[N]};
    }

    // B's entry edge now comes from the last peel, carrying its values.
    Fn.Blocks[B].Preds[SL.OutsidePredSlot] = Peels.back();
    for (LPhi &P : Fn.Blocks[B].Phis)
      P.In[SL.OutsidePredSlot] =
          subst(Maps.back(), P.In[SL.SelfPredSlot]);

    // Exit gains one pred per peel iteration.
    LBlock &EB = Fn.Blocks[E];
    size_t IdxE = ~size_t(0);
    for (size_t N = 0; N != EB.Preds.size(); ++N)
      if (EB.Preds[N] == B)
        IdxE = N;
    assert(IdxE != ~size_t(0) && "exit lost its loop edge");
    for (size_t N = 0; N != Peels.size(); ++N) {
      EB.Preds.push_back(Peels[N]);
      for (LPhi &P : EB.Phis)
        P.In.push_back(subst(Maps[N], P.In[IdxE]));
    }

    if (ExitWasSinglePred) {
      std::set<uint32_t> Skip{B};
      for (uint32_t C : Peels)
        Skip.insert(C);
      for (ValueId V : blockDefs(Fn, B)) {
        LPhi ExitPhi;
        ExitPhi.Dst = Fn.newValue();
        ExitPhi.In.push_back(V);
        for (const auto &M : Maps)
          ExitPhi.In.push_back(subst(M, V));
        replaceUsesOutside(Fn, V, ExitPhi.Dst, Skip, E);
        EB.Phis.push_back(std::move(ExitPhi));
      }
    }
    Changed = true;
  }
  return Changed;
}

// --- GC-safepoint elision ----------------------------------------------------------------

bool lir::gcElide(LFunction &Fn, bool StripLoops) {
  bool Changed = false;
  DomTree DT = DomTree::compute(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);

  std::set<uint32_t> Headers;
  std::set<uint32_t> InLoop;
  for (const Loop &L : LI.loops()) {
    Headers.insert(L.Header);
    InLoop.insert(L.Blocks.begin(), L.Blocks.end());
  }

  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    LBlock &B = Fn.Blocks[Id];
    bool KeepOne = !InLoop.count(Id) || (Headers.count(Id) && !StripLoops);
    bool KeptFirst = false;
    for (LInsn &I : B.Insns) {
      if (I.Op != MOpcode::MSafepoint)
        continue;
      if (KeepOne && !KeptFirst) {
        KeptFirst = true;
        continue;
      }
      I = LInsn(); // nop
      Changed = true;
    }
    B.Insns.erase(std::remove_if(B.Insns.begin(), B.Insns.end(),
                                 [](const LInsn &I) {
                                   return I.Op == MOpcode::MNop;
                                 }),
                  B.Insns.end());
  }
  return Changed;
}
