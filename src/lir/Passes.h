//===- lir/Passes.h - The LLVM-like optimization space ----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation space the genetic search explores (Section 3.6):
/// passes, integer parameters, and aggressive flags. Some aggressive modes
/// are *deliberately unsound* — they model the real-compiler bugs Figure 1
/// quantifies (see DESIGN.md §4). Safe defaults never miscompile.
///
/// Pass identities, parameter ranges, and flag meanings are described by
/// the registry so the search layer can enumerate and mutate them without
/// knowing pass internals.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_PASSES_H
#define ROPT_LIR_PASSES_H

#include "lir/Lir.h"
#include "lir/TypeProfile.h"

#include <string>
#include <vector>

namespace ropt {
namespace lir {

enum class PassId : uint8_t {
  SimplifyCfg,    ///< Merge/thread trivial blocks, drop dead phis.
  ConstProp,      ///< Global constant folding incl. branch folding.
  InstCombine,    ///< Algebraic simplification on SSA.
  Gvn,            ///< Dominator-scoped global value numbering.
  Dce,            ///< SSA dead code elimination. Aggressive: drops dead
                  ///< loads and allocations too.
  Licm,           ///< Loop-invariant code motion. Aggressive: speculates
                  ///< division out of loops (UNSOUND: may trap on a
                  ///< zero-trip or guarded-divisor loop).
  Reassociate,    ///< Integer reassociation. Aggressive ("fastmath"):
                  ///< reassociates FP too (UNSOUND: changes rounding).
  LoopRotate,     ///< While-loop -> guarded do-while.
  LoopUnroll,     ///< Unroll rotated self-loops by IntParam. Aggressive:
                  ///< assumes the trip count is divisible by the factor
                  ///< and drops the intermediate exit tests (UNSOUND: the
                  ///< classic remainder-handling bug — overshoot
                  ///< iterations run with out-of-range indices).
  LoopPeel,       ///< Peel IntParam first iterations of self-loops.
  GcElide,        ///< The paper's custom pass: one safepoint per loop
                  ///< iteration. Aggressive: strips loop safepoints
                  ///< entirely (UNSOUND: GC starvation in alloc loops).
  JniIntrinsics,  ///< The paper's custom pass: JNI math -> intrinsics.
  Devirtualize,   ///< Profile-guided speculative devirtualization;
                  ///< IntParam = min dominant-receiver percent.
  Inline,         ///< Inline static calls up to IntParam instructions.
  JumpThreading,  ///< Forward through empty blocks. Aggressive: also
                  ///< threads phi-bearing blocks with a phi-update bug
                  ///< (UNSOUND: produces verifier-rejected IR).
  BoundsCheckElim,///< Dominance/const-based check removal. Aggressive:
                  ///< trusts a naive induction analysis that ignores
                  ///< multiplicative index updates (UNSOUND: genuine
                  ///< out-of-bounds accesses).
  Sink,           ///< Sink single-successor-used pure code.
  PassIdCount,
};

/// One pass application in a pipeline.
struct PassInstance {
  PassId Id = PassId::SimplifyCfg;
  int IntParam = 0;
  bool Aggressive = false;
};

/// Search-facing pass metadata.
struct PassDescriptor {
  PassId Id;
  const char *Name;
  bool HasIntParam;
  int MinInt;
  int MaxInt;
  int DefaultInt;
  bool HasAggressive;
};

/// All passes, indexed by PassId.
const std::vector<PassDescriptor> &passRegistry();

/// Descriptor lookup.
const PassDescriptor &passDescriptor(PassId Id);

/// Parses "name", "name=K", "name!aggr" forms (debug/test convenience).
bool parsePassInstance(const std::string &Spec, PassInstance &Out);

/// Renders "name=K!" form.
std::string passInstanceName(const PassInstance &P);

/// External context passes may consult.
struct PassContext {
  const dex::DexFile *File = nullptr;
  const TypeProfile *Profile = nullptr;
};

/// Applies one pass. Returns true if the function changed. The result may
/// be *invalid IR* when an unsound mode fires — callers must verify()
/// before code generation (that is the "compiler crash" outcome).
bool applyPass(LFunction &Fn, const PassInstance &Pass,
               const PassContext &Ctx);

/// Runs a pipeline in order; stops early (returning false) if the function
/// exceeds \p SizeBudget instructions (the "compiler timeout" outcome).
bool runPipeline(LFunction &Fn, const std::vector<PassInstance> &Pipeline,
                 const PassContext &Ctx, size_t SizeBudget = 50000);

// Individual passes (exposed for unit tests).
bool simplifyCfg(LFunction &Fn);
bool constProp(LFunction &Fn);
bool instCombine(LFunction &Fn);
bool gvn(LFunction &Fn);
bool dce(LFunction &Fn, bool Aggressive);
bool licm(LFunction &Fn, bool SpeculateDiv);
bool reassociate(LFunction &Fn, bool FastMath);
bool loopRotate(LFunction &Fn);
bool loopUnroll(LFunction &Fn, int Factor, bool AssumeDivisible = false);
bool loopPeel(LFunction &Fn, int Count);
bool gcElide(LFunction &Fn, bool StripLoops);
bool jniIntrinsics(LFunction &Fn, const dex::DexFile &File);
bool devirtualize(LFunction &Fn, const dex::DexFile &File,
                  const TypeProfile &Profile, int MinPercent);
bool inlineCalls(LFunction &Fn, const dex::DexFile &File, int Threshold);
bool jumpThreading(LFunction &Fn, bool Aggressive);
bool boundsCheckElim(LFunction &Fn, bool Aggressive);
bool sinkCode(LFunction &Fn);

/// Replaces every use of \p Old with \p New across the function (shared
/// pass utility).
void replaceAllUses(LFunction &Fn, ValueId Old, ValueId New);

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_PASSES_H
