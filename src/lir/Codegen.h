//===- lir/Codegen.h - SSA to machine code ----------------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-SSA lowering: critical-edge splitting, phi elimination with
/// parallel-copy sequentialization (swap cycles broken through a scratch
/// register), block layout, branch fix-ups, and register compaction.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_LIR_CODEGEN_H
#define ROPT_LIR_CODEGEN_H

#include "hgraph/Codegen.h" // RegAllocKind
#include "lir/Lir.h"

#include <memory>

namespace ropt {
namespace lir {

/// Lowers \p Fn to executable machine code. \p Fn is taken by value: the
/// lowering mutates the CFG (edge splitting, phi copies).
std::shared_ptr<vm::MachineFunction>
emitMachine(LFunction Fn,
            hgraph::RegAllocKind RegAlloc = hgraph::RegAllocKind::LinearScan);

} // namespace lir
} // namespace ropt

#endif // ROPT_LIR_CODEGEN_H
