//===- lir/FromHGraph.cpp - HGraph to SSA translation ----------------------===//

#include "lir/FromHGraph.h"

#include "lir/Analysis.h"
#include "vm/MachineUtil.h"

#include <cassert>
#include <map>

using namespace ropt;
using namespace ropt::lir;
using hgraph::HBlock;
using hgraph::HGraph;
using hgraph::Terminator;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;
using vm::MRegIdx;

namespace {

/// SSA construction state.
class Translator {
public:
  Translator(const HGraph &G, const TranslateOptions &Options)
      : G(G), Options(Options) {}

  LFunction run();

private:
  void buildSkeleton();
  void placePhis();
  void renameBlock(uint32_t Block);
  LInsn translateInsn(const MInsn &I);
  ValueId valueOf(MRegIdx Reg);
  void pushDef(MRegIdx Reg, ValueId V);

  const HGraph &G;
  const TranslateOptions &Options;
  LFunction Fn;
  DomTree DT; // over Fn's skeleton CFG

  /// Which register each phi in each block merges (parallel to Phis).
  std::vector<std::vector<MRegIdx>> PhiRegs;
  /// Renaming stacks.
  std::vector<std::vector<ValueId>> Stacks;
  /// Defs pushed per block (for popping on DFS exit).
  std::vector<MRegIdx> PushedRegs;
};

ValueId Translator::valueOf(MRegIdx Reg) {
  assert(Reg < Stacks.size() && !Stacks[Reg].empty() &&
         "register read before any definition");
  return Stacks[Reg].back();
}

void Translator::pushDef(MRegIdx Reg, ValueId V) {
  Stacks[Reg].push_back(V);
  PushedRegs.push_back(Reg);
}

void Translator::buildSkeleton() {
  Fn.Method = G.Method;
  Fn.Name = G.Name;
  Fn.ParamCount = G.ParamCount;
  Fn.ReturnsValue = G.ReturnsValue;
  Fn.NumValues = G.ParamCount; // parameters are values [0, ParamCount)

  Fn.Blocks.resize(G.Blocks.size());
  for (uint32_t Id = 0; Id != G.Blocks.size(); ++Id) {
    const Terminator &HT = G.Blocks[Id].Term;
    LTerminator &LT = Fn.Blocks[Id].Term;
    switch (HT.K) {
    case Terminator::Kind::Goto:
      LT.K = LTerminator::Kind::Goto;
      LT.Taken = HT.Taken;
      break;
    case Terminator::Kind::Cond:
      LT.K = LTerminator::Kind::Cond;
      LT.CondOp = HT.CondOp;
      LT.Hint = HT.Hint;
      LT.Taken = HT.Taken;
      LT.Fall = HT.Fall;
      break;
    case Terminator::Kind::Guard:
      LT.K = LTerminator::Kind::Guard;
      LT.GuardClass = HT.GuardClass;
      LT.Taken = HT.Taken;
      LT.Fall = HT.Fall;
      break;
    case Terminator::Kind::Ret:
      LT.K = LTerminator::Kind::Ret;
      break;
    case Terminator::Kind::RetVoid:
      LT.K = LTerminator::Kind::RetVoid;
      break;
    }
  }
  Fn.computePreds();
  DT = DomTree::compute(Fn);
}

void Translator::placePhis() {
  // Def sites per register. The entry block defines every register: the
  // parameters properly, everything else as an explicit undef (zero) so
  // that renaming never sees an empty stack on any path.
  std::vector<std::set<uint32_t>> DefSites(G.NumRegs);
  for (MRegIdx R = 0; R != G.NumRegs; ++R)
    DefSites[R].insert(0);
  for (uint32_t Id = 0; Id != G.Blocks.size(); ++Id)
    for (const MInsn &I : G.Blocks[Id].Insns)
      if (vm::definesA(I))
        DefSites[I.A].insert(Id);

  std::vector<std::set<uint32_t>> DF = DT.dominanceFrontiers(Fn);
  PhiRegs.resize(Fn.Blocks.size());

  for (MRegIdx R = 0; R != G.NumRegs; ++R) {
    std::vector<uint32_t> Work(DefSites[R].begin(), DefSites[R].end());
    std::set<uint32_t> HasPhi;
    while (!Work.empty()) {
      uint32_t Block = Work.back();
      Work.pop_back();
      if (!DT.isReachable(Block))
        continue;
      for (uint32_t Frontier : DF[Block]) {
        if (!HasPhi.insert(Frontier).second)
          continue;
        LPhi P;
        P.Dst = NoValue; // assigned during renaming
        P.In.assign(Fn.Blocks[Frontier].Preds.size(), NoValue);
        Fn.Blocks[Frontier].Phis.push_back(std::move(P));
        PhiRegs[Frontier].push_back(R);
        if (!DefSites[R].count(Frontier))
          Work.push_back(Frontier);
      }
    }
  }
}

LInsn Translator::translateInsn(const MInsn &I) {
  LInsn Out;
  Out.Op = I.Op;
  Out.ImmI = I.ImmI;
  Out.ImmF = I.ImmF;
  Out.Idx = I.Idx;
  Out.Site = I.Site;
  Out.SiteMethod = G.Method;

  switch (I.Op) {
  // Stores: value operand moves into Args[0].
  case MOpcode::MStoreSlot:
    Out.A = valueOf(I.B); // object
    Out.Args.push_back(valueOf(I.A));
    return Out;
  case MOpcode::MStoreStatic:
    Out.Args.push_back(valueOf(I.A));
    return Out;
  case MOpcode::MAStore:
    Out.A = valueOf(I.B); // array
    Out.B = valueOf(I.C); // index
    Out.Args.push_back(valueOf(I.A));
    return Out;

  case MOpcode::MCallStatic:
  case MOpcode::MCallVirtual:
  case MOpcode::MCallNative:
  case MOpcode::MIntrinsic:
    for (unsigned N = 0; N != I.ArgCount; ++N)
      Out.Args.push_back(valueOf(I.Args[N]));
    break;

  default:
    if (I.B != MNoReg)
      Out.A = valueOf(I.B);
    if (I.C != MNoReg)
      Out.B = valueOf(I.C);
    break;
  }
  return Out;
}

void Translator::renameBlock(uint32_t Block) {
  size_t PushMark = PushedRegs.size();
  LBlock &LB = Fn.Blocks[Block];
  const HBlock &HB = G.Blocks[Block];

  // Phi definitions first.
  for (size_t N = 0; N != LB.Phis.size(); ++N) {
    LB.Phis[N].Dst = Fn.newValue();
    pushDef(PhiRegs[Block][N], LB.Phis[N].Dst);
  }

  if (Block == 0) {
    // Parameters, then explicit undefs for every other register.
    for (MRegIdx P = 0; P != G.ParamCount; ++P)
      pushDef(P, P);
    for (MRegIdx R = G.ParamCount; R < G.NumRegs; ++R) {
      LInsn Undef;
      Undef.Op = MOpcode::MMovImmI;
      Undef.ImmI = 0;
      Undef.Dst = Fn.newValue();
      LB.Insns.push_back(Undef);
      pushDef(R, Undef.Dst);
    }
  }

  for (const MInsn &I : HB.Insns) {
    if (I.Op == MOpcode::MNop)
      continue;
    if (I.Op == MOpcode::MSafepoint && Options.ConservativeBoundaries) {
      // Conservative boundary re-materialization: the translation emits
      // its own poll next to the one inherited from HGraph.
      LInsn Extra;
      Extra.Op = MOpcode::MSafepoint;
      LB.Insns.push_back(Extra);
    }
    LInsn Out = translateInsn(I);
    if (vm::definesA(I)) {
      Out.Dst = Fn.newValue();
      LB.Insns.push_back(Out);
      pushDef(I.A, Out.Dst);
      if (Options.ConservativeBoundaries && vm::isCallOp(I.Op)) {
        // Boundary copy of the call result.
        LInsn Copy;
        Copy.Op = MOpcode::MMov;
        Copy.A = Out.Dst;
        Copy.Dst = Fn.newValue();
        LB.Insns.push_back(Copy);
        Stacks[I.A].back() = Copy.Dst;
      }
    } else {
      LB.Insns.push_back(Out);
    }
  }

  // Terminator operands.
  const Terminator &HT = HB.Term;
  if (HT.K == Terminator::Kind::Cond || HT.K == Terminator::Kind::Guard ||
      HT.K == Terminator::Kind::Ret) {
    LB.Term.A = valueOf(HT.B);
    if (HT.K == Terminator::Kind::Cond && HT.C != MNoReg)
      LB.Term.B = valueOf(HT.C);
  }

  // Fill successor phi inputs for every edge position from this block.
  for (uint32_t Succ : LB.Term.successors()) {
    LBlock &SB = Fn.Blocks[Succ];
    for (size_t PredPos = 0; PredPos != SB.Preds.size(); ++PredPos) {
      if (SB.Preds[PredPos] != Block)
        continue;
      for (size_t N = 0; N != SB.Phis.size(); ++N)
        SB.Phis[N].In[PredPos] = valueOf(PhiRegs[Succ][N]);
    }
  }

  // Recurse over dominated blocks.
  for (uint32_t Child : DT.children(Block))
    renameBlock(Child);

  // Pop this block's definitions.
  while (PushedRegs.size() > PushMark) {
    Stacks[PushedRegs.back()].pop_back();
    PushedRegs.pop_back();
  }
}

LFunction Translator::run() {
  buildSkeleton();
  placePhis();
  Stacks.assign(G.NumRegs, {});
  renameBlock(0);
  std::string Error;
  [[maybe_unused]] bool Ok = Fn.verify(Error);
  assert(Ok && "SSA construction produced invalid IR");
  return std::move(Fn);
}

} // namespace

LFunction lir::fromHGraph(const HGraph &G, const TranslateOptions &Options) {
  return Translator(G, Options).run();
}
