//===- lir/Codegen.cpp - SSA to machine code --------------------------------===//

#include "lir/Codegen.h"

#include "lir/Analysis.h"
#include "vm/MachineUtil.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ropt;
using namespace ropt::lir;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;
using vm::MRegIdx;

namespace {

/// A register copy Dst <- Src with parallel semantics.
struct Copy {
  uint32_t Dst;
  uint32_t Src;
};

/// Sequentializes a parallel copy set: emits moves such that every Dst ends
/// with the original value of its Src. Swap cycles go through \p Scratch.
std::vector<Copy> sequentialize(std::vector<Copy> Pending,
                                uint32_t Scratch) {
  std::vector<Copy> Out;
  // Drop no-op copies.
  Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                               [](const Copy &C) { return C.Dst == C.Src; }),
                Pending.end());
  while (!Pending.empty()) {
    bool Progress = false;
    for (size_t N = 0; N != Pending.size(); ++N) {
      uint32_t Dst = Pending[N].Dst;
      bool DstIsPendingSrc = false;
      for (const Copy &C : Pending)
        if (C.Src == Dst && (C.Dst != C.Src))
          DstIsPendingSrc = true;
      if (DstIsPendingSrc)
        continue;
      Out.push_back(Pending[N]);
      Pending.erase(Pending.begin() + N);
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Pure cycle: move one source aside.
    Copy &C = Pending.front();
    Out.push_back({Scratch, C.Src});
    for (Copy &P : Pending)
      if (P.Src == C.Src)
        P.Src = Scratch;
  }
  return Out;
}

/// Translates one SSA instruction into machine form (registers are value
/// ids at this point).
MInsn lowerInsn(const LInsn &I) {
  MInsn Out;
  Out.Op = I.Op;
  Out.ImmI = I.ImmI;
  Out.ImmF = I.ImmF;
  Out.Idx = I.Idx;
  Out.Site = I.Site;

  auto Reg = [](ValueId V) {
    return V == NoValue ? MNoReg : static_cast<MRegIdx>(V);
  };

  switch (I.Op) {
  case MOpcode::MStoreSlot:
    Out.A = Reg(I.Args.at(0)); // stored value
    Out.B = Reg(I.A);          // object
    break;
  case MOpcode::MStoreStatic:
    Out.A = Reg(I.Args.at(0));
    break;
  case MOpcode::MAStore:
    Out.A = Reg(I.Args.at(0)); // stored value
    Out.B = Reg(I.A);          // array
    Out.C = Reg(I.B);          // index
    break;
  case MOpcode::MCallStatic:
  case MOpcode::MCallVirtual:
  case MOpcode::MCallNative:
  case MOpcode::MIntrinsic:
    Out.A = Reg(I.Dst);
    assert(I.Args.size() <= vm::MMaxArgs && "too many call arguments");
    Out.ArgCount = static_cast<uint8_t>(I.Args.size());
    for (size_t N = 0; N != I.Args.size(); ++N)
      Out.Args[N] = Reg(I.Args[N]);
    break;
  default:
    Out.A = Reg(I.Dst);
    Out.B = Reg(I.A);
    Out.C = Reg(I.B);
    break;
  }
  return Out;
}

} // namespace

std::shared_ptr<vm::MachineFunction>
lir::emitMachine(LFunction Fn, hgraph::RegAllocKind RegAlloc) {
  // --- Critical edge splitting ---------------------------------------------
  // Any edge into a phi-bearing block from a multi-successor predecessor
  // gets its own block so phi copies never execute before the branch.
  size_t OriginalBlocks = Fn.Blocks.size();
  std::vector<std::vector<bool>> Claimed(Fn.Blocks.size());
  for (size_t Id = 0; Id != Fn.Blocks.size(); ++Id)
    Claimed[Id].assign(Fn.Blocks[Id].Preds.size(), false);

  // Fn.Blocks may reallocate inside the loop; never hold references across
  // the emplace_back.
  auto SplitSlot = [&Fn, &Claimed](uint32_t P, uint32_t S) -> uint32_t {
    if (Fn.Blocks[S].Phis.empty())
      return S;
    uint32_t E = static_cast<uint32_t>(Fn.Blocks.size());
    Fn.Blocks.emplace_back();
    Fn.Blocks[E].Term.K = LTerminator::Kind::Goto;
    Fn.Blocks[E].Term.Taken = S;
    // Re-point the first unclaimed pred slot P -> E.
    LBlock &SB = Fn.Blocks[S];
    for (size_t N = 0; N != SB.Preds.size(); ++N) {
      if (SB.Preds[N] == P && !Claimed[S][N]) {
        SB.Preds[N] = E;
        Claimed[S][N] = true;
        break;
      }
    }
    return E;
  };
  for (uint32_t P = 0; P != OriginalBlocks; ++P) {
    if (Fn.Blocks[P].Term.successors().size() < 2)
      continue;
    uint32_t Taken = Fn.Blocks[P].Term.Taken;
    uint32_t Fall = Fn.Blocks[P].Term.Fall;
    Fn.Blocks[P].Term.Taken = SplitSlot(P, Taken);
    Fn.Blocks[P].Term.Fall = SplitSlot(P, Fall);
  }

  // --- Phi elimination -------------------------------------------------------
  // Identity value->register mapping plus one scratch register for cycles.
  uint32_t Scratch = Fn.NumValues;
  assert(Fn.NumValues + 1 < MNoReg && "function too large for RegIdx");

  std::vector<std::vector<Copy>> CopiesFor(Fn.Blocks.size());
  for (uint32_t S = 0; S != Fn.Blocks.size(); ++S) {
    LBlock &SB = Fn.Blocks[S];
    for (size_t PredPos = 0; PredPos != SB.Preds.size(); ++PredPos) {
      uint32_t P = SB.Preds[PredPos];
      for (const LPhi &Phi : SB.Phis) {
        assert(PredPos < Phi.In.size() && "phi arity mismatch");
        if (Phi.In[PredPos] != NoValue)
          CopiesFor[P].push_back({Phi.Dst, Phi.In[PredPos]});
      }
      if (!SB.Phis.empty()) {
        [[maybe_unused]] size_t Succs =
            Fn.Blocks[P].Term.successors().size();
        assert(Succs == 1 && "phi copies into a multi-successor block");
      }
    }
  }

  // --- Layout and emission ----------------------------------------------------
  auto Out = std::make_shared<vm::MachineFunction>();
  Out->Method = Fn.Method;
  Out->Name = Fn.Name;
  Out->ParamCount = Fn.ParamCount;
  Out->ReturnsValue = Fn.ReturnsValue;
  Out->NumRegs = static_cast<uint16_t>(Fn.NumValues + 1); // + scratch

  std::vector<uint32_t> Order = Fn.reversePostOrder();
  std::vector<int32_t> BlockStart(Fn.Blocks.size(), -1);

  struct Fixup {
    size_t InsnIndex;
    uint32_t Block;
  };
  std::vector<Fixup> Fixups;

  auto Reg = [](ValueId V) {
    return V == NoValue ? MNoReg : static_cast<MRegIdx>(V);
  };

  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    uint32_t Id = Order[Pos];
    const LBlock &B = Fn.Blocks[Id];
    BlockStart[Id] = static_cast<int32_t>(Out->Code.size());

    for (const LInsn &I : B.Insns)
      if (I.Op != MOpcode::MNop)
        Out->Code.push_back(lowerInsn(I));

    for (const Copy &C : sequentialize(CopiesFor[Id], Scratch)) {
      MInsn Mov;
      Mov.Op = MOpcode::MMov;
      Mov.A = static_cast<MRegIdx>(C.Dst);
      Mov.B = static_cast<MRegIdx>(C.Src);
      Out->Code.push_back(Mov);
    }

    uint32_t NextInLayout =
        Pos + 1 < Order.size() ? Order[Pos + 1] : ~0u;
    const LTerminator &T = B.Term;
    switch (T.K) {
    case LTerminator::Kind::Goto:
      if (T.Taken != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Out->Code.push_back(J);
        Fixups.push_back({Out->Code.size() - 1, T.Taken});
      }
      break;
    case LTerminator::Kind::Cond: {
      MInsn Br;
      Br.Op = T.CondOp;
      Br.B = Reg(T.A);
      Br.C = Reg(T.B);
      Br.Hint = T.Hint;
      Out->Code.push_back(Br);
      Fixups.push_back({Out->Code.size() - 1, T.Taken});
      if (T.Fall != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Out->Code.push_back(J);
        Fixups.push_back({Out->Code.size() - 1, T.Fall});
      }
      break;
    }
    case LTerminator::Kind::Guard: {
      MInsn Guard;
      Guard.Op = MOpcode::MGuardClass;
      Guard.B = Reg(T.A);
      Guard.Idx = T.GuardClass;
      Out->Code.push_back(Guard);
      Fixups.push_back({Out->Code.size() - 1, T.Taken});
      if (T.Fall != NextInLayout) {
        MInsn J;
        J.Op = MOpcode::MGoto;
        Out->Code.push_back(J);
        Fixups.push_back({Out->Code.size() - 1, T.Fall});
      }
      break;
    }
    case LTerminator::Kind::Ret: {
      MInsn R;
      R.Op = MOpcode::MRet;
      R.B = Reg(T.A);
      Out->Code.push_back(R);
      break;
    }
    case LTerminator::Kind::RetVoid: {
      MInsn R;
      R.Op = MOpcode::MRetVoid;
      Out->Code.push_back(R);
      break;
    }
    }
  }

  for (const Fixup &F : Fixups) {
    assert(BlockStart[F.Block] >= 0 && "branch to unlaid block");
    Out->Code[F.InsnIndex].Target = BlockStart[F.Block];
  }

  switch (RegAlloc) {
  case hgraph::RegAllocKind::LinearScan:
    vm::allocateRegistersLinearScan(*Out);
    break;
  case hgraph::RegAllocKind::Frequency:
    vm::compactRegistersByFrequency(*Out);
    break;
  case hgraph::RegAllocKind::FirstUse:
    vm::compactRegistersByFirstUse(*Out);
    break;
  case hgraph::RegAllocKind::None:
    break;
  }
  return Out;
}
