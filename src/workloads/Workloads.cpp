//===- workloads/Workloads.cpp - Suite assembly ------------------------------===//

#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace ropt;
using namespace ropt::workloads;

const char *workloads::suiteName(Suite S) {
  switch (S) {
  case Suite::Scimark: return "Scimark";
  case Suite::Art: return "Art";
  case Suite::Interactive: return "Interactive";
  }
  return "unknown";
}

std::vector<Application> workloads::buildSuite() {
  std::vector<Application> Suite;
  Suite.push_back(buildFFT());
  Suite.push_back(buildSOR());
  Suite.push_back(buildMonteCarlo());
  Suite.push_back(buildSparseMatmult());
  Suite.push_back(buildLU());
  Suite.push_back(buildSieve());
  Suite.push_back(buildBubbleSort());
  Suite.push_back(buildSelectionSort());
  Suite.push_back(buildLinpack());
  Suite.push_back(buildFibonacciIter());
  Suite.push_back(buildFibonacciRecv());
  Suite.push_back(buildDhrystone());
  Suite.push_back(buildMaterialLife());
  Suite.push_back(buildFourInARow());
  Suite.push_back(buildDroidFish());
  Suite.push_back(buildColorOverflow());
  Suite.push_back(buildBrainstonz());
  Suite.push_back(buildBlokish());
  Suite.push_back(buildSvarkaCalculator());
  Suite.push_back(buildReversi());
  Suite.push_back(buildPokerOdds());
  return Suite;
}

Application workloads::buildByName(const std::string &Name) {
  for (Application &App : buildSuite())
    if (App.Name == Name)
      return App;
  std::fprintf(stderr, "unknown application '%s'\n", Name.c_str());
  std::abort();
}
