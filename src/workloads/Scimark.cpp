//===- workloads/Scimark.cpp - The five Scimark kernels ---------------------===//
//
// FFT, SOR, MonteCarlo, SparseMatmult, and LU, written against the bytecode
// builder. Each app keeps its data in statics (set up by init), exposes a
// deterministic, replayable hot kernel, and wraps it in a session that does
// the I/O — matching the structure the hot-region detector expects.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/BuilderUtil.h"

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::workloads;

namespace {

/// The canonical session wrapper: r = kernel(param); cold bookkeeping;
/// print(r); return r. The session does I/O, so only the kernel is
/// replayable; the bookkeeping helper is replayable but outside the hot
/// region — the profiler's "Cold" share.
MethodId makeSession(DexBuilder &B, const CommonNatives &N,
                     MethodId Kernel) {
  MethodId Cold = B.declareFunction(InvalidId, "coldBookkeeping", 1, true);
  {
    FunctionBuilder F = B.beginBody(Cold);
    RegIdx Acc = F.newReg(), I = F.newReg(), Rounds = F.immI(900),
           Five = F.immI(5);
    F.constI(Acc, 0);
    emitCountedLoop(F, I, Rounds, [&] {
      RegIdx T = F.newReg();
      F.xorI(T, F.param(0), I);
      F.remI(T, T, Five);
      F.addI(Acc, Acc, T);
    });
    F.ret(Acc);
    B.endBody(F);
  }
  MethodId Session = B.declareFunction(InvalidId, "session", 1, true);
  FunctionBuilder F = B.beginBody(Session);
  RegIdx R = F.newReg(), C = F.newReg();
  F.invokeStatic(R, Kernel, {F.param(0)});
  F.invokeStatic(C, Cold, {R});
  F.addI(R, R, C);
  F.invokeNative(NoReg, N.Print, {R});
  F.ret(R);
  B.endBody(F);
  return Session;
}

/// Emits `M = 64; while (M*2 <= param && M*2 <= Limit) M <<= 1` — the
/// round-down-to-power-of-two sizing FFT uses.
void emitPow2Clamp(FunctionBuilder &F, RegIdx M, RegIdx Param,
                   RegIdx Limit) {
  RegIdx One = F.immI(1), Twice = F.newReg();
  F.constI(M, 64);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.shlI(Twice, M, One);
  F.ifGt(Twice, Param, Done);
  F.ifGt(Twice, Limit, Done);
  F.move(M, Twice);
  F.jump(Head);
  F.bind(Done);
}

} // namespace

// --- FFT ------------------------------------------------------------------------

Application workloads::buildFFT() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("FFT");
  StaticFieldId ReF = B.addStaticField(State, "re", Type::Ref);
  StaticFieldId ImF = B.addStaticField(State, "im", Type::Ref);
  ScratchBuffer Scratch = addScratch(B, 120);
  ColdPool Pool = addColdPool(B, 7LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Core = B.declareFunction(InvalidId, "fftCore", 2, false);
  MethodId Kernel = B.declareFunction(InvalidId, "fftKernel", 1, true);

  { // init(n): allocate the coefficient arrays.
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Arr = F.newReg();
    F.newArray(Arr, F.param(0), Type::F64);
    F.putStatic(ReF, Arr);
    F.newArray(Arr, F.param(0), Type::F64);
    F.putStatic(ImF, Arr);
    emitColdPoolInit(F, Pool);
    emitScratchInit(F, Scratch);
    F.retVoid();
    B.endBody(F);
  }

  { // fftCore(m, dir): radix-2 in-place FFT over the first m elements.
    FunctionBuilder F = B.beginBody(Core);
    RegIdx M = F.param(0), Dir = F.param(1);
    RegIdx Re = F.newReg(), Im = F.newReg();
    F.getStatic(Re, ReF);
    F.getStatic(Im, ImF);
    RegIdx One = F.immI(1);

    // Bit-reversal permutation: the j += m / m >>= 1 index chain is the
    // multiplicative-update pattern aggressive BCE mishandles.
    RegIdx J = F.newReg(), I = F.newReg(), Mm = F.newReg();
    F.constI(J, 0);
    F.constI(I, 0);
    {
      auto Head = F.newLabel(), Done = F.newLabel();
      F.bind(Head);
      F.ifGe(I, M, Done);
      auto NoSwap = F.newLabel();
      F.ifGe(I, J, NoSwap);
      RegIdx Ta = F.newReg(), Tb = F.newReg();
      F.aload(Ta, Re, I, Type::F64);
      F.aload(Tb, Re, J, Type::F64);
      F.astore(Re, I, Tb, Type::F64);
      F.astore(Re, J, Ta, Type::F64);
      F.aload(Ta, Im, I, Type::F64);
      F.aload(Tb, Im, J, Type::F64);
      F.astore(Im, I, Tb, Type::F64);
      F.astore(Im, J, Ta, Type::F64);
      F.bind(NoSwap);
      F.shrI(Mm, M, One);
      auto WHead = F.newLabel(), WDone = F.newLabel();
      F.bind(WHead);
      F.ifLt(Mm, One, WDone);
      F.ifLt(J, Mm, WDone);
      F.subI(J, J, Mm);
      F.shrI(Mm, Mm, One);
      F.jump(WHead);
      F.bind(WDone);
      F.addI(J, J, Mm);
      F.addI(I, I, One);
      F.jump(Head);
      F.bind(Done);
    }

    // Butterfly stages.
    RegIdx Len = F.newReg();
    F.constI(Len, 2);
    auto LenHead = F.newLabel(), LenDone = F.newLabel();
    F.bind(LenHead);
    F.ifGt(Len, M, LenDone);
    {
      RegIdx Ang = F.newReg(), T = F.newReg(), Wre = F.newReg(),
             Wim = F.newReg();
      RegIdx MinusTwoPi = F.immF(-6.283185307179586);
      F.i2f(T, Len);
      F.divF(Ang, MinusTwoPi, T);
      F.i2f(T, Dir);
      F.mulF(Ang, Ang, T);
      F.invokeNative(Wre, N.Cos, {Ang});
      F.invokeNative(Wim, N.Sin, {Ang});

      RegIdx Ii = F.newReg();
      F.constI(Ii, 0);
      auto BlockHead = F.newLabel(), BlockDone = F.newLabel();
      F.bind(BlockHead);
      F.ifGe(Ii, M, BlockDone);
      RegIdx Cre = F.newReg(), Cim = F.newReg();
      F.constF(Cre, 1.0);
      F.constF(Cim, 0.0);
      RegIdx Half = F.newReg(), K = F.newReg();
      F.shrI(Half, Len, One);
      F.constI(K, 0);
      auto BflyHead = F.newLabel(), BflyDone = F.newLabel();
      F.bind(BflyHead);
      F.ifGe(K, Half, BflyDone);
      {
        RegIdx A = F.newReg(), Bb = F.newReg();
        F.addI(A, Ii, K);
        F.addI(Bb, A, Half);
        RegIdx Are = F.newReg(), Aim = F.newReg(), Bre = F.newReg(),
               Bim = F.newReg();
        F.aload(Are, Re, A, Type::F64);
        F.aload(Aim, Im, A, Type::F64);
        F.aload(Bre, Re, Bb, Type::F64);
        F.aload(Bim, Im, Bb, Type::F64);
        RegIdx Tre = F.newReg(), Tim = F.newReg(), P1 = F.newReg(),
               P2 = F.newReg();
        F.mulF(P1, Bre, Cre);
        F.mulF(P2, Bim, Cim);
        F.subF(Tre, P1, P2);
        F.mulF(P1, Bre, Cim);
        F.mulF(P2, Bim, Cre);
        F.addF(Tim, P1, P2);
        RegIdx Sre = F.newReg(), Sim = F.newReg();
        F.addF(Sre, Are, Tre);
        F.addF(Sim, Aim, Tim);
        F.astore(Re, A, Sre, Type::F64);
        F.astore(Im, A, Sim, Type::F64);
        F.subF(Sre, Are, Tre);
        F.subF(Sim, Aim, Tim);
        F.astore(Re, Bb, Sre, Type::F64);
        F.astore(Im, Bb, Sim, Type::F64);
        F.mulF(P1, Cre, Wre);
        F.mulF(P2, Cim, Wim);
        F.subF(Tre, P1, P2);
        F.mulF(P1, Cre, Wim);
        F.mulF(P2, Cim, Wre);
        F.addF(Tim, P1, P2);
        F.move(Cre, Tre);
        F.move(Cim, Tim);
      }
      F.addI(K, K, One);
      F.jump(BflyHead);
      F.bind(BflyDone);
      F.addI(Ii, Ii, Len);
      F.jump(BlockHead);
      F.bind(BlockDone);
    }
    F.shlI(Len, Len, One);
    F.jump(LenHead);
    F.bind(LenDone);
    F.retVoid();
    B.endBody(F);
  }

  { // fftKernel(param): refill, forward + inverse transform, digest.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Re = F.newReg(), Im = F.newReg(), Limit = F.newReg();
    F.getStatic(Re, ReF);
    F.getStatic(Im, ImF);
    F.arrayLen(Limit, Re);
    RegIdx M = F.newReg();
    emitPow2Clamp(F, M, F.param(0), Limit);

    // Refill with deterministic pseudo-random coefficients.
    RegIdx Seed = F.newReg(), Mul = F.immI(2654435761LL), One = F.immI(1);
    F.mulI(Seed, F.param(0), Mul);
    F.addI(Seed, Seed, One);
    RegIdx I = F.newReg(), Zero = F.immF(0.0), Scale = F.immF(1.0 / 2147483648.0);
    emitCountedLoop(F, I, M, [&] {
      RegIdx Draw = F.newReg(), D = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(D, Draw);
      F.mulF(D, D, Scale);
      F.astore(Re, I, D, Type::F64);
      F.astore(Im, I, Zero, Type::F64);
    });

    RegIdx Dir = F.newReg();
    F.constI(Dir, 1);
    F.invokeStatic(NoReg, Core, {M, Dir});
    F.constI(Dir, -1);
    F.invokeStatic(NoReg, Core, {M, Dir});

    // Digest: sum of coefficients (inverse transform un-normalized).
    RegIdx Sum = F.newReg(), V = F.newReg();
    F.constF(Sum, 0.0);
    emitCountedLoop(F, I, M, [&] {
      F.aload(V, Re, I, Type::F64);
      F.addF(Sum, Sum, V);
      F.aload(V, Im, I, Type::F64);
      F.addF(Sum, Sum, V);
    });
    RegIdx Out = F.newReg();
    F.f2i(Out, Sum);
    emitScratchTouch(F, Scratch, Out);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "FFT";
  App.RtConfig.HeapLimitBytes = 14 * 1024 * 1024;
  App.Kind = Suite::Scimark;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 512;   // FFT_SIZE_LARGE
  App.DefaultParam = 512;
  App.MinParam = 64;     // FFT_SIZE
  App.MaxParam = 512;
  return App;
}

// --- SOR ------------------------------------------------------------------------

Application workloads::buildSOR() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("SOR");
  StaticFieldId GridF = B.addStaticField(State, "grid", Type::Ref);
  StaticFieldId SizeF = B.addStaticField(State, "n", Type::I64);
  ScratchBuffer Scratch = addScratch(B, 40);
  ColdPool Pool = addColdPool(B, 3LL * 1024 * 1024);
  constexpr int64_t GridN = 48;

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "sorKernel", 1, true);

  { // init(n): n x n grid, LCG-filled.
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Nn = F.param(0), Size = F.newReg(), Grid = F.newReg();
    F.mulI(Size, Nn, Nn);
    F.newArray(Grid, Size, Type::F64);
    RegIdx Seed = F.immI(12345), I = F.newReg(),
           Scale = F.immF(1.0 / 2147483648.0);
    emitCountedLoop(F, I, Size, [&] {
      RegIdx Draw = F.newReg(), D = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(D, Draw);
      F.mulF(D, D, Scale);
      F.astore(Grid, I, D, Type::F64);
    });
    F.putStatic(GridF, Grid);
    F.putStatic(SizeF, Nn);
    emitScratchInit(F, Scratch);
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }

  { // sorKernel(iters): Jacobi successive over-relaxation sweeps.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Iters = F.newReg(), Four = F.immI(4), One = F.immI(1);
    F.remI(Iters, F.param(0), Four);
    F.addI(Iters, Iters, One); // 1..4 sweeps
    RegIdx Grid = F.newReg(), Nn = F.newReg();
    F.getStatic(Grid, GridF);
    F.getStatic(Nn, SizeF);
    RegIdx NMinus1 = F.newReg();
    F.subI(NMinus1, Nn, One);

    RegIdx OmegaOver4 = F.immF(1.25 * 0.25),
           OneMinusOmega = F.immF(1.0 - 1.25);
    RegIdx P = F.newReg();
    emitCountedLoop(F, P, Iters, [&] {
      RegIdx I = F.newReg();
      F.constI(I, 1);
      auto IHead = F.newLabel(), IDone = F.newLabel();
      F.bind(IHead);
      F.ifGe(I, NMinus1, IDone);
      {
        RegIdx RowBase = F.newReg(), J = F.newReg();
        F.mulI(RowBase, I, Nn);
        F.constI(J, 1);
        auto JHead = F.newLabel(), JDone = F.newLabel();
        F.bind(JHead);
        F.ifGe(J, NMinus1, JDone);
        {
          RegIdx Idx = F.newReg(), Up = F.newReg(), Down = F.newReg(),
                 Left = F.newReg(), Right = F.newReg(), T = F.newReg();
          F.addI(Idx, RowBase, J);
          F.subI(T, Idx, Nn);
          F.aload(Up, Grid, T, Type::F64);
          F.addI(T, Idx, Nn);
          F.aload(Down, Grid, T, Type::F64);
          F.subI(T, Idx, One);
          F.aload(Left, Grid, T, Type::F64);
          F.addI(T, Idx, One);
          F.aload(Right, Grid, T, Type::F64);
          RegIdx Acc = F.newReg(), Cur = F.newReg();
          F.addF(Acc, Up, Down);
          F.addF(Acc, Acc, Left);
          F.addF(Acc, Acc, Right);
          F.mulF(Acc, Acc, OmegaOver4);
          F.aload(Cur, Grid, Idx, Type::F64);
          F.mulF(Cur, Cur, OneMinusOmega);
          F.addF(Acc, Acc, Cur);
          F.astore(Grid, Idx, Acc, Type::F64);
        }
        F.addI(J, J, One);
        F.jump(JHead);
        F.bind(JDone);
      }
      F.addI(I, I, One);
      F.jump(IHead);
      F.bind(IDone);
    });

    // Digest: scaled center value.
    RegIdx Idx = F.newReg(), V = F.newReg(), Million = F.immF(1e6);
    F.mulI(Idx, Nn, Nn);
    RegIdx Two = F.immI(2);
    F.divI(Idx, Idx, Two);
    F.aload(V, Grid, Idx, Type::F64);
    F.mulF(V, V, Million);
    RegIdx Out = F.newReg();
    F.f2i(Out, V);
    emitScratchTouch(F, Scratch, Out);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "SOR";
  App.RtConfig.HeapLimitBytes = 12 * 1024 * 1024;
  App.Kind = Suite::Scimark;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = GridN;
  App.DefaultParam = 3;
  App.MinParam = 1;
  App.MaxParam = 8;
  return App;
}

// --- MonteCarlo -------------------------------------------------------------------

Application workloads::buildMonteCarlo() {
  DexBuilder B;
  CommonNatives N(B);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "mcKernel", 1, true);
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);

  { // init: nothing persistent.
    FunctionBuilder F = B.beginBody(Init);
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }

  { // mcKernel(samples): estimate pi with an in-code LCG (replayable).
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Samples = F.newReg(), Floor = F.immI(2000), Mask = F.immI(8191);
    F.andI(Samples, F.param(0), Mask);
    F.addI(Samples, Samples, Floor); // 2000..10191 samples
    RegIdx Seed = F.newReg(), SeedMul = F.immI(77), One = F.immI(1);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);

    RegIdx Hits = F.newReg(), I = F.newReg(),
           Scale = F.immF(1.0 / 2147483648.0), OneF = F.immF(1.0);
    F.constI(Hits, 0);
    emitCountedLoop(F, I, Samples, [&] {
      RegIdx Draw = F.newReg(), X = F.newReg(), Y = F.newReg(),
             D = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(X, Draw);
      F.mulF(X, X, Scale);
      emitLcgStep(F, Seed, Draw);
      F.i2f(Y, Draw);
      F.mulF(Y, Y, Scale);
      RegIdx X2 = F.newReg(), Y2 = F.newReg();
      F.mulF(X2, X, X);
      F.mulF(Y2, Y, Y);
      F.addF(D, X2, Y2);
      RegIdx Cmp = F.newReg();
      F.cmpF(Cmp, D, OneF);
      auto Miss = F.newLabel();
      F.ifGtz(Cmp, Miss);
      F.addI(Hits, Hits, One);
      F.bind(Miss);
    });

    // Return round(4e6 * hits / samples) — pi in micro-units.
    RegIdx H = F.newReg(), S = F.newReg(), Pi = F.newReg(),
           FourMillion = F.immF(4e6);
    F.i2f(H, Hits);
    F.i2f(S, Samples);
    F.divF(Pi, H, S);
    F.mulF(Pi, Pi, FourMillion);
    RegIdx Out = F.newReg();
    F.f2i(Out, Pi);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "MonteCarlo";
  App.RtConfig.HeapLimitBytes = 8 * 1024 * 1024;
  App.Kind = Suite::Scimark;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 0;
  App.DefaultParam = 5000;
  App.MinParam = 100;
  App.MaxParam = 9000;
  return App;
}

// --- SparseMatmult -----------------------------------------------------------------

Application workloads::buildSparseMatmult() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("Sparse");
  StaticFieldId ValF = B.addStaticField(State, "val", Type::Ref);
  StaticFieldId ColF = B.addStaticField(State, "col", Type::Ref);
  StaticFieldId RowF = B.addStaticField(State, "row", Type::Ref);
  StaticFieldId XF = B.addStaticField(State, "x", Type::Ref);
  StaticFieldId YF = B.addStaticField(State, "y", Type::Ref);
  constexpr int64_t Rows = 600;
  ColdPool Pool = addColdPool(B, 2LL * 1024 * 1024);
  constexpr int64_t PerRow = 5;

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "spKernel", 1, true);

  { // init(rows): CRS structure with PerRow entries per row.
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Nn = F.param(0), Nz = F.newReg(), K = F.immI(PerRow),
           One = F.immI(1);
    F.mulI(Nz, Nn, K);
    RegIdx Val = F.newReg(), Col = F.newReg(), Row = F.newReg(),
           X = F.newReg(), Y = F.newReg(), RowLen = F.newReg();
    F.newArray(Val, Nz, Type::F64);
    F.newArray(Col, Nz, Type::I64);
    F.addI(RowLen, Nn, One);
    F.newArray(Row, RowLen, Type::I64);
    F.newArray(X, Nn, Type::F64);
    F.newArray(Y, Nn, Type::F64);

    RegIdx Seed = F.immI(424242), I = F.newReg(),
           Scale = F.immF(1.0 / 2147483648.0);
    emitCountedLoop(F, I, Nz, [&] {
      RegIdx Draw = F.newReg(), D = F.newReg(), C = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(D, Draw);
      F.mulF(D, D, Scale);
      F.astore(Val, I, D, Type::F64);
      emitLcgStep(F, Seed, Draw);
      F.remI(C, Draw, Nn); // indirection: scattered columns
      F.astore(Col, I, C, Type::I64);
    });
    emitCountedLoop(F, I, Nn, [&] {
      RegIdx D = F.newReg(), T = F.newReg();
      F.i2f(D, I);
      F.astore(X, I, D, Type::F64);
      F.mulI(T, I, K);
      F.astore(Row, I, T, Type::I64);
    });
    RegIdx T = F.newReg();
    F.mulI(T, Nn, K);
    F.astore(Row, Nn, T, Type::I64);

    F.putStatic(ValF, Val);
    F.putStatic(ColF, Col);
    F.putStatic(RowF, Row);
    F.putStatic(XF, X);
    emitColdPoolInit(F, Pool);
    F.putStatic(YF, Y);
    F.retVoid();
    B.endBody(F);
  }

  { // spKernel(rounds): y = A * x, `rounds` times; digest y.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Rounds = F.newReg(), Seven = F.immI(7), One = F.immI(1);
    F.remI(Rounds, F.param(0), Seven);
    F.addI(Rounds, Rounds, One);
    RegIdx Val = F.newReg(), Col = F.newReg(), Row = F.newReg(),
           X = F.newReg(), Y = F.newReg(), Nn = F.newReg();
    F.getStatic(Val, ValF);
    F.getStatic(Col, ColF);
    F.getStatic(Row, RowF);
    F.getStatic(X, XF);
    F.getStatic(Y, YF);
    F.arrayLen(Nn, X);

    RegIdx R = F.newReg();
    emitCountedLoop(F, R, Rounds, [&] {
      RegIdx I = F.newReg();
      emitCountedLoop(F, I, Nn, [&] {
        RegIdx Lo = F.newReg(), Hi = F.newReg(), Acc = F.newReg(),
               Ip1 = F.newReg();
        F.aload(Lo, Row, I, Type::I64);
        F.addI(Ip1, I, One);
        F.aload(Hi, Row, Ip1, Type::I64);
        F.constF(Acc, 0.0);
        auto KHead = F.newLabel(), KDone = F.newLabel();
        F.bind(KHead);
        F.ifGe(Lo, Hi, KDone);
        RegIdx C = F.newReg(), A = F.newReg(), Xv = F.newReg(),
               P = F.newReg();
        F.aload(C, Col, Lo, Type::I64);
        F.aload(A, Val, Lo, Type::F64);
        F.aload(Xv, X, C, Type::F64);
        F.mulF(P, A, Xv);
        F.addF(Acc, Acc, P);
        F.addI(Lo, Lo, One);
        F.jump(KHead);
        F.bind(KDone);
        F.astore(Y, I, Acc, Type::F64);
      });
    });

    RegIdx Sum = F.newReg(), I = F.newReg(), V = F.newReg();
    F.constF(Sum, 0.0);
    emitCountedLoop(F, I, Nn, [&] {
      F.aload(V, Y, I, Type::F64);
      F.addF(Sum, Sum, V);
    });
    RegIdx Out = F.newReg();
    F.f2i(Out, Sum);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Sparse matmult";
  App.RtConfig.HeapLimitBytes = 12 * 1024 * 1024;
  App.Kind = Suite::Scimark;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = Rows;
  App.DefaultParam = 4;
  App.MinParam = 1;
  App.MaxParam = 14;
  return App;
}

// --- LU --------------------------------------------------------------------------

Application workloads::buildLU() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("LU");
  StaticFieldId MatF = B.addStaticField(State, "a", Type::Ref);
  StaticFieldId SizeF = B.addStaticField(State, "n", Type::I64);
  constexpr int64_t MatN = 26;
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "luKernel", 1, true);

  { // init(n).
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Nn = F.param(0), Size = F.newReg(), A = F.newReg();
    F.mulI(Size, Nn, Nn);
    F.newArray(A, Size, Type::F64);
    emitColdPoolInit(F, Pool);
    F.putStatic(MatF, A);
    F.putStatic(SizeF, Nn);
    F.retVoid();
    B.endBody(F);
  }

  { // luKernel(param): refill the matrix, factor in place, digest diag.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx A = F.newReg(), Nn = F.newReg(), One = F.immI(1);
    F.getStatic(A, MatF);
    F.getStatic(Nn, SizeF);
    RegIdx Size = F.newReg();
    F.mulI(Size, Nn, Nn);

    // Refill (diagonally dominant so pivoting stays benign).
    RegIdx Seed = F.newReg(), SeedMul = F.immI(97), I = F.newReg(),
           Scale = F.immF(1.0 / 2147483648.0);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);
    emitCountedLoop(F, I, Size, [&] {
      RegIdx Draw = F.newReg(), D = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(D, Draw);
      F.mulF(D, D, Scale);
      F.astore(A, I, D, Type::F64);
    });
    RegIdx DiagBoost = F.immF(double(MatN) + 1.0);
    emitCountedLoop(F, I, Nn, [&] {
      RegIdx Idx = F.newReg(), V = F.newReg();
      F.mulI(Idx, I, Nn);
      F.addI(Idx, Idx, I);
      F.aload(V, A, Idx, Type::F64);
      F.addF(V, V, DiagBoost);
      F.astore(A, Idx, V, Type::F64);
    });

    // In-place LU (no pivoting needed for a diagonally dominant matrix).
    RegIdx K = F.newReg();
    emitCountedLoop(F, K, Nn, [&] {
      RegIdx Kk = F.newReg(), Pivot = F.newReg();
      F.mulI(Kk, K, Nn);
      F.addI(Kk, Kk, K);
      F.aload(Pivot, A, Kk, Type::F64);
      RegIdx Ii = F.newReg();
      F.addI(Ii, K, One);
      auto IHead = F.newLabel(), IDone = F.newLabel();
      F.bind(IHead);
      F.ifGe(Ii, Nn, IDone);
      {
        RegIdx Ik = F.newReg(), L = F.newReg();
        F.mulI(Ik, Ii, Nn);
        F.addI(Ik, Ik, K);
        F.aload(L, A, Ik, Type::F64);
        F.divF(L, L, Pivot);
        F.astore(A, Ik, L, Type::F64);
        RegIdx Jj = F.newReg();
        F.addI(Jj, K, One);
        auto JHead = F.newLabel(), JDone = F.newLabel();
        F.bind(JHead);
        F.ifGe(Jj, Nn, JDone);
        {
          RegIdx Ij = F.newReg(), Kj = F.newReg(), Va = F.newReg(),
                 Vb = F.newReg(), P = F.newReg();
          F.mulI(Ij, Ii, Nn);
          F.addI(Ij, Ij, Jj);
          F.mulI(Kj, K, Nn);
          F.addI(Kj, Kj, Jj);
          F.aload(Va, A, Ij, Type::F64);
          F.aload(Vb, A, Kj, Type::F64);
          F.mulF(P, L, Vb);
          F.subF(Va, Va, P);
          F.astore(A, Ij, Va, Type::F64);
        }
        F.addI(Jj, Jj, One);
        F.jump(JHead);
        F.bind(JDone);
      }
      F.addI(Ii, Ii, One);
      F.jump(IHead);
      F.bind(IDone);
    });

    // Digest: product-of-diagonal-ish sum.
    RegIdx Sum = F.newReg(), Thousand = F.immF(1000.0);
    F.constF(Sum, 0.0);
    emitCountedLoop(F, I, Nn, [&] {
      RegIdx Idx = F.newReg(), V = F.newReg();
      F.mulI(Idx, I, Nn);
      F.addI(Idx, Idx, I);
      F.aload(V, A, Idx, Type::F64);
      F.addF(Sum, Sum, V);
    });
    F.mulF(Sum, Sum, Thousand);
    RegIdx Out = F.newReg();
    F.f2i(Out, Sum);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "LU";
  App.RtConfig.HeapLimitBytes = 10 * 1024 * 1024;
  App.Kind = Suite::Scimark;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = MatN;
  App.DefaultParam = 11;
  App.MinParam = 1;
  App.MaxParam = 1000;
  return App;
}
