//===- workloads/Workloads.h - The 21 Table-1 applications ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application suite of Table 1: the six Scimark kernels, six
/// benchmarks used historically to evaluate the Android compiler ("Art"),
/// and nine interactive applications modelled as faithful-in-structure
/// miniatures (hot deterministic kernels + JNI drawing/vibration + scripted
/// user input + unreplayable/uncompilable corners), sized so the paper's
/// code-breakdown and storage shapes hold (DESIGN.md §2).
///
/// Every application follows the same protocol:
///   init(InitParam)      — builds persistent state (boards, arrays).
///   session(Param)       — one conceptual main-loop iteration (a player
///                          round for games); may do I/O and read input.
///   a hot kernel reached from session() — replayable, compute-bound; this
///   is what the profiler finds and the capture targets.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_WORKLOADS_WORKLOADS_H
#define ROPT_WORKLOADS_WORKLOADS_H

#include "dex/DexFile.h"
#include "vm/Runtime.h"

#include <memory>
#include <string>
#include <vector>

namespace ropt {
namespace workloads {

/// Table 1's three suite groups.
enum class Suite { Scimark, Art, Interactive };

const char *suiteName(Suite S);

/// One runnable application.
struct Application {
  std::string Name;
  Suite Kind = Suite::Scimark;
  std::shared_ptr<dex::DexFile> File;

  dex::MethodId InitEntry = dex::InvalidId;
  dex::MethodId SessionEntry = dex::InvalidId;

  int64_t InitParam = 0;
  /// The fixed "offline" input and the online variability range
  /// (session parameter drawn uniformly in [MinParam, MaxParam]).
  int64_t DefaultParam = 0;
  int64_t MinParam = 0;
  int64_t MaxParam = 0;

  /// Scripted user inputs queued before each session (interactive apps).
  uint32_t InputsPerSession = 0;

  /// Per-app runtime sizing (heap footprints vary across Table 1).
  vm::RuntimeConfig RtConfig;

  std::vector<vm::Value> argsFor(int64_t Param) const {
    return {vm::Value::fromI64(Param)};
  }
};

// --- Scimark ------------------------------------------------------------
Application buildFFT();
Application buildSOR();
Application buildMonteCarlo();
Application buildSparseMatmult();
Application buildLU();

// --- Art benchmarks -------------------------------------------------------
Application buildSieve();
Application buildBubbleSort();
Application buildSelectionSort();
Application buildLinpack();
Application buildFibonacciIter();
Application buildFibonacciRecv();
Application buildDhrystone();

// --- Interactive applications ----------------------------------------------
Application buildMaterialLife();
Application buildFourInARow();
Application buildDroidFish();
Application buildColorOverflow();
Application buildBrainstonz();
Application buildBlokish();
Application buildSvarkaCalculator();
Application buildReversi();
Application buildPokerOdds();

/// All 21, in Table-1 order.
std::vector<Application> buildSuite();

/// Lookup by name; aborts on unknown names.
Application buildByName(const std::string &Name);

} // namespace workloads
} // namespace ropt

#endif // ROPT_WORKLOADS_WORKLOADS_H
