//===- workloads/ArtBenchmarks.cpp - The six "Art" benchmarks ---------------===//
//
// Sieve, BubbleSort, SelectionSort, Linpack, Fibonacci (iterative and
// recursive), and Dhrystone — the benchmarks historically used to evaluate
// the Android compiler (Table 1).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/BuilderUtil.h"

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::workloads;

namespace {

MethodId makeSession(DexBuilder &B, const CommonNatives &N,
                     MethodId Kernel) {
  // Cold bookkeeping: replayable, compilable, but outside the hot region.
  MethodId Cold = B.declareFunction(InvalidId, "coldBookkeeping", 1, true);
  {
    FunctionBuilder F = B.beginBody(Cold);
    RegIdx Acc = F.newReg(), I = F.newReg(), Rounds = F.immI(900),
           Five = F.immI(5);
    F.constI(Acc, 0);
    emitCountedLoop(F, I, Rounds, [&] {
      RegIdx T = F.newReg();
      F.xorI(T, F.param(0), I);
      F.remI(T, T, Five);
      F.addI(Acc, Acc, T);
    });
    F.ret(Acc);
    B.endBody(F);
  }
  MethodId Session = B.declareFunction(InvalidId, "session", 1, true);
  FunctionBuilder F = B.beginBody(Session);
  RegIdx R = F.newReg(), C = F.newReg();
  F.invokeStatic(R, Kernel, {F.param(0)});
  F.invokeStatic(C, Cold, {R});
  F.addI(R, R, C);
  F.invokeNative(NoReg, N.Print, {R});
  F.ret(R);
  B.endBody(F);
  return Session;
}

/// Declares init(n) allocating one static i64 array of n elements.
MethodId makeArrayInit(DexBuilder &B, StaticFieldId ArrF) {
  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  FunctionBuilder F = B.beginBody(Init);
  RegIdx Arr = F.newReg();
  F.newArray(Arr, F.param(0), Type::I64);
  F.putStatic(ArrF, Arr);
  F.retVoid();
  B.endBody(F);
  return Init;
}

/// Emits: refill Arr with LCG values seeded by Seed0 (an i64 register).
void emitRefill(FunctionBuilder &F, RegIdx Arr, RegIdx Seed) {
  RegIdx Len = F.newReg(), I = F.newReg();
  F.arrayLen(Len, Arr);
  emitCountedLoop(F, I, Len, [&] {
    RegIdx Draw = F.newReg();
    emitLcgStep(F, Seed, Draw);
    F.astore(Arr, I, Draw, Type::I64);
  });
}

} // namespace

// --- Sieve -----------------------------------------------------------------------

Application workloads::buildSieve() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("Sieve");
  StaticFieldId FlagsF = B.addStaticField(State, "flags", Type::Ref);
  ScratchBuffer Scratch = addScratch(B, 16);
  ColdPool Pool = addColdPool(B, 2LL * 1024 * 1024);

  MethodId InitPlain = makeArrayInit(B, FlagsF);
  MethodId Init = B.declareFunction(InvalidId, "initAll", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    F.invokeStatic(NoReg, InitPlain, {F.param(0)});
    emitColdPoolInit(F, Pool);
    emitScratchInit(F, Scratch);
    F.retVoid();
    B.endBody(F);
  }
  MethodId Kernel = B.declareFunction(InvalidId, "sieveKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Flags = F.newReg(), Len = F.newReg(), Limit = F.newReg(),
           One = F.immI(1), Floor = F.immI(512);
    F.getStatic(Flags, FlagsF);
    F.arrayLen(Len, Flags);
    // limit = clamp(param, 512, len)
    F.move(Limit, F.param(0));
    auto AboveFloor = F.newLabel(), Clamped = F.newLabel();
    F.ifGe(Limit, Floor, AboveFloor);
    F.move(Limit, Floor);
    F.bind(AboveFloor);
    F.ifLe(Limit, Len, Clamped);
    F.move(Limit, Len);
    F.bind(Clamped);

    RegIdx I = F.newReg();
    emitCountedLoop(F, I, Limit, [&] {
      F.astore(Flags, I, One, Type::I64);
    });
    RegIdx Count = F.newReg(), P = F.newReg(), Two = F.immI(2);
    F.constI(Count, 0);
    F.constI(P, 2);
    auto PHead = F.newLabel(), PDone = F.newLabel();
    F.bind(PHead);
    F.ifGe(P, Limit, PDone);
    {
      RegIdx Flag = F.newReg();
      F.aload(Flag, Flags, P, Type::I64);
      auto NotPrime = F.newLabel();
      F.ifEqz(Flag, NotPrime);
      F.addI(Count, Count, One);
      RegIdx M = F.newReg(), Zero = F.immI(0);
      F.mulI(M, P, Two);
      auto MHead = F.newLabel(), MDone = F.newLabel();
      F.bind(MHead);
      F.ifGe(M, Limit, MDone);
      F.astore(Flags, M, Zero, Type::I64);
      F.addI(M, M, P);
      F.jump(MHead);
      F.bind(MDone);
      F.bind(NotPrime);
    }
    F.addI(P, P, One);
    F.jump(PHead);
    F.bind(PDone);
    emitScratchTouch(F, Scratch, Count);
    F.ret(Count);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Sieve";
  App.RtConfig.HeapLimitBytes = 12 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 6000;
  App.DefaultParam = 6000;
  App.MinParam = 512;
  App.MaxParam = 6000;
  return App;
}

// --- BubbleSort --------------------------------------------------------------------

Application workloads::buildBubbleSort() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("BubbleSort");
  StaticFieldId ArrF = B.addStaticField(State, "data", Type::Ref);
  ScratchBuffer Scratch = addScratch(B, 200);
  ColdPool Pool = addColdPool(B, 8LL * 1024 * 1024);

  MethodId InitPlain = makeArrayInit(B, ArrF);
  MethodId Init = B.declareFunction(InvalidId, "initAll", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    F.invokeStatic(NoReg, InitPlain, {F.param(0)});
    emitScratchInit(F, Scratch);
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }
  MethodId Kernel = B.declareFunction(InvalidId, "bubbleKernel", 1, true);
  {
    // bubbleKernel(param): refill the whole array (heavy write traffic —
    // the Figure-10 CoW-outlier), then run (param % 4 + 3) bubble passes.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Arr = F.newReg(), Len = F.newReg(), One = F.immI(1);
    F.getStatic(Arr, ArrF);
    F.arrayLen(Len, Arr);
    RegIdx Seed = F.newReg(), SeedMul = F.immI(31);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);
    emitRefill(F, Arr, Seed);

    RegIdx Passes = F.newReg(), FourI = F.immI(4), Three = F.immI(3);
    F.remI(Passes, F.param(0), FourI);
    F.addI(Passes, Passes, Three);
    RegIdx LenM1 = F.newReg();
    F.subI(LenM1, Len, One);

    RegIdx Swaps = F.newReg(), P = F.newReg();
    F.constI(Swaps, 0);
    emitCountedLoop(F, P, Passes, [&] {
      RegIdx I = F.newReg();
      emitCountedLoop(F, I, LenM1, [&] {
        RegIdx A = F.newReg(), Bv = F.newReg(), Ip1 = F.newReg();
        F.addI(Ip1, I, One);
        F.aload(A, Arr, I, Type::I64);
        F.aload(Bv, Arr, Ip1, Type::I64);
        auto NoSwap = F.newLabel();
        F.ifLe(A, Bv, NoSwap);
        F.astore(Arr, I, Bv, Type::I64);
        F.astore(Arr, Ip1, A, Type::I64);
        F.addI(Swaps, Swaps, One);
        F.bind(NoSwap);
      });
    });
    emitScratchTouch(F, Scratch, Swaps);
    F.ret(Swaps);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "BubbleSort";
  App.RtConfig.HeapLimitBytes = 16 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 6000; // ~12 pages of array rewritten per kernel run
  App.DefaultParam = 5;
  App.MinParam = 1;
  App.MaxParam = 1000;
  return App;
}

// --- SelectionSort ------------------------------------------------------------------

Application workloads::buildSelectionSort() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("SelectionSort");
  StaticFieldId ArrF = B.addStaticField(State, "data", Type::Ref);
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);

  MethodId InitPlain2 = makeArrayInit(B, ArrF);
  MethodId Init = B.declareFunction(InvalidId, "initAll", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    F.invokeStatic(NoReg, InitPlain2, {F.param(0)});
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }
  MethodId Kernel =
      B.declareFunction(InvalidId, "selectionKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Arr = F.newReg(), Len = F.newReg(), One = F.immI(1);
    F.getStatic(Arr, ArrF);
    F.arrayLen(Len, Arr);
    RegIdx Seed = F.newReg(), SeedMul = F.immI(17);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);
    emitRefill(F, Arr, Seed);

    RegIdx I = F.newReg(), LenM1 = F.newReg();
    F.subI(LenM1, Len, One);
    emitCountedLoop(F, I, LenM1, [&] {
      RegIdx Min = F.newReg(), MinIdx = F.newReg(), J = F.newReg();
      F.aload(Min, Arr, I, Type::I64);
      F.move(MinIdx, I);
      F.addI(J, I, One);
      auto JHead = F.newLabel(), JDone = F.newLabel();
      F.bind(JHead);
      F.ifGe(J, Len, JDone);
      RegIdx V = F.newReg();
      F.aload(V, Arr, J, Type::I64);
      auto NotSmaller = F.newLabel();
      F.ifGe(V, Min, NotSmaller);
      F.move(Min, V);
      F.move(MinIdx, J);
      F.bind(NotSmaller);
      F.addI(J, J, One);
      F.jump(JHead);
      F.bind(JDone);
      RegIdx Tmp = F.newReg();
      F.aload(Tmp, Arr, I, Type::I64);
      F.astore(Arr, MinIdx, Tmp, Type::I64);
      F.astore(Arr, I, Min, Type::I64);
    });

    // Digest: middle element after sorting.
    RegIdx Mid = F.newReg(), Two = F.immI(2), Out = F.newReg();
    F.divI(Mid, Len, Two);
    F.aload(Out, Arr, Mid, Type::I64);
    F.ret(Out);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "SelectionSort";
  App.RtConfig.HeapLimitBytes = 10 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 220;
  App.DefaultParam = 9;
  App.MinParam = 1;
  App.MaxParam = 1000;
  return App;
}

// --- Linpack ------------------------------------------------------------------------

Application workloads::buildLinpack() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId State = B.addClass("Linpack");
  StaticFieldId MatF = B.addStaticField(State, "a", Type::Ref);
  StaticFieldId SizeF = B.addStaticField(State, "n", Type::I64);
  constexpr int64_t MatN = 24;

  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);
  // daxpy(base1, base2, count, scaleBits): a[base1+k] += scale*a[base2+k].
  // A separate static function — Linpack's structure rewards inlining.
  MethodId Daxpy = B.declareFunction(InvalidId, "daxpy", 4, false);
  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "linpackKernel", 1, true);

  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Nn = F.param(0), Size = F.newReg(), A = F.newReg();
    F.mulI(Size, Nn, Nn);
    F.newArray(A, Size, Type::F64);
    F.putStatic(MatF, A);
    F.putStatic(SizeF, Nn);
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }

  {
    FunctionBuilder F = B.beginBody(Daxpy);
    RegIdx Base1 = F.param(0), Base2 = F.param(1), Count = F.param(2),
           ScaleBits = F.param(3);
    RegIdx A = F.newReg(), K = F.newReg(), One = F.immI(1);
    (void)One;
    F.getStatic(A, MatF);
    // The scale arrives as raw f64 bits in an i64 register.
    RegIdx Scale = F.newReg();
    F.move(Scale, ScaleBits);
    emitCountedLoop(F, K, Count, [&] {
      RegIdx I1 = F.newReg(), I2 = F.newReg(), Va = F.newReg(),
             Vb = F.newReg(), P = F.newReg();
      F.addI(I1, Base1, K);
      F.addI(I2, Base2, K);
      F.aload(Va, A, I1, Type::F64);
      F.aload(Vb, A, I2, Type::F64);
      F.mulF(P, Vb, Scale);
      F.addF(Va, Va, P);
      F.astore(A, I1, Va, Type::F64);
    });
    F.retVoid();
    B.endBody(F);
  }

  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx A = F.newReg(), Nn = F.newReg(), One = F.immI(1);
    F.getStatic(A, MatF);
    F.getStatic(Nn, SizeF);
    RegIdx Size = F.newReg();
    F.mulI(Size, Nn, Nn);

    RegIdx Seed = F.newReg(), SeedMul = F.immI(53), I = F.newReg(),
           Scale = F.immF(1.0 / 2147483648.0);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);
    emitCountedLoop(F, I, Size, [&] {
      RegIdx Draw = F.newReg(), D = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.i2f(D, Draw);
      F.mulF(D, D, Scale);
      F.astore(A, I, D, Type::F64);
    });
    RegIdx DiagBoost = F.immF(double(MatN) + 2.0);
    emitCountedLoop(F, I, Nn, [&] {
      RegIdx Idx = F.newReg(), V = F.newReg();
      F.mulI(Idx, I, Nn);
      F.addI(Idx, Idx, I);
      F.aload(V, A, Idx, Type::F64);
      F.addF(V, V, DiagBoost);
      F.astore(A, Idx, V, Type::F64);
    });

    // Gaussian elimination built on daxpy row updates.
    RegIdx K = F.newReg();
    emitCountedLoop(F, K, Nn, [&] {
      RegIdx Kk = F.newReg(), Pivot = F.newReg();
      F.mulI(Kk, K, Nn);
      F.addI(Kk, Kk, K);
      F.aload(Pivot, A, Kk, Type::F64);
      RegIdx Ii = F.newReg();
      F.addI(Ii, K, One);
      auto IHead = F.newLabel(), IDone = F.newLabel();
      F.bind(IHead);
      F.ifGe(Ii, Nn, IDone);
      {
        RegIdx Ik = F.newReg(), L = F.newReg(), NegL = F.newReg();
        F.mulI(Ik, Ii, Nn);
        F.addI(Ik, Ik, K);
        F.aload(L, A, Ik, Type::F64);
        F.divF(L, L, Pivot);
        F.astore(A, Ik, L, Type::F64);
        F.negF(NegL, L);
        // a[i][k+1..] -= l * a[k][k+1..]
        RegIdx Base1 = F.newReg(), Base2 = F.newReg(), Count = F.newReg();
        F.addI(Base1, Ik, One);
        RegIdx Kk1 = F.newReg();
        F.addI(Kk1, Kk, One);
        F.move(Base2, Kk1);
        F.subI(Count, Nn, K);
        F.subI(Count, Count, One);
        F.invokeStatic(NoReg, Daxpy, {Base1, Base2, Count, NegL});
      }
      F.addI(Ii, Ii, One);
      F.jump(IHead);
      F.bind(IDone);
    });

    RegIdx Sum = F.newReg(), Thousand = F.immF(1000.0);
    F.constF(Sum, 0.0);
    emitCountedLoop(F, I, Nn, [&] {
      RegIdx Idx = F.newReg(), V = F.newReg();
      F.mulI(Idx, I, Nn);
      F.addI(Idx, Idx, I);
      F.aload(V, A, Idx, Type::F64);
      F.addF(Sum, Sum, V);
    });
    F.mulF(Sum, Sum, Thousand);
    RegIdx Out = F.newReg();
    F.f2i(Out, Sum);
    F.ret(Out);
    B.endBody(F);
  }

  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Linpack";
  App.RtConfig.HeapLimitBytes = 12 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = MatN;
  App.DefaultParam = 21;
  App.MinParam = 1;
  App.MaxParam = 1000;
  return App;
}

// --- Fibonacci --------------------------------------------------------------------

Application workloads::buildFibonacciIter() {
  DexBuilder B;
  CommonNatives N(B);
  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    F.retVoid();
    B.endBody(F);
  }
  MethodId Kernel = B.declareFunction(InvalidId, "fibIterKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Steps = F.newReg(), Mask = F.immI(16383), Floor = F.immI(8000);
    F.andI(Steps, F.param(0), Mask);
    F.addI(Steps, Steps, Floor);
    RegIdx A = F.newReg(), Bv = F.newReg(), T = F.newReg(), I = F.newReg();
    F.constI(A, 0);
    F.constI(Bv, 1);
    emitCountedLoop(F, I, Steps, [&] {
      F.addI(T, A, Bv);
      F.move(A, Bv);
      F.move(Bv, T);
    });
    F.ret(A);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Fibonacci.iter";
  App.RtConfig.HeapLimitBytes = 8 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 0;
  App.DefaultParam = 9000;
  App.MinParam = 100;
  App.MaxParam = 16000;
  return App;
}

Application workloads::buildFibonacciRecv() {
  DexBuilder B;
  CommonNatives N(B);
  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    F.retVoid();
    B.endBody(F);
  }
  MethodId Fib = B.declareFunction(InvalidId, "fib", 1, true);
  {
    FunctionBuilder F = B.beginBody(Fib);
    auto BaseCase = F.newLabel();
    RegIdx Two = F.immI(2), One = F.immI(1);
    F.ifLt(F.param(0), Two, BaseCase);
    RegIdx A = F.newReg(), Bv = F.newReg(), T = F.newReg();
    F.subI(T, F.param(0), One);
    F.invokeStatic(A, Fib, {T});
    F.subI(T, T, One);
    F.invokeStatic(Bv, Fib, {T});
    F.addI(A, A, Bv);
    F.ret(A);
    F.bind(BaseCase);
    F.ret(F.param(0));
    B.endBody(F);
  }
  MethodId Kernel = B.declareFunction(InvalidId, "fibRecvKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Nn = F.newReg(), Mask = F.immI(7), Floor = F.immI(14);
    F.andI(Nn, F.param(0), Mask);
    F.addI(Nn, Nn, Floor); // fib(14..21)
    RegIdx R = F.newReg();
    F.invokeStatic(R, Fib, {Nn});
    F.ret(R);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Fibonacci.recv";
  App.RtConfig.HeapLimitBytes = 8 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 0;
  App.DefaultParam = 4; // fib(18)
  App.MinParam = 0;
  App.MaxParam = 1000;
  return App;
}

// --- Dhrystone --------------------------------------------------------------------

Application workloads::buildDhrystone() {
  DexBuilder B;
  CommonNatives N(B);
  ClassId Record = B.addClass("Record");
  FieldId IntComp = B.addField(Record, "intComp", Type::I64);
  FieldId EnumComp = B.addField(Record, "enumComp", Type::I64);
  FieldId NextRef = B.addField(Record, "next", Type::Ref);
  ClassId State = B.addClass("Dhry");
  StaticFieldId GlobF = B.addStaticField(State, "glob", Type::Ref);
  StaticFieldId Arr1F = B.addStaticField(State, "arr1", Type::Ref);

  MethodId Proc7 = B.declareFunction(InvalidId, "proc7", 2, true);
  MethodId Func2 = B.declareFunction(InvalidId, "func2", 2, true);
  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  MethodId Kernel = B.declareFunction(InvalidId, "dhryKernel", 1, true);

  { // proc7(a, b) = a + b + 2 (classic tiny leaf).
    FunctionBuilder F = B.beginBody(Proc7);
    RegIdx Two = F.immI(2), R = F.newReg();
    F.addI(R, F.param(0), F.param(1));
    F.addI(R, R, Two);
    F.ret(R);
    B.endBody(F);
  }
  { // func2(a, b): branchy comparison helper.
    FunctionBuilder F = B.beginBody(Func2);
    RegIdx R = F.newReg(), Seven = F.immI(7);
    auto Gt = F.newLabel();
    F.ifGt(F.param(0), F.param(1), Gt);
    F.addI(R, F.param(1), Seven);
    F.ret(R);
    F.bind(Gt);
    F.subI(R, F.param(0), F.param(1));
    F.ret(R);
    B.endBody(F);
  }
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);
  { // init: two linked records + a 50-element array.
    FunctionBuilder F = B.beginBody(Init);
    RegIdx RecA = F.newReg(), RecB = F.newReg(), Fifty = F.immI(50),
           Arr = F.newReg();
    F.newInstance(RecA, Record);
    F.newInstance(RecB, Record);
    F.putField(RecA, NextRef, RecB);
    F.putStatic(GlobF, RecA);
    F.newArray(Arr, Fifty, Type::I64);
    F.putStatic(Arr1F, Arr);
    emitColdPoolInit(F, Pool);
    F.retVoid();
    B.endBody(F);
  }
  { // dhryKernel(rounds): the classic mixed workload loop.
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Rounds = F.newReg(), Mask = F.immI(4095), Floor = F.immI(1500);
    F.andI(Rounds, F.param(0), Mask);
    F.addI(Rounds, Rounds, Floor);
    RegIdx Glob = F.newReg(), Arr = F.newReg(), One = F.immI(1),
           Three = F.immI(3), Fifty = F.immI(50);
    F.getStatic(Glob, GlobF);
    F.getStatic(Arr, Arr1F);
    RegIdx Sum = F.newReg(), I = F.newReg();
    F.constI(Sum, 0);
    emitCountedLoop(F, I, Rounds, [&] {
      // Record manipulation through the pointer chain.
      RegIdx NextRec = F.newReg(), V = F.newReg();
      F.getField(NextRec, Glob, NextRef);
      F.putField(Glob, IntComp, I);
      F.getField(V, Glob, IntComp);
      F.addI(V, V, Three);
      F.putField(NextRec, IntComp, V);
      F.putField(NextRec, EnumComp, One);
      // Array traffic.
      RegIdx Idx = F.newReg();
      F.remI(Idx, I, Fifty);
      F.astore(Arr, Idx, V, Type::I64);
      RegIdx Back = F.newReg();
      F.aload(Back, Arr, Idx, Type::I64);
      // Calls.
      RegIdx C1 = F.newReg(), C2 = F.newReg();
      F.invokeStatic(C1, Proc7, {Back, I});
      F.invokeStatic(C2, Func2, {C1, Back});
      F.addI(Sum, Sum, C2);
    });
    F.ret(Sum);
    B.endBody(F);
  }
  MethodId Session = makeSession(B, N, Kernel);

  Application App;
  App.Name = "Dhrystone";
  App.RtConfig.HeapLimitBytes = 10 * 1024 * 1024;
  App.Kind = Suite::Art;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = 0;
  App.DefaultParam = 2500;
  App.MinParam = 100;
  App.MaxParam = 5000;
  return App;
}
