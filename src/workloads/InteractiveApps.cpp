//===- workloads/InteractiveApps.cpp - The nine interactive apps ------------===//
//
// Faithful-in-structure miniatures of Table 1's interactive applications:
// a deterministic, compute-bound hot kernel (the capture/replay target)
// surrounded by the messy parts of a real app — JNI drawing and engine
// probes, scripted user input, an uncompilable legacy path, and a
// clock-reading frame pacer — in proportions that reproduce Figure 8's
// runtime code breakdown shapes.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/BuilderUtil.h"

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::workloads;

namespace {

/// Extra natives the interactive apps use.
struct GameNatives {
  NativeId EngineProbe, DecodeAsset;
  explicit GameNatives(DexBuilder &B) {
    EngineProbe =
        B.addNative("engineProbe", 1, true, /*DoesIO=*/true);
    DecodeAsset =
        B.addNative("decodeAsset", 1, true, /*DoesIO=*/true);
  }
};

/// Knobs for the generic session wrapper.
struct SessionSpec {
  uint32_t DrawCalls = 30;
  uint32_t EngineProbes = 0;
  uint32_t AssetDecodes = 0;
  bool UseLegacy = true;
};

/// Builds the canonical interactive session around \p Kernel:
///   mv = readInput(); r = kernel(param + (mv & 3));
///   drawBoard(); [engine probes; asset decodes;] legacy score; frame pace;
///   return r.
MethodId makeInteractiveSession(DexBuilder &B, const CommonNatives &N,
                                const GameNatives &G, MethodId Kernel,
                                const SessionSpec &Spec) {
  // framePace(): reads the clock — non-deterministic, unreplayable.
  MethodId FramePace = B.declareFunction(InvalidId, "framePace", 0, true);
  {
    FunctionBuilder F = B.beginBody(FramePace);
    RegIdx T = F.newReg(), Mask = F.immI(1023);
    F.invokeNative(T, N.CurrentTimeMillis, {});
    F.andI(T, T, Mask);
    F.ret(T);
    B.endBody(F);
  }

  // legacyScore(x): an Android-compiler pathological case — runs
  // interpreted forever (MF_Uncompilable).
  MethodId Legacy = B.declareFunction(InvalidId, "legacyScore", 1, true,
                                      MF_Uncompilable);
  {
    FunctionBuilder F = B.beginBody(Legacy);
    RegIdx Acc = F.newReg(), I = F.newReg(), Count = F.immI(25),
           Seven = F.immI(7);
    F.constI(Acc, 0);
    emitCountedLoop(F, I, Count, [&] {
      RegIdx T = F.newReg();
      F.xorI(T, F.param(0), I);
      F.remI(T, T, Seven);
      F.addI(Acc, Acc, T);
    });
    F.ret(Acc);
    B.endBody(F);
  }

  // drawBoard(v): DrawCalls JNI invocations.
  MethodId Draw = B.declareFunction(InvalidId, "drawBoard", 1, false);
  {
    FunctionBuilder F = B.beginBody(Draw);
    RegIdx I = F.newReg(), Count = F.immI(Spec.DrawCalls);
    emitCountedLoop(F, I, Count, [&] {
      F.invokeNative(NoReg, N.DrawCell, {I, I, F.param(0)});
    });
    F.retVoid();
    B.endBody(F);
  }

  // Cold bookkeeping: replayable, but not part of the hot region.
  MethodId Cold = B.declareFunction(InvalidId, "coldBookkeeping", 1, true);
  {
    FunctionBuilder F = B.beginBody(Cold);
    RegIdx Acc = F.newReg(), I = F.newReg(), Rounds = F.immI(700),
           Five = F.immI(5);
    F.constI(Acc, 0);
    emitCountedLoop(F, I, Rounds, [&] {
      RegIdx T = F.newReg();
      F.xorI(T, F.param(0), I);
      F.remI(T, T, Five);
      F.addI(Acc, Acc, T);
    });
    F.ret(Acc);
    B.endBody(F);
  }

  MethodId Session = B.declareFunction(InvalidId, "session", 1, true);
  {
    FunctionBuilder F = B.beginBody(Session);
    RegIdx Mv = F.newReg(), Three = F.immI(3), P = F.newReg();
    F.invokeNative(Mv, N.ReadInput, {});
    F.andI(Mv, Mv, Three);
    F.addI(P, F.param(0), Mv);

    RegIdx R = F.newReg();
    F.invokeStatic(R, Kernel, {P});

    F.invokeStatic(NoReg, Draw, {R});
    if (Spec.EngineProbes) {
      RegIdx I = F.newReg(), Count = F.immI(Spec.EngineProbes);
      emitCountedLoop(F, I, Count, [&] {
        RegIdx Q = F.newReg(), E = F.newReg();
        F.addI(Q, R, I);
        F.invokeNative(E, G.EngineProbe, {Q});
        F.addI(R, R, E);
      });
    }
    if (Spec.AssetDecodes) {
      RegIdx I = F.newReg(), Count = F.immI(Spec.AssetDecodes);
      emitCountedLoop(F, I, Count, [&] {
        F.invokeNative(NoReg, G.DecodeAsset, {I});
      });
    }
    if (Spec.UseLegacy) {
      RegIdx L = F.newReg();
      F.invokeStatic(L, Legacy, {R});
      F.addI(R, R, L);
    }
    RegIdx CB = F.newReg();
    F.invokeStatic(CB, Cold, {R});
    F.addI(R, R, CB);
    F.invokeStatic(NoReg, FramePace, {});
    F.invokeNative(NoReg, N.Print, {R});
    F.ret(R);
    B.endBody(F);
  }
  return Session;
}

Application finish(DexBuilder &B, const char *Name, MethodId Init,
                   MethodId Session, int64_t InitParam,
                   int64_t DefaultParam, int64_t MinParam,
                   int64_t MaxParam,
                   uint64_t HeapBytes = 24 * 1024 * 1024) {
  Application App;
  App.Name = Name;
  App.Kind = Suite::Interactive;
  App.File = std::make_shared<DexFile>(B.build());
  App.InitEntry = Init;
  App.SessionEntry = Session;
  App.InitParam = InitParam;
  App.DefaultParam = DefaultParam;
  App.MinParam = MinParam;
  App.MaxParam = MaxParam;
  App.InputsPerSession = 1;
  App.RtConfig.HeapLimitBytes = HeapBytes;
  return App;
}

} // namespace

// --- MaterialLife (game of life) -----------------------------------------------

Application workloads::buildMaterialLife() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Life");
  StaticFieldId GridF = B.addStaticField(State, "grid", Type::Ref);
  StaticFieldId Grid2F = B.addStaticField(State, "grid2", Type::Ref);
  StaticFieldId WF = B.addStaticField(State, "w", Type::I64);
  ScratchBuffer Scratch = addScratch(B, 36);
  ColdPool Pool = addColdPool(B, 4LL * 1024 * 1024);
  constexpr int64_t W = 44;

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Ww = F.param(0), Size = F.newReg(), A = F.newReg(),
           Bb = F.newReg();
    F.mulI(Size, Ww, Ww);
    F.newArray(A, Size, Type::I64);
    F.newArray(Bb, Size, Type::I64);
    RegIdx Seed = F.immI(999331), I = F.newReg(), Two = F.immI(2);
    emitCountedLoop(F, I, Size, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Two);
      F.astore(A, I, Draw, Type::I64);
    });
    F.putStatic(GridF, A);
    F.putStatic(Grid2F, Bb);
    F.putStatic(WF, Ww);
    emitColdPoolInit(F, Pool);
    emitScratchInit(F, Scratch);
    F.retVoid();
    B.endBody(F);
  }

  MethodId Kernel = B.declareFunction(InvalidId, "lifeKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Gens = F.newReg(), Three = F.immI(3), One = F.immI(1);
    F.remI(Gens, F.param(0), Three);
    F.addI(Gens, Gens, One);
    RegIdx A = F.newReg(), Bb = F.newReg(), Ww = F.newReg();
    F.getStatic(A, GridF);
    F.getStatic(Bb, Grid2F);
    F.getStatic(Ww, WF);
    RegIdx WM1 = F.newReg(), Size = F.newReg();
    F.subI(WM1, Ww, One);
    F.mulI(Size, Ww, Ww);

    RegIdx Gen = F.newReg();
    emitCountedLoop(F, Gen, Gens, [&] {
      RegIdx Y = F.newReg();
      F.constI(Y, 1);
      auto YHead = F.newLabel(), YDone = F.newLabel();
      F.bind(YHead);
      F.ifGe(Y, WM1, YDone);
      {
        RegIdx X = F.newReg(), Row = F.newReg();
        F.mulI(Row, Y, Ww);
        F.constI(X, 1);
        auto XHead = F.newLabel(), XDone = F.newLabel();
        F.bind(XHead);
        F.ifGe(X, WM1, XDone);
        {
          RegIdx Idx = F.newReg(), Cnt = F.newReg(), T = F.newReg(),
                 V = F.newReg();
          F.addI(Idx, Row, X);
          F.constI(Cnt, 0);
          // Eight neighbours (offsets relative to idx).
          for (int64_t Dy = -1; Dy <= 1; ++Dy) {
            for (int64_t Dx = -1; Dx <= 1; ++Dx) {
              if (Dy == 0 && Dx == 0)
                continue;
              RegIdx Off = F.immI(Dy * W + Dx);
              F.addI(T, Idx, Off);
              F.aload(V, A, T, Type::I64);
              F.addI(Cnt, Cnt, V);
            }
          }
          // next = (cnt == 3) || (alive && cnt == 2)
          RegIdx Cur = F.newReg(), Next = F.newReg(), Two = F.immI(2),
                 ThreeI = F.immI(3);
          F.aload(Cur, A, Idx, Type::I64);
          F.constI(Next, 0);
          auto Dead = F.newLabel(), Store = F.newLabel();
          F.ifEq(Cnt, ThreeI, Dead); // born/survives
          F.ifEqz(Cur, Store);
          F.ifNe(Cnt, Two, Store);
          F.bind(Dead);
          F.constI(Next, 1);
          F.bind(Store);
          F.astore(Bb, Idx, Next, Type::I64);
        }
        F.addI(X, X, One);
        F.jump(XHead);
        F.bind(XDone);
      }
      F.addI(Y, Y, One);
      F.jump(YHead);
      F.bind(YDone);
      // Copy back.
      RegIdx I = F.newReg(), V = F.newReg();
      emitCountedLoop(F, I, Size, [&] {
        F.aload(V, Bb, I, Type::I64);
        F.astore(A, I, V, Type::I64);
      });
    });

    // Digest: live count.
    RegIdx Live = F.newReg(), I = F.newReg(), V = F.newReg();
    F.constI(Live, 0);
    emitCountedLoop(F, I, Size, [&] {
      F.aload(V, A, I, Type::I64);
      F.addI(Live, Live, V);
    });
    emitScratchTouch(F, Scratch, Live);
    F.ret(Live);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 160;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "MaterialLife", Init, Session, W, 5, 1, 500,
                /*HeapBytes=*/20 * 1024 * 1024);
}

// --- 4inaRow -----------------------------------------------------------------------

Application workloads::buildFourInARow() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("FourInARow");
  StaticFieldId BoardF = B.addStaticField(State, "board", Type::Ref);
  StaticFieldId TableF = B.addStaticField(State, "evalTable", Type::Ref);
  constexpr int64_t TableWords = 1 << 20; // 8 MiB eval table
  ColdPool Pool = addColdPool(B, 16LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx FortyTwo = F.immI(42), Board = F.newReg();
    F.newArray(Board, FortyTwo, Type::I64);
    F.putStatic(BoardF, Board);
    RegIdx Words = F.immI(TableWords), Table = F.newReg();
    F.newArray(Table, Words, Type::I64);
    RegIdx Seed = F.immI(5551212), I = F.newReg();
    emitCountedLoop(F, I, Words, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.astore(Table, I, Draw, Type::I64);
    });
    emitColdPoolInit(F, Pool);
    F.putStatic(TableF, Table);
    F.retVoid();
    B.endBody(F);
  }

  // aiKernel(param): search over move triples, scoring each position via
  // the big table — a scattered working set, the largest capture of the
  // suite (Figure 11's 41 MB outlier analogue).
  MethodId Kernel = B.declareFunction(InvalidId, "aiKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Board = F.newReg(), Table = F.newReg(), Seven = F.immI(7),
           One = F.immI(1);
    F.getStatic(Board, BoardF);
    F.getStatic(Table, TableF);
    RegIdx Base = F.newReg(), Mul = F.immI(2654435761LL);
    F.mulI(Base, F.param(0), Mul);
    RegIdx Best = F.newReg(), Mask = F.immI(TableWords - 1),
           Thousand = F.immI(1000);
    F.constI(Best, -1000000);

    RegIdx C1 = F.newReg();
    emitCountedLoop(F, C1, Seven, [&] {
      RegIdx C2 = F.newReg();
      emitCountedLoop(F, C2, Seven, [&] {
        RegIdx C3 = F.newReg();
        emitCountedLoop(F, C3, Seven, [&] {
          RegIdx H = F.newReg(), T = F.newReg(), Score = F.newReg();
          // Position hash over the move triple and board cells.
          F.mulI(H, C1, Thousand);
          F.addI(H, H, C2);
          F.mulI(H, H, Thousand);
          F.addI(H, H, C3);
          F.addI(H, H, Base);
          RegIdx Cell = F.newReg(), BV = F.newReg(), FortyTwoI =
              F.immI(42);
          F.remI(Cell, H, FortyTwoI);
          F.aload(BV, Board, Cell, Type::I64);
          F.addI(H, H, BV);
          F.mulI(H, H, Mul);
          F.andI(T, H, Mask);
          F.aload(Score, Table, T, Type::I64);
          RegIdx Small = F.immI(4095);
          F.andI(Score, Score, Small);
          auto NotBetter = F.newLabel();
          F.ifLe(Score, Best, NotBetter);
          F.move(Best, Score);
          F.bind(NotBetter);
        });
      });
    });
    // Board advances a little each round (externally visible writes).
    RegIdx Cell = F.newReg(), FortyTwoI = F.immI(42), V = F.newReg();
    F.remI(Cell, F.param(0), FortyTwoI);
    F.aload(V, Board, Cell, Type::I64);
    F.addI(V, V, One);
    F.astore(Board, Cell, V, Type::I64);
    F.ret(Best);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 100;
  Spec.AssetDecodes = 2;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "4inaRow", Init, Session, 0, 37, 1, 5000,
                /*HeapBytes=*/40 * 1024 * 1024);
}

// --- DroidFish (chess) ----------------------------------------------------------------

Application workloads::buildDroidFish() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Chess");
  StaticFieldId BoardF = B.addStaticField(State, "board", Type::Ref);
  StaticFieldId PsqF = B.addStaticField(State, "psq", Type::Ref);
  ColdPool Pool = addColdPool(B, 6LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx SixtyFour = F.immI(64), Board = F.newReg(), Psq = F.newReg(),
           PsqLen = F.immI(64 * 7);
    F.newArray(Board, SixtyFour, Type::I64);
    F.newArray(Psq, PsqLen, Type::I64);
    RegIdx Seed = F.immI(31337), I = F.newReg(), Twelve = F.immI(13);
    emitCountedLoop(F, I, SixtyFour, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Twelve); // 0..12 piece codes
      F.astore(Board, I, Draw, Type::I64);
    });
    RegIdx Hundred = F.immI(100);
    emitCountedLoop(F, I, PsqLen, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Hundred);
      F.astore(Psq, I, Draw, Type::I64);
    });
    emitColdPoolInit(F, Pool);
    F.putStatic(BoardF, Board);
    F.putStatic(PsqF, Psq);
    F.retVoid();
    B.endBody(F);
  }

  // evalKernel(param): Java-side static evaluation — a modest kernel; the
  // session's engine probes (native) dominate, as DroidFish's JNI does.
  MethodId Kernel = B.declareFunction(InvalidId, "evalKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Board = F.newReg(), Psq = F.newReg(), SixtyFour = F.immI(64),
           Seven = F.immI(7), One = F.immI(1);
    F.getStatic(Board, BoardF);
    F.getStatic(Psq, PsqF);
    RegIdx Score = F.newReg(), Sq = F.newReg(), Rounds = F.newReg(),
           Mask = F.immI(7);
    F.constI(Score, 0);
    F.andI(Rounds, F.param(0), Mask);
    F.addI(Rounds, Rounds, One);
    RegIdx R = F.newReg();
    emitCountedLoop(F, R, Rounds, [&] {
      emitCountedLoop(F, Sq, SixtyFour, [&] {
        RegIdx P = F.newReg(), T = F.newReg(), V = F.newReg();
        F.aload(P, Board, Sq, Type::I64);
        F.remI(T, P, Seven);
        F.mulI(T, T, SixtyFour);
        F.addI(T, T, Sq);
        F.aload(V, Psq, T, Type::I64);
        F.addI(Score, Score, V);
        // Mobility-ish inner scan along the rank.
        RegIdx D = F.newReg(), Eight = F.immI(8);
        emitCountedLoop(F, D, Eight, [&] {
          RegIdx T2 = F.newReg(), V2 = F.newReg();
          F.addI(T2, Sq, D);
          F.remI(T2, T2, SixtyFour);
          F.aload(V2, Board, T2, Type::I64);
          auto Occupied = F.newLabel();
          F.ifNez(V2, Occupied);
          F.addI(Score, Score, One);
          F.bind(Occupied);
        });
      });
    });
    F.ret(Score);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 64;
  Spec.EngineProbes = 6; // the UCI engine does the heavy lifting in C++
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "DroidFish", Init, Session, 0, 13, 1, 5000,
                /*HeapBytes=*/28 * 1024 * 1024);
}

// --- ColorOverflow ---------------------------------------------------------------------

Application workloads::buildColorOverflow() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Overflow");
  StaticFieldId GridF = B.addStaticField(State, "grid", Type::Ref);
  StaticFieldId StackF = B.addStaticField(State, "stack", Type::Ref);
  StaticFieldId SeenF = B.addStaticField(State, "seen", Type::Ref);
  constexpr int64_t W = 32;
  ColdPool Pool = addColdPool(B, 2LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Size = F.newReg(), Ww = F.param(0), Grid = F.newReg(),
           Stack = F.newReg(), Seen = F.newReg(), Six = F.immI(6);
    F.mulI(Size, Ww, Ww);
    F.newArray(Grid, Size, Type::I64);
    F.newArray(Stack, Size, Type::I64);
    F.newArray(Seen, Size, Type::I64);
    RegIdx Seed = F.immI(777), I = F.newReg();
    emitCountedLoop(F, I, Size, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Six);
      F.astore(Grid, I, Draw, Type::I64);
    });
    emitColdPoolInit(F, Pool);
    F.putStatic(GridF, Grid);
    F.putStatic(StackF, Stack);
    F.putStatic(SeenF, Seen);
    F.retVoid();
    B.endBody(F);
  }

  // floodKernel(param): flood-fill area from the corner matching
  // param-coloured cells; returns the captured area size.
  MethodId Kernel = B.declareFunction(InvalidId, "floodKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Grid = F.newReg(), Stack = F.newReg(), Seen = F.newReg();
    F.getStatic(Grid, GridF);
    F.getStatic(Stack, StackF);
    F.getStatic(Seen, SeenF);
    RegIdx Size = F.newReg(), One = F.immI(1), Zero = F.immI(0),
           WReg = F.immI(W), Six = F.immI(6);
    F.arrayLen(Size, Grid);

    RegIdx Rounds = F.immI(8), Round = F.newReg(), Area = F.newReg();
    RegIdx TotalArea = F.newReg();
    F.constI(TotalArea, 0);
    emitCountedLoop(F, Round, Rounds, [&] {
    // Reset the seen bitmap; pick the target colour.
    RegIdx I = F.newReg();
    emitCountedLoop(F, I, Size, [&] {
      F.astore(Seen, I, Zero, Type::I64);
    });
    RegIdx Color = F.newReg(), PR = F.newReg();
    F.addI(PR, F.param(0), Round);
    F.remI(Color, PR, Six);

    // Iterative DFS from cell 0 over same-colour neighbours.
    RegIdx Sp = F.newReg();
    F.constI(Sp, 0);
    F.constI(Area, 0);
    F.astore(Stack, Sp, Zero, Type::I64);
    F.addI(Sp, Sp, One);
    F.astore(Seen, Zero, One, Type::I64);

    auto Loop = F.newLabel(), Done = F.newLabel();
    F.bind(Loop);
    F.ifLez(Sp, Done);
    F.subI(Sp, Sp, One);
    RegIdx Cur = F.newReg(), CurColor = F.newReg();
    F.aload(Cur, Stack, Sp, Type::I64);
    F.aload(CurColor, Grid, Cur, Type::I64);
    {
      auto Skip = F.newLabel();
      F.ifNe(CurColor, Color, Skip);
      F.addI(Area, Area, One);
      // Push the four neighbours (bounds-guarded).
      struct Dir {
        int64_t Delta;
      };
      for (int64_t Delta : {int64_t(-1), int64_t(1), -W, W}) {
        RegIdx Nb = F.newReg(), Off = F.immI(Delta);
        F.addI(Nb, Cur, Off);
        auto Out = F.newLabel();
        F.ifLtz(Nb, Out);
        F.ifGe(Nb, Size, Out);
        RegIdx S = F.newReg();
        F.aload(S, Seen, Nb, Type::I64);
        F.ifNez(S, Out);
        F.astore(Seen, Nb, One, Type::I64);
        F.astore(Stack, Sp, Nb, Type::I64);
        F.addI(Sp, Sp, One);
        F.bind(Out);
      }
      F.bind(Skip);
    }
    F.jump(Loop);
    F.bind(Done);
    F.addI(TotalArea, TotalArea, Area);
    });

    // Rotate the corner colour so sessions differ.
    RegIdx C0 = F.newReg();
    F.aload(C0, Grid, Zero, Type::I64);
    F.addI(C0, C0, One);
    F.remI(C0, C0, Six);
    F.astore(Grid, Zero, C0, Type::I64);
    (void)WReg;
    F.ret(TotalArea);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 90;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "ColorOverflow", Init, Session, W, 2, 0, 500,
                /*HeapBytes=*/16 * 1024 * 1024);
}

// --- Brainstonz -----------------------------------------------------------------------

Application workloads::buildBrainstonz() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Brainstonz");
  StaticFieldId BoardF = B.addStaticField(State, "board", Type::Ref);
  constexpr int64_t Cells = 36;
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx CellsR = F.immI(Cells), Board = F.newReg();
    emitColdPoolInit(F, Pool);
    F.newArray(Board, CellsR, Type::I64);
    F.putStatic(BoardF, Board);
    F.retVoid();
    B.endBody(F);
  }

  // minimaxKernel(param): depth-2 exhaustive placement search on the 6x6
  // board with a weighted line evaluation.
  MethodId Eval = B.declareFunction(InvalidId, "evalBoard", 0, true);
  {
    FunctionBuilder F = B.beginBody(Eval);
    RegIdx Board = F.newReg(), CellsR = F.immI(Cells), Score = F.newReg(),
           I = F.newReg(), Six = F.immI(6);
    F.getStatic(Board, BoardF);
    F.constI(Score, 0);
    emitCountedLoop(F, I, CellsR, [&] {
      RegIdx V = F.newReg(), Wt = F.newReg(), T = F.newReg();
      F.aload(V, Board, I, Type::I64);
      F.remI(Wt, I, Six);
      F.mulI(T, V, Wt);
      F.addI(Score, Score, T);
      F.mulI(T, V, V);
      F.addI(Score, Score, T);
    });
    F.ret(Score);
    B.endBody(F);
  }

  MethodId Kernel = B.declareFunction(InvalidId, "minimaxKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Board = F.newReg(), CellsR = F.immI(Cells), One = F.immI(1),
           Zero = F.immI(0), Two = F.immI(2);
    F.getStatic(Board, BoardF);
    RegIdx Best = F.newReg();
    F.constI(Best, -1000000000);
    RegIdx Mv = F.newReg();
    emitCountedLoop(F, Mv, CellsR, [&] {
      RegIdx Occ = F.newReg();
      F.aload(Occ, Board, Mv, Type::I64);
      auto SkipMove = F.newLabel();
      F.ifNez(Occ, SkipMove);
      F.astore(Board, Mv, One, Type::I64); // place our stone
      RegIdx WorstReply = F.newReg(), Tried = F.newReg(),
             MaxReplies = F.immI(12);
      F.constI(WorstReply, 1000000000);
      F.constI(Tried, 0);
      RegIdx Reply = F.newReg();
      emitCountedLoop(F, Reply, CellsR, [&] {
        RegIdx Occ2 = F.newReg();
        auto SkipReply = F.newLabel();
        F.ifGe(Tried, MaxReplies, SkipReply); // pruned search
        F.aload(Occ2, Board, Reply, Type::I64);
        F.ifNez(Occ2, SkipReply);
        F.addI(Tried, Tried, One);
        F.astore(Board, Reply, Two, Type::I64); // opponent stone
        RegIdx S = F.newReg();
        F.invokeStatic(S, Eval, {});
        auto NotWorse = F.newLabel();
        F.ifGe(S, WorstReply, NotWorse);
        F.move(WorstReply, S);
        F.bind(NotWorse);
        F.astore(Board, Reply, Zero, Type::I64); // undo
        F.bind(SkipReply);
      });
      auto NotBetter = F.newLabel();
      F.ifLe(WorstReply, Best, NotBetter);
      F.move(Best, WorstReply);
      F.bind(NotBetter);
      F.astore(Board, Mv, Zero, Type::I64); // undo
      F.bind(SkipMove);
    });
    // Commit one stone so the board evolves between sessions.
    RegIdx Cell = F.newReg();
    F.remI(Cell, F.param(0), CellsR);
    F.astore(Board, Cell, One, Type::I64);
    F.ret(Best);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 72;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "Brainstonz", Init, Session, 0, 11, 0, 500,
                /*HeapBytes=*/12 * 1024 * 1024);
}

// --- Blokish --------------------------------------------------------------------------

Application workloads::buildBlokish() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Blokish");
  StaticFieldId BoardF = B.addStaticField(State, "board", Type::Ref);
  StaticFieldId PiecesF = B.addStaticField(State, "pieces", Type::Ref);
  constexpr int64_t W = 14;
  constexpr int64_t PieceCount = 8;
  ColdPool Pool = addColdPool(B, 2LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Size = F.immI(W * W), Board = F.newReg();
    F.newArray(Board, Size, Type::I64);
    F.putStatic(BoardF, Board);
    // Piece masks: 4 cell offsets per piece.
    RegIdx Len = F.immI(PieceCount * 4), Pieces = F.newReg();
    F.newArray(Pieces, Len, Type::I64);
    RegIdx Seed = F.immI(909090), I = F.newReg(), Span = F.immI(3 * W + 3);
    emitCountedLoop(F, I, Len, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Span);
      F.astore(Pieces, I, Draw, Type::I64);
    });
    emitColdPoolInit(F, Pool);
    F.putStatic(PiecesF, Pieces);
    F.retVoid();
    B.endBody(F);
  }

  // placementKernel(param): count/score legal placements of every piece
  // at every anchor.
  MethodId Kernel =
      B.declareFunction(InvalidId, "placementKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Board = F.newReg(), Pieces = F.newReg(), One = F.immI(1);
    F.getStatic(Board, BoardF);
    F.getStatic(Pieces, PiecesF);
    RegIdx Size = F.immI(W * W), PieceN = F.immI(PieceCount),
           FourI = F.immI(4);
    RegIdx Score = F.newReg();
    F.constI(Score, 0);
    RegIdx P = F.newReg();
    emitCountedLoop(F, P, PieceN, [&] {
      RegIdx BaseOff = F.newReg();
      F.mulI(BaseOff, P, FourI);
      RegIdx Anchor = F.newReg();
      emitCountedLoop(F, Anchor, Size, [&] {
        RegIdx Legal = F.newReg(), K = F.newReg();
        F.constI(Legal, 1);
        emitCountedLoop(F, K, FourI, [&] {
          RegIdx Oi = F.newReg(), Off = F.newReg(), Cell = F.newReg(),
                 V = F.newReg();
          F.addI(Oi, BaseOff, K);
          F.aload(Off, Pieces, Oi, Type::I64);
          F.addI(Cell, Anchor, Off);
          auto OffBoard = F.newLabel(), Checked = F.newLabel();
          F.ifLtz(Cell, OffBoard);
          F.ifGe(Cell, Size, OffBoard);
          F.aload(V, Board, Cell, Type::I64);
          F.ifEqz(V, Checked);
          F.bind(OffBoard);
          F.constI(Legal, 0);
          F.bind(Checked);
        });
        F.addI(Score, Score, Legal);
      });
    });
    // Occupy one cell per session.
    RegIdx Cell = F.newReg();
    F.remI(Cell, F.param(0), Size);
    F.astore(Board, Cell, One, Type::I64);
    F.ret(Score);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 80;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "Blokish", Init, Session, 0, 7, 0, 500,
                /*HeapBytes=*/16 * 1024 * 1024);
}

// --- Svarka Calculator -------------------------------------------------------------------

Application workloads::buildSvarkaCalculator() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Svarka");
  StaticFieldId DeckF = B.addStaticField(State, "deck", Type::Ref);
  constexpr int64_t DeckSize = 22;
  ColdPool Pool = addColdPool(B, 1LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx Len = F.immI(DeckSize), Deck = F.newReg(), I = F.newReg();
    F.newArray(Deck, Len, Type::I64);
    emitCountedLoop(F, I, Len, [&] {
      F.astore(Deck, I, I, Type::I64);
    });
    emitColdPoolInit(F, Pool);
    F.putStatic(DeckF, Deck);
    F.retVoid();
    B.endBody(F);
  }

  // oddsKernel(param): shuffle (LCG), then enumerate all 3-card combos and
  // score them (Svarka hand values: pairs, 7s, suit sums).
  MethodId Kernel = B.declareFunction(InvalidId, "oddsKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Deck = F.newReg(), Len = F.immI(DeckSize), One = F.immI(1);
    F.getStatic(Deck, DeckF);
    // Fisher-Yates with the in-code LCG.
    RegIdx Seed = F.newReg(), SeedMul = F.immI(71);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);
    RegIdx I = F.newReg();
    emitCountedLoop(F, I, Len, [&] {
      RegIdx Draw = F.newReg(), J = F.newReg(), A = F.newReg(),
             Bv = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(J, Draw, Len);
      F.aload(A, Deck, I, Type::I64);
      F.aload(Bv, Deck, J, Type::I64);
      F.astore(Deck, I, Bv, Type::I64);
      F.astore(Deck, J, A, Type::I64);
    });

    RegIdx Total = F.newReg(), Eight = F.immI(8), Four = F.immI(4),
           Seven = F.immI(7), Bonus = F.immI(20);
    F.constI(Total, 0);
    RegIdx A = F.newReg();
    emitCountedLoop(F, A, Len, [&] {
      RegIdx Bi = F.newReg();
      F.addI(Bi, A, One);
      auto BHead = F.newLabel(), BDone = F.newLabel();
      F.bind(BHead);
      F.ifGe(Bi, Len, BDone);
      {
        RegIdx Ci = F.newReg();
        F.addI(Ci, Bi, One);
        auto CHead = F.newLabel(), CDone = F.newLabel();
        F.bind(CHead);
        F.ifGe(Ci, Len, CDone);
        {
          RegIdx Ca = F.newReg(), Cb = F.newReg(), Cc = F.newReg();
          F.aload(Ca, Deck, A, Type::I64);
          F.aload(Cb, Deck, Bi, Type::I64);
          F.aload(Cc, Deck, Ci, Type::I64);
          RegIdx Ra = F.newReg(), Rb = F.newReg(), Rc = F.newReg(),
                 Score = F.newReg();
          F.remI(Ra, Ca, Eight);
          F.remI(Rb, Cb, Eight);
          F.remI(Rc, Cc, Eight);
          F.addI(Score, Ra, Rb);
          F.addI(Score, Score, Rc);
          // Pair bonuses.
          auto NoPairAB = F.newLabel(), NoPairBC = F.newLabel();
          F.ifNe(Ra, Rb, NoPairAB);
          F.addI(Score, Score, Bonus);
          F.bind(NoPairAB);
          F.ifNe(Rb, Rc, NoPairBC);
          F.addI(Score, Score, Bonus);
          F.bind(NoPairBC);
          // Sevens are special in Svarka.
          auto NotSeven = F.newLabel();
          F.ifNe(Ra, Seven, NotSeven);
          F.addI(Score, Score, Bonus);
          F.bind(NotSeven);
          // Suit flush-ish bonus.
          RegIdx Sa = F.newReg(), Sb = F.newReg();
          F.divI(Sa, Ca, Eight);
          F.divI(Sb, Cb, Eight);
          auto NoSuit = F.newLabel();
          F.ifNe(Sa, Sb, NoSuit);
          F.addI(Score, Score, Four);
          F.bind(NoSuit);
          F.addI(Total, Total, Score);
        }
        F.addI(Ci, Ci, One);
        F.jump(CHead);
        F.bind(CDone);
      }
      F.addI(Bi, Bi, One);
      F.jump(BHead);
      F.bind(BDone);
    });
    F.ret(Total);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 48;
  Spec.AssetDecodes = 1;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "Svarka Calculator", Init, Session, 0, 3, 0, 500,
                /*HeapBytes=*/14 * 1024 * 1024);
}

// --- Reversi ---------------------------------------------------------------------------

Application workloads::buildReversi() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Reversi");
  StaticFieldId BoardF = B.addStaticField(State, "board", Type::Ref);
  StaticFieldId GreedyF = B.addStaticField(State, "greedy", Type::Ref);
  StaticFieldId PositionalF =
      B.addStaticField(State, "positional", Type::Ref);
  ColdPool Pool = addColdPool(B, 3LL * 1024 * 1024);

  // Polymorphic strategies: the interpreted replay's type profile sees a
  // 90%-dominant Greedy receiver, making this the devirtualization target.
  ClassId Strategy = B.addClass("Strategy");
  ClassId Greedy = B.addClass("Greedy", Strategy);
  ClassId Positional = B.addClass("Positional", Strategy);
  MethodId EvalV = B.declareVirtual(Strategy, "eval", 3, true);
  MethodId GreedyEval = B.declareVirtual(Greedy, "eval", 3, true);
  MethodId PositionalEval = B.declareVirtual(Positional, "eval", 3, true);
  {
    FunctionBuilder F = B.beginBody(EvalV);
    RegIdx Z = F.immI(0);
    F.ret(Z);
    B.endBody(F);
  }
  { // Greedy: flips dominate.
    FunctionBuilder F = B.beginBody(GreedyEval);
    RegIdx Ten = F.immI(10), R = F.newReg();
    F.mulI(R, F.param(1), Ten);
    F.addI(R, R, F.param(2));
    F.ret(R);
    B.endBody(F);
  }
  { // Positional: corner/edge weighting.
    FunctionBuilder F = B.beginBody(PositionalEval);
    RegIdx Eight = F.immI(8), R = F.newReg(), Row = F.newReg(),
           Col = F.newReg(), Three = F.immI(3);
    F.divI(Row, F.param(2), Eight);
    F.remI(Col, F.param(2), Eight);
    F.mulI(R, Row, Col);
    F.addI(R, R, F.param(1));
    F.mulI(R, R, Three);
    F.ret(R);
    B.endBody(F);
  }

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx SixtyFour = F.immI(64), Board = F.newReg();
    F.newArray(Board, SixtyFour, Type::I64);
    RegIdx Seed = F.immI(246810), I = F.newReg(), Three = F.immI(3);
    emitCountedLoop(F, I, SixtyFour, [&] {
      RegIdx Draw = F.newReg();
      emitLcgStep(F, Seed, Draw);
      F.remI(Draw, Draw, Three); // 0 empty, 1 us, 2 them
      F.astore(Board, I, Draw, Type::I64);
    });
    F.putStatic(BoardF, Board);
    RegIdx S = F.newReg();
    F.newInstance(S, Greedy);
    F.putStatic(GreedyF, S);
    emitColdPoolInit(F, Pool);
    F.newInstance(S, Positional);
    F.putStatic(PositionalF, S);
    F.retVoid();
    B.endBody(F);
  }

  // moveKernel(param): scan every cell, count directional flips, and rank
  // candidates through the (mostly monomorphic) strategy object.
  MethodId Kernel = B.declareFunction(InvalidId, "moveKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Board = F.newReg(), SixtyFour = F.immI(64), One = F.immI(1),
           Two = F.immI(2), Ten = F.immI(10);
    F.getStatic(Board, BoardF);
    RegIdx GreedyS = F.newReg(), PositionalS = F.newReg();
    F.getStatic(GreedyS, GreedyF);
    F.getStatic(PositionalS, PositionalF);
    RegIdx Best = F.newReg(), Cell = F.newReg();
    F.constI(Best, -1000000);
    RegIdx Rounds = F.immI(10), Round = F.newReg();
    emitCountedLoop(F, Round, Rounds, [&] {
    emitCountedLoop(F, Cell, SixtyFour, [&] {
      RegIdx V = F.newReg();
      F.aload(V, Board, Cell, Type::I64);
      auto Skip = F.newLabel();
      F.ifNez(V, Skip); // only empty cells
      // Count flips in 4 directions (simplified line scan).
      RegIdx Flips = F.newReg();
      F.constI(Flips, 0);
      for (int64_t Delta : {int64_t(1), int64_t(-1), int64_t(8),
                            int64_t(-8)}) {
        RegIdx Cur = F.newReg(), Off = F.immI(Delta), Run = F.newReg();
        F.move(Cur, Cell);
        F.constI(Run, 0);
        auto DHead = F.newLabel(), DDone = F.newLabel();
        F.bind(DHead);
        F.addI(Cur, Cur, Off);
        F.ifLtz(Cur, DDone);
        F.ifGe(Cur, SixtyFour, DDone);
        RegIdx W = F.newReg();
        F.aload(W, Board, Cur, Type::I64);
        F.ifNe(W, Two, DDone); // run of opponent stones
        F.addI(Run, Run, One);
        F.jump(DHead);
        F.bind(DDone);
        F.addI(Flips, Flips, Run);
      }
      // Strategy dispatch: 90% Greedy, 10% Positional.
      RegIdx Pick = F.newReg(), Strat = F.newReg();
      F.remI(Pick, Cell, Ten);
      auto UsePositional = F.newLabel(), Dispatch = F.newLabel();
      F.ifEqz(Pick, UsePositional);
      F.move(Strat, GreedyS);
      F.jump(Dispatch);
      F.bind(UsePositional);
      F.move(Strat, PositionalS);
      F.bind(Dispatch);
      RegIdx Score = F.newReg();
      F.invokeVirtual(Score, EvalV, {Strat, Flips, Cell});
      auto NotBetter = F.newLabel();
      F.ifLe(Score, Best, NotBetter);
      F.move(Best, Score);
      F.bind(NotBetter);
      F.bind(Skip);
    });
    });
    // Flip one cell per session so state evolves.
    RegIdx C = F.newReg();
    F.remI(C, F.param(0), SixtyFour);
    F.astore(Board, C, One, Type::I64);
    F.ret(Best);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 96;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "Reversi Android", Init, Session, 0, 23, 0, 500,
                /*HeapBytes=*/18 * 1024 * 1024);
}

// --- Poker Odds (Vitosha) --------------------------------------------------------------

Application workloads::buildPokerOdds() {
  DexBuilder B;
  CommonNatives N(B);
  GameNatives G(B);
  ClassId State = B.addClass("Poker");
  StaticFieldId DeckF = B.addStaticField(State, "deck", Type::Ref);
  StaticFieldId CountsF = B.addStaticField(State, "counts", Type::Ref);
  ColdPool Pool = addColdPool(B, 30LL * 1024 * 1024);

  MethodId Init = B.declareFunction(InvalidId, "init", 1, false);
  {
    FunctionBuilder F = B.beginBody(Init);
    RegIdx FiftyTwo = F.immI(52), Deck = F.newReg(), I = F.newReg();
    F.newArray(Deck, FiftyTwo, Type::I64);
    emitCountedLoop(F, I, FiftyTwo, [&] {
      F.astore(Deck, I, I, Type::I64);
    });
    F.putStatic(DeckF, Deck);
    RegIdx Thirteen = F.immI(13), Counts = F.newReg();
    emitColdPoolInit(F, Pool);
    F.newArray(Counts, Thirteen, Type::I64);
    F.putStatic(CountsF, Counts);
    F.retVoid();
    B.endBody(F);
  }

  // oddsKernel(param): Monte-Carlo poker deals (in-code LCG) with a rank
  // histogram hand evaluator. Tiny working set — the suite's smallest
  // capture — inside a deliberately oversized heap (Figure 11's Poker
  // Odds: 0.3 MB captured of an 88 MB heap).
  MethodId Kernel = B.declareFunction(InvalidId, "oddsKernel", 1, true);
  {
    FunctionBuilder F = B.beginBody(Kernel);
    RegIdx Deck = F.newReg(), Counts = F.newReg(), One = F.immI(1),
           Thirteen = F.immI(13), FiftyTwo = F.immI(52);
    F.getStatic(Deck, DeckF);
    F.getStatic(Counts, CountsF);
    RegIdx Trials = F.newReg(), Mask = F.immI(127), Floor = F.immI(150);
    F.andI(Trials, F.param(0), Mask);
    F.addI(Trials, Trials, Floor);
    RegIdx Seed = F.newReg(), SeedMul = F.immI(1337);
    F.mulI(Seed, F.param(0), SeedMul);
    F.addI(Seed, Seed, One);

    RegIdx Pairs = F.newReg(), Trips = F.newReg(), T = F.newReg();
    F.constI(Pairs, 0);
    F.constI(Trips, 0);
    RegIdx Trial = F.newReg(), FiveI = F.immI(5);
    emitCountedLoop(F, Trial, Trials, [&] {
      // Reset the rank histogram.
      RegIdx I = F.newReg(), Zero = F.immI(0);
      emitCountedLoop(F, I, Thirteen, [&] {
        F.astore(Counts, I, Zero, Type::I64);
      });
      // Deal five cards.
      RegIdx K = F.newReg();
      emitCountedLoop(F, K, FiveI, [&] {
        RegIdx Draw = F.newReg(), Card = F.newReg(), Rank = F.newReg(),
               C = F.newReg();
        emitLcgStep(F, Seed, Draw);
        F.remI(Card, Draw, FiftyTwo);
        F.aload(Rank, Deck, Card, Type::I64);
        F.remI(Rank, Rank, Thirteen);
        F.aload(C, Counts, Rank, Type::I64);
        F.addI(C, C, One);
        F.astore(Counts, Rank, C, Type::I64);
      });
      // Classify.
      emitCountedLoop(F, I, Thirteen, [&] {
        RegIdx C = F.newReg(), Two = F.immI(2), ThreeI = F.immI(3);
        F.aload(C, Counts, I, Type::I64);
        auto NotPair = F.newLabel(), NotTrips = F.newLabel();
        F.ifNe(C, Two, NotPair);
        F.addI(Pairs, Pairs, One);
        F.bind(NotPair);
        F.ifLt(C, ThreeI, NotTrips);
        F.addI(Trips, Trips, One);
        F.bind(NotTrips);
      });
    });
    RegIdx Thousand = F.immI(1000);
    F.mulI(T, Trips, Thousand);
    F.addI(T, T, Pairs);
    F.ret(T);
    B.endBody(F);
  }

  SessionSpec Spec;
  Spec.DrawCalls = 36;
  MethodId Session = makeInteractiveSession(B, N, G, Kernel, Spec);
  return finish(B, "Poker Odds (Vitosha)", Init, Session, 0, 17, 0, 500,
                /*HeapBytes=*/40 * 1024 * 1024);
}
