//===- workloads/BuilderUtil.h - Bytecode authoring helpers -----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared snippets the workload definitions use: counted loops, an
/// in-bytecode LCG (deterministic pseudo-randomness that stays replayable,
/// unlike the blocklisted randomInt native), and the common native
/// declarations.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_WORKLOADS_BUILDER_UTIL_H
#define ROPT_WORKLOADS_BUILDER_UTIL_H

#include "dex/Builder.h"

#include <functional>

namespace ropt {
namespace workloads {

/// Emits `for (I = 0; I < N; ++I) { Body(); }`. \p I must be a register
/// the caller owns; it holds the index inside \p Body.
inline void emitCountedLoop(dex::FunctionBuilder &F, dex::RegIdx I,
                            dex::RegIdx N,
                            const std::function<void()> &Body) {
  dex::RegIdx One = F.immI(1);
  F.constI(I, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, N, Done);
  Body();
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
}

/// Emits `State = State * 6364136223846793005 + 1442695040888963407;
/// Dst = (State >> 33) & (2^31 - 1)` — a 64-bit LCG step. Deterministic,
/// hence replayable (the Scimark/game AIs use in-code PRNGs, not the
/// blocklisted randomInt native).
inline void emitLcgStep(dex::FunctionBuilder &F, dex::RegIdx State,
                        dex::RegIdx Dst) {
  dex::RegIdx Mul = F.immI(6364136223846793005LL);
  dex::RegIdx Add = F.immI(1442695040888963407LL);
  dex::RegIdx Sh = F.immI(33);
  dex::RegIdx Mask = F.immI((1LL << 31) - 1);
  F.mulI(State, State, Mul);
  F.addI(State, State, Add);
  F.shrI(Dst, State, Sh);
  F.andI(Dst, Dst, Mask);
}

/// Declares, initializes and touches a page-granular scratch buffer: the
/// kernel stride-writes one word per 4 KiB page, modelling the sparse page
/// working sets (framebuffers, caches, pools) real hot regions touch. The
/// capture mechanism's fault/CoW counts — Figure 10's differentiator — come
/// from exactly this traffic.
struct ScratchBuffer {
  dex::StaticFieldId Field;
  int64_t Pages;
};

inline ScratchBuffer addScratch(dex::DexBuilder &B, int64_t Pages) {
  ScratchBuffer S;
  S.Field = B.addStaticField(dex::InvalidId, "scratchPages",
                             dex::Type::Ref);
  S.Pages = Pages;
  return S;
}

/// Call inside init(): allocates the buffer (512 i64 words per page).
inline void emitScratchInit(dex::FunctionBuilder &F,
                            const ScratchBuffer &S) {
  dex::RegIdx Len = F.immI(S.Pages * 512), Arr = F.newReg();
  F.newArray(Arr, Len, dex::Type::I64);
  F.putStatic(S.Field, Arr);
}

/// Call inside the kernel (before returning): one store per page.
inline void emitScratchTouch(dex::FunctionBuilder &F,
                             const ScratchBuffer &S, dex::RegIdx Seed) {
  dex::RegIdx Arr = F.newReg(), I = F.newReg(),
              PageCount = F.immI(S.Pages), Stride = F.immI(512);
  F.getStatic(Arr, S.Field);
  emitCountedLoop(F, I, PageCount, [&] {
    dex::RegIdx Idx = F.newReg(), V = F.newReg();
    F.mulI(Idx, I, Stride);
    F.addI(V, Seed, I);
    F.astore(Arr, Idx, V, dex::Type::I64);
  });
}

/// A cold resource pool: live heap data (decoded assets, caches, pools)
/// the hot region never touches. It grows the app's heap footprint without
/// growing captures — the reason Figure 11's captures are a few percent of
/// the heap.
struct ColdPool {
  dex::StaticFieldId Field;
  int64_t Bytes;
};

inline ColdPool addColdPool(dex::DexBuilder &B, int64_t Bytes) {
  ColdPool P;
  P.Field = B.addStaticField(dex::InvalidId, "resourcePool",
                             dex::Type::Ref);
  P.Bytes = Bytes;
  return P;
}

/// Call inside init().
inline void emitColdPoolInit(dex::FunctionBuilder &F, const ColdPool &P) {
  dex::RegIdx Len = F.immI(P.Bytes / 8), Arr = F.newReg();
  F.newArray(Arr, Len, dex::Type::I64);
  F.putStatic(P.Field, Arr);
}

/// The natives every workload file declares (subset used varies).
struct CommonNatives {
  dex::NativeId Sin, Cos, Exp, Log, Pow, AbsF;
  dex::NativeId Print, DrawCell, Vibrate, ReadInput, WriteRecord;
  dex::NativeId CurrentTimeMillis, RandomInt;

  explicit CommonNatives(dex::DexBuilder &B) {
    Sin = B.addNative("sin", 1, true, false, false, "sin");
    Cos = B.addNative("cos", 1, true, false, false, "cos");
    Exp = B.addNative("exp", 1, true, false, false, "exp");
    Log = B.addNative("log", 1, true, false, false, "log");
    Pow = B.addNative("pow", 2, true, false, false, "pow");
    AbsF = B.addNative("absF", 1, true, false, false, "absF");
    Print = B.addNative("print", 1, false, /*DoesIO=*/true);
    DrawCell = B.addNative("drawCell", 3, false, /*DoesIO=*/true);
    Vibrate = B.addNative("vibrate", 1, false, /*DoesIO=*/true);
    ReadInput = B.addNative("readInput", 0, true, /*DoesIO=*/true);
    WriteRecord = B.addNative("writeRecord", 2, false, /*DoesIO=*/true);
    CurrentTimeMillis =
        B.addNative("currentTimeMillis", 0, true, false, /*NonDet=*/true);
    RandomInt = B.addNative("randomInt", 1, true, false, /*NonDet=*/true);
  }
};

} // namespace workloads
} // namespace ropt

#endif // ROPT_WORKLOADS_BUILDER_UTIL_H
