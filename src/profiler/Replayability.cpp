//===- profiler/Replayability.cpp - Static replayability analysis ----------===//

#include "profiler/Replayability.h"

#include <set>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::profiler;

const char *profiler::methodCategoryName(MethodCategory C) {
  switch (C) {
  case MethodCategory::Compiled: return "Compiled";
  case MethodCategory::Cold: return "Cold";
  case MethodCategory::Jni: return "JNI";
  case MethodCategory::Unreplayable: return "Unreplayable";
  case MethodCategory::Uncompilable: return "Uncompilable";
  }
  return "unknown";
}

namespace {

/// Every implementation an invoke-virtual on \p Declared may dispatch to:
/// the declared slot of every class that is a subclass of the declaring
/// class (conservative closure).
std::vector<MethodId> possibleTargets(const DexFile &File,
                                      MethodId Declared) {
  const Method &M = File.method(Declared);
  std::vector<MethodId> Targets;
  if (!M.IsVirtual || M.VTableSlot < 0) {
    Targets.push_back(Declared);
    return Targets;
  }
  std::set<MethodId> Unique;
  for (const ClassInfo &C : File.classes()) {
    if (!File.isSubclassOf(C.Id, M.Owner))
      continue;
    if (static_cast<size_t>(M.VTableSlot) < C.VTable.size())
      Unique.insert(C.VTable[static_cast<size_t>(M.VTableSlot)]);
  }
  Targets.assign(Unique.begin(), Unique.end());
  return Targets;
}

} // namespace

ReplayabilityAnalysis
ReplayabilityAnalysis::analyze(const DexFile &File) {
  ReplayabilityAnalysis R;
  size_t N = File.methods().size();
  R.Replayable.assign(N, true);
  R.Compilable.assign(N, true);
  R.Direct.assign(N, false);

  // Direct facts.
  for (const Method &M : File.methods()) {
    if (M.IsNative || M.isUncompilable())
      R.Compilable[M.Id] = false;
    bool Blocked = M.doesIO() || M.isNonDeterministic() || M.hasTryCatch();
    if (M.IsNative) {
      // JNI blocklist: only intrinsic-replaceable math is allowed.
      const NativeDecl &Decl = File.native(M.Native);
      if (Decl.IntrinsicKind.empty())
        Blocked = true;
    }
    // Direct native invocations from bytecode.
    for (const Insn &I : M.Code) {
      if (I.Op != Opcode::InvokeNative)
        continue;
      const NativeDecl &Decl = File.native(I.Idx);
      if (Decl.DoesIO || Decl.NonDeterministic ||
          Decl.IntrinsicKind.empty())
        Blocked = true;
    }
    if (Blocked) {
      R.Direct[M.Id] = true;
      R.Replayable[M.Id] = false;
    }
  }

  // Propagate over the call graph to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Method &M : File.methods()) {
      if (!R.Replayable[M.Id])
        continue;
      for (const Insn &I : M.Code) {
        if (I.Op == Opcode::InvokeStatic) {
          if (!R.Replayable[I.Idx]) {
            R.Replayable[M.Id] = false;
            Changed = true;
            break;
          }
        } else if (I.Op == Opcode::InvokeVirtual) {
          for (MethodId T : possibleTargets(File, I.Idx)) {
            if (!R.Replayable[T]) {
              R.Replayable[M.Id] = false;
              Changed = true;
              break;
            }
          }
          if (!R.Replayable[M.Id])
            break;
        }
      }
    }
  }
  return R;
}
