//===- profiler/Replayability.h - Static replayability analysis -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1's static bytecode analysis: methods that perform I/O, draw
/// on non-determinism (clocks, PRNGs), use exception handling (stack-layout
/// sensitive), or cross into blocklisted JNI cannot be captured and
/// replayed. The properties propagate over the (virtual-dispatch-closed)
/// call graph: calling an unreplayable method makes the caller
/// unreplayable.
///
/// The only JNI calls not blocklisted are the math natives the LLVM
/// backend can replace with intrinsics (Section 3.5).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_PROFILER_REPLAYABILITY_H
#define ROPT_PROFILER_REPLAYABILITY_H

#include "dex/DexFile.h"

#include <vector>

namespace ropt {
namespace profiler {

/// Figure 8's runtime categories.
enum class MethodCategory {
  Compiled,     ///< In the optimized hot region.
  Cold,         ///< Replayable + compilable, but not worth compiling.
  Jni,          ///< Native code.
  Unreplayable, ///< Blocked from capture (I/O, nondet, exceptions, JNI).
  Uncompilable, ///< The Android backend cannot process it.
};

const char *methodCategoryName(MethodCategory C);

/// Per-method replayability facts.
class ReplayabilityAnalysis {
public:
  static ReplayabilityAnalysis analyze(const dex::DexFile &File);

  /// True when the method's behaviour is fully determined by its memory
  /// state: no I/O, no nondeterminism, no exceptions, no blocklisted JNI
  /// — transitively through everything it can call.
  bool isReplayable(dex::MethodId Id) const { return Replayable[Id]; }

  /// True when the stock compiler backend can process the method.
  bool isCompilable(dex::MethodId Id) const { return Compilable[Id]; }

  /// Direct reason flags (non-transitive), for diagnostics.
  bool directlyBlocked(dex::MethodId Id) const { return Direct[Id]; }

private:
  std::vector<bool> Replayable;
  std::vector<bool> Compilable;
  std::vector<bool> Direct;
};

} // namespace profiler
} // namespace ropt

#endif // ROPT_PROFILER_REPLAYABILITY_H
