//===- profiler/HotRegion.cpp - Profiling and hot-region detection ----------===//

#include "profiler/HotRegion.h"

#include <algorithm>
#include <set>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::profiler;

MethodProfile MethodProfile::fromRuntime(const vm::Runtime &RT) {
  MethodProfile P;
  P.ExclusiveCycles = RT.methodCycles();
  P.Features = RT.methodFeatures();
  for (uint64_t C : P.ExclusiveCycles)
    P.TotalCycles += C;
  return P;
}

bool HotRegion::contains(MethodId Id) const {
  return std::find(Methods.begin(), Methods.end(), Id) != Methods.end();
}

std::vector<MethodId>
profiler::compilableRegion(const DexFile &File,
                           const ReplayabilityAnalysis &RA,
                           MethodId Root) {
  std::vector<MethodId> Region;
  std::set<MethodId> Seen;
  std::vector<MethodId> Work{Root};
  while (!Work.empty()) {
    MethodId Id = Work.back();
    Work.pop_back();
    if (Seen.count(Id) || !RA.isCompilable(Id))
      continue;
    Seen.insert(Id);
    Region.push_back(Id);
    const Method &M = File.method(Id);
    for (const Insn &I : M.Code) {
      if (I.Op == Opcode::InvokeStatic) {
        Work.push_back(I.Idx);
      } else if (I.Op == Opcode::InvokeVirtual) {
        const Method &Declared = File.method(I.Idx);
        // Every possible dispatch target joins the region.
        for (const ClassInfo &C : File.classes()) {
          if (!File.isSubclassOf(C.Id, Declared.Owner))
            continue;
          if (Declared.VTableSlot >= 0 &&
              static_cast<size_t>(Declared.VTableSlot) < C.VTable.size())
            Work.push_back(
                C.VTable[static_cast<size_t>(Declared.VTableSlot)]);
        }
      }
    }
  }
  return Region;
}

std::optional<HotRegion>
profiler::detectHotRegion(const DexFile &File, const MethodProfile &Profile,
                          const ReplayabilityAnalysis &RA) {
  HotRegion Best;
  bool Found = false;

  for (const Method &M : File.methods()) {
    // estimateRegionRuntime: -inf for unreplayable roots.
    if (!RA.isReplayable(M.Id) || !RA.isCompilable(M.Id))
      continue;
    if (M.Id >= Profile.ExclusiveCycles.size())
      continue;
    std::vector<MethodId> Region = compilableRegion(File, RA, M.Id);
    uint64_t Sum = 0;
    for (MethodId R : Region)
      if (R < Profile.ExclusiveCycles.size())
        Sum += Profile.ExclusiveCycles[R];
    if (Sum == 0)
      continue;
    if (!Found || Sum > Best.EstimatedCycles) {
      Found = true;
      Best.Root = M.Id;
      Best.Methods = std::move(Region);
      Best.EstimatedCycles = Sum;
    }
  }
  if (!Found)
    return std::nullopt;
  return Best;
}

MethodCategory profiler::classifyMethod(const DexFile &File,
                                        const ReplayabilityAnalysis &RA,
                                        const HotRegion *Region,
                                        MethodId Id) {
  const Method &M = File.method(Id);
  if (M.IsNative)
    return MethodCategory::Jni;
  if (M.isUncompilable())
    return MethodCategory::Uncompilable;
  if (Region && Region->contains(Id))
    return MethodCategory::Compiled;
  if (!RA.isReplayable(Id))
    return MethodCategory::Unreplayable;
  return MethodCategory::Cold;
}

CodeBreakdown profiler::computeBreakdown(const DexFile &File,
                                         const MethodProfile &Profile,
                                         const ReplayabilityAnalysis &RA,
                                         const HotRegion *Region) {
  CodeBreakdown Out;
  if (Profile.TotalCycles == 0)
    return Out;
  // Native-work slots past the method table are JNI time.
  for (size_t I = File.methods().size();
       I < Profile.ExclusiveCycles.size(); ++I)
    Out.Jni += static_cast<double>(Profile.ExclusiveCycles[I]) /
               static_cast<double>(Profile.TotalCycles);
  for (const Method &M : File.methods()) {
    if (M.Id >= Profile.ExclusiveCycles.size())
      continue;
    double Share = static_cast<double>(Profile.ExclusiveCycles[M.Id]) /
                   static_cast<double>(Profile.TotalCycles);
    switch (classifyMethod(File, RA, Region, M.Id)) {
    case MethodCategory::Compiled: Out.Compiled += Share; break;
    case MethodCategory::Cold: Out.Cold += Share; break;
    case MethodCategory::Jni: Out.Jni += Share; break;
    case MethodCategory::Unreplayable: Out.Unreplayable += Share; break;
    case MethodCategory::Uncompilable: Out.Uncompilable += Share; break;
    }
  }
  return Out;
}
