//===- profiler/HotRegion.h - Profiling and hot-region detection -*- C++ -*-=//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1: pick the replayable method whose compilable call-closure
/// accounts for the most exclusive execution time, plus the Figure-8
/// runtime code breakdown. Profiles come from the runtime's per-method
/// exclusive cycle attribution — the noise-free equivalent of the paper's
/// 1 ms sampling profiler (documented substitution, DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_PROFILER_HOT_REGION_H
#define ROPT_PROFILER_HOT_REGION_H

#include "profiler/Replayability.h"
#include "vm/Runtime.h"

#include <map>
#include <optional>
#include <vector>

namespace ropt {
namespace profiler {

/// Snapshot of per-method exclusive cycles plus the microarchitectural
/// feature counts the bottleneck classifier consumes (same indexing).
struct MethodProfile {
  std::vector<uint64_t> ExclusiveCycles;
  std::vector<vm::MethodFeatureCounters> Features;
  uint64_t TotalCycles = 0;

  static MethodProfile fromRuntime(const vm::Runtime &RT);
};

/// A hot region: a root method plus its compilable callee closure.
struct HotRegion {
  dex::MethodId Root = dex::InvalidId;
  std::vector<dex::MethodId> Methods; ///< Compilable closure incl. Root.
  uint64_t EstimatedCycles = 0;       ///< Sum of exclusive cycles.

  bool contains(dex::MethodId Id) const;
};

/// The compilable call-closure of \p Root (Algorithm 1's
/// compilableRegion): Root plus every transitively called compilable
/// method; uncompilable callees cut the recursion.
std::vector<dex::MethodId> compilableRegion(const dex::DexFile &File,
                                            const ReplayabilityAnalysis &RA,
                                            dex::MethodId Root);

/// Algorithm 1: the best region, or nullopt when nothing qualifies (no
/// method is both replayable and compilable, or nothing ran).
std::optional<HotRegion>
detectHotRegion(const dex::DexFile &File, const MethodProfile &Profile,
                const ReplayabilityAnalysis &RA);

/// Figure 8: fraction of runtime per category.
struct CodeBreakdown {
  double Compiled = 0.0;
  double Cold = 0.0;
  double Jni = 0.0;
  double Unreplayable = 0.0;
  double Uncompilable = 0.0;
};

/// Classifies one method (region may be null for "no region yet").
MethodCategory classifyMethod(const dex::DexFile &File,
                              const ReplayabilityAnalysis &RA,
                              const HotRegion *Region, dex::MethodId Id);

/// Attributes the profile's exclusive cycles to categories.
CodeBreakdown computeBreakdown(const dex::DexFile &File,
                               const MethodProfile &Profile,
                               const ReplayabilityAnalysis &RA,
                               const HotRegion *Region);

} // namespace profiler
} // namespace ropt

#endif // ROPT_PROFILER_HOT_REGION_H
