//===- tools/ropt_report.cpp - Summarize and diff run directories ---------===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
// The read side of the run-report flight recorder, as a CLI:
//
//   ropt-report summarize DIR [--markdown]   human/markdown run summary
//   ropt-report diff A B [--threshold F]     regression gate (exit 1 on
//                                            fitness regressions)
//   ropt-report validate DIR                 structural artifact checks
//   ropt-report analyze DIR [--baseline OLD] observability-loop view:
//                                            region DAG, critical path,
//                                            bottleneck labels + budget
//                                            shares; flags label changes
//                                            against a baseline run
//   ropt-report fleet DIR [--baseline OLD]   fleet view: per-device-class
//                        [--threshold F]     round curves, provenance
//                                            chains, transport health;
//                                            with a baseline, gates on
//                                            per-cell best-speedup
//                                            regressions (exit 1)
//
// Exit codes: 0 clean, 1 regressions/validation problems, 2 usage or
// unreadable run directory.
//
//===----------------------------------------------------------------------===//

#include "report/RunDiff.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace ropt;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s summarize DIR [--markdown]\n"
               "       %s diff BASELINE_DIR NEW_DIR [--threshold FRACTION]\n"
               "       %s validate DIR\n"
               "       %s analyze DIR [--baseline OLD_DIR]\n"
               "       %s fleet DIR [--baseline OLD_DIR] "
               "[--threshold FRACTION]\n",
               Argv0, Argv0, Argv0, Argv0, Argv0);
  return 2;
}

report::LoadedRun loadOrExit(const std::string &Dir) {
  support::Result<report::LoadedRun> Run = report::loadRun(Dir);
  if (!Run) {
    std::fprintf(stderr, "error: %s\n", Run.error().Message.c_str());
    std::exit(2);
  }
  return std::move(Run).value();
}

int runSummarize(int Argc, char **Argv) {
  std::string Dir;
  bool Markdown = false;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--markdown"))
      Markdown = true;
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  std::fputs(report::summarize(Run, Markdown).c_str(), stdout);
  return 0;
}

int runDiff(int Argc, char **Argv) {
  std::string DirA, DirB;
  report::DiffOptions Opt;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threshold") && I + 1 < Argc)
      Opt.FitnessThreshold = std::strtod(Argv[++I], nullptr);
    else if (Argv[I][0] != '-' && DirA.empty())
      DirA = Argv[I];
    else if (Argv[I][0] != '-' && DirB.empty())
      DirB = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (DirA.empty() || DirB.empty())
    return usage(Argv[0]);
  report::LoadedRun A = loadOrExit(DirA);
  report::LoadedRun B = loadOrExit(DirB);
  report::DiffResult D = report::diffRuns(A, B, Opt);
  std::fputs(D.Text.c_str(), stdout);
  std::printf("fitness regressions: %d, verdict mix shifts: %d, "
              "fleet regressions: %d\n",
              D.FitnessRegressions, D.VerdictShifts, D.FleetRegressions);
  return D.regressed() ? 1 : 0;
}

int runFleet(int Argc, char **Argv) {
  std::string Dir, BaselineDir;
  double Threshold = 0.05;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--baseline") && I + 1 < Argc)
      BaselineDir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--threshold") && I + 1 < Argc)
      Threshold = std::strtod(Argv[++I], nullptr);
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  report::FleetDiffResult F;
  if (BaselineDir.empty()) {
    F = report::fleetReport(Run, nullptr, Threshold);
    std::fputs(F.Text.c_str(), stdout);
    return 0;
  }
  report::LoadedRun Baseline = loadOrExit(BaselineDir);
  F = report::fleetReport(Run, &Baseline, Threshold);
  std::fputs(F.Text.c_str(), stdout);
  std::printf("fleet regressions: %d\n", F.Regressions);
  return F.Regressions ? 1 : 0;
}

int runValidate(int Argc, char **Argv) {
  if (Argc != 3)
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Argv[2]);
  report::ValidationResult V = report::validateRun(Run);
  // Warnings (e.g. a pre-fleet run directory without a fleet section)
  // are reported but do not fail the gate.
  for (const std::string &W : V.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  for (const std::string &P : V.Problems)
    std::fprintf(stderr, "problem: %s\n", P.c_str());
  if (V.ok()) {
    std::printf("%s: %zu evaluation records, %zu generation records, "
                "%zu fleet records, manifest ok\n",
                Run.Dir.c_str(), Run.Evaluations.size(),
                Run.Generations.size(), Run.Fleet.size());
    return 0;
  }
  return 1;
}

int runAnalyze(int Argc, char **Argv) {
  std::string Dir, BaselineDir;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--baseline") && I + 1 < Argc)
      BaselineDir = Argv[++I];
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  if (BaselineDir.empty()) {
    std::fputs(report::analyzeRun(Run).c_str(), stdout);
    return 0;
  }
  report::LoadedRun Baseline = loadOrExit(BaselineDir);
  std::fputs(report::analyzeRun(Run, &Baseline).c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  if (!std::strcmp(Argv[1], "summarize"))
    return runSummarize(Argc, Argv);
  if (!std::strcmp(Argv[1], "diff"))
    return runDiff(Argc, Argv);
  if (!std::strcmp(Argv[1], "validate"))
    return runValidate(Argc, Argv);
  if (!std::strcmp(Argv[1], "analyze"))
    return runAnalyze(Argc, Argv);
  if (!std::strcmp(Argv[1], "fleet"))
    return runFleet(Argc, Argv);
  return usage(Argv[0]);
}
