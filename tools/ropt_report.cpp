//===- tools/ropt_report.cpp - Summarize and diff run directories ---------===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
// The read side of the run-report flight recorder, as a CLI:
//
//   ropt-report summarize DIR [--markdown]   human/markdown run summary
//   ropt-report diff A B [--threshold F]     regression gate (exit 1 on
//                                            fitness regressions)
//   ropt-report validate DIR                 structural artifact checks
//   ropt-report analyze DIR [--baseline OLD] observability-loop view:
//                                            region DAG, critical path,
//                                            bottleneck labels + budget
//                                            shares; flags label changes
//                                            against a baseline run
//   ropt-report fleet DIR [--baseline OLD]   fleet view: per-device-class
//                        [--threshold F]     round curves, provenance
//                                            chains, transport health;
//                                            with a baseline, gates on
//                                            per-cell best-speedup
//                                            regressions (exit 1)
//   ropt-report store STORE_DIR              persistent-store inspector:
//                                            schema/night header, class
//                                            roster, per-app boards; also
//                                            validates the canonical
//                                            serialization fixed point
//                                            and flags duplicate keys
//
// Exit codes: 0 clean, 1 regressions/validation problems, 2 usage or
// unreadable run/store directory.
//
//===----------------------------------------------------------------------===//

#include "report/RunDiff.h"
#include "store/Store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

using namespace ropt;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s summarize DIR [--markdown]\n"
               "       %s diff BASELINE_DIR NEW_DIR [--threshold FRACTION]\n"
               "       %s validate DIR\n"
               "       %s analyze DIR [--baseline OLD_DIR]\n"
               "       %s fleet DIR [--baseline OLD_DIR] "
               "[--threshold FRACTION]\n"
               "       %s store STORE_DIR\n",
               Argv0, Argv0, Argv0, Argv0, Argv0, Argv0);
  return 2;
}

report::LoadedRun loadOrExit(const std::string &Dir) {
  support::Result<report::LoadedRun> Run = report::loadRun(Dir);
  if (!Run) {
    std::fprintf(stderr, "error: %s\n", Run.error().Message.c_str());
    std::exit(2);
  }
  return std::move(Run).value();
}

int runSummarize(int Argc, char **Argv) {
  std::string Dir;
  bool Markdown = false;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--markdown"))
      Markdown = true;
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  std::fputs(report::summarize(Run, Markdown).c_str(), stdout);
  return 0;
}

int runDiff(int Argc, char **Argv) {
  std::string DirA, DirB;
  report::DiffOptions Opt;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threshold") && I + 1 < Argc)
      Opt.FitnessThreshold = std::strtod(Argv[++I], nullptr);
    else if (Argv[I][0] != '-' && DirA.empty())
      DirA = Argv[I];
    else if (Argv[I][0] != '-' && DirB.empty())
      DirB = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (DirA.empty() || DirB.empty())
    return usage(Argv[0]);
  report::LoadedRun A = loadOrExit(DirA);
  report::LoadedRun B = loadOrExit(DirB);
  report::DiffResult D = report::diffRuns(A, B, Opt);
  std::fputs(D.Text.c_str(), stdout);
  std::printf("fitness regressions: %d, verdict mix shifts: %d, "
              "fleet regressions: %d\n",
              D.FitnessRegressions, D.VerdictShifts, D.FleetRegressions);
  return D.regressed() ? 1 : 0;
}

int runFleet(int Argc, char **Argv) {
  std::string Dir, BaselineDir;
  double Threshold = 0.05;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--baseline") && I + 1 < Argc)
      BaselineDir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--threshold") && I + 1 < Argc)
      Threshold = std::strtod(Argv[++I], nullptr);
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  report::FleetDiffResult F;
  if (BaselineDir.empty()) {
    F = report::fleetReport(Run, nullptr, Threshold);
    std::fputs(F.Text.c_str(), stdout);
    return 0;
  }
  report::LoadedRun Baseline = loadOrExit(BaselineDir);
  F = report::fleetReport(Run, &Baseline, Threshold);
  std::fputs(F.Text.c_str(), stdout);
  std::printf("fleet regressions: %d\n", F.Regressions);
  return F.Regressions ? 1 : 0;
}

int runValidate(int Argc, char **Argv) {
  if (Argc != 3)
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Argv[2]);
  report::ValidationResult V = report::validateRun(Run);
  // Warnings (e.g. a pre-fleet run directory without a fleet section)
  // are reported but do not fail the gate.
  for (const std::string &W : V.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  for (const std::string &P : V.Problems)
    std::fprintf(stderr, "problem: %s\n", P.c_str());
  if (V.ok()) {
    std::printf("%s: %zu evaluation records, %zu generation records, "
                "%zu fleet records, manifest ok\n",
                Run.Dir.c_str(), Run.Evaluations.size(),
                Run.Generations.size(), Run.Fleet.size());
    return 0;
  }
  return 1;
}

int runAnalyze(int Argc, char **Argv) {
  std::string Dir, BaselineDir;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--baseline") && I + 1 < Argc)
      BaselineDir = Argv[++I];
    else if (Argv[I][0] != '-' && Dir.empty())
      Dir = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (Dir.empty())
    return usage(Argv[0]);
  report::LoadedRun Run = loadOrExit(Dir);
  if (BaselineDir.empty()) {
    std::fputs(report::analyzeRun(Run).c_str(), stdout);
    return 0;
  }
  report::LoadedRun Baseline = loadOrExit(BaselineDir);
  std::fputs(report::analyzeRun(Run, &Baseline).c_str(), stdout);
  return 0;
}

// `ropt-report store DIR`: inspect and validate one persistent store.
// Exit 0 = loaded and canonical, 1 = structural problems, 2 = missing
// store (or usage).
int runStore(int Argc, char **Argv) {
  if (Argc != 3)
    return usage(Argv[0]);
  store::Store St(Argv[2]);
  store::Store::LoadResult L = St.load();
  if (!L.Found) {
    std::fprintf(stderr, "error: no store at %s\n", St.path().c_str());
    return 2;
  }
  int Problems = 0;
  if (!L.Warning.empty()) {
    std::fprintf(stderr, "problem: %s\n", L.Warning.c_str());
    ++Problems;
  }

  const store::StoreState &S = L.State;
  std::printf("%s: schema %d, night %llu, fleet seed %llu\n",
              St.path().c_str(), S.Schema,
              static_cast<unsigned long long>(S.Nights),
              static_cast<unsigned long long>(S.FleetSeed));

  // Canonical fixed point: a current-schema document must re-serialize
  // to the exact bytes on disk — the property that makes store bytes
  // comparable across --jobs and load -> save a no-op.
  if (L.Warning.empty()) {
    if (S.Schema == store::CurrentSchema) {
      if (store::serialize(S) != L.RawBytes) {
        std::fprintf(stderr,
                     "problem: store is not in canonical form "
                     "(re-serialization differs from the on-disk bytes)\n");
        ++Problems;
      }
    } else {
      std::printf("  (older schema %d: canonical-form check skipped)\n",
                  S.Schema);
    }
  }

  if (S.Classes.K > 0) {
    std::printf("classes: k=%d over %d-dim profile vectors, %zu devices "
                "assigned\n",
                S.Classes.K, S.Classes.Dims, S.Classes.Assignments.size());
    std::vector<int> Roster(static_cast<size_t>(S.Classes.K), 0);
    for (int A : S.Classes.Assignments) {
      if (A < 0 || A >= S.Classes.K) {
        std::fprintf(stderr,
                     "problem: class assignment %d out of range [0,%d)\n", A,
                     S.Classes.K);
        ++Problems;
        continue;
      }
      ++Roster[static_cast<size_t>(A)];
    }
    for (int C = 0; C != S.Classes.K; ++C)
      std::printf("  class %d: %d devices\n", C, Roster[static_cast<size_t>(C)]);
    if (static_cast<int>(S.Classes.Centroids.size()) != S.Classes.K) {
      std::fprintf(stderr, "problem: %zu centroids for k=%d\n",
                   S.Classes.Centroids.size(), S.Classes.K);
      ++Problems;
    }
  }

  for (const store::StoredApp &A : S.Apps) {
    size_t Quarantined = 0;
    uint64_t NewestTick = 0;
    std::set<std::string> Keys;
    for (const store::StoredEntry &E : A.Entries) {
      if (E.Quarantined)
        ++Quarantined;
      NewestTick = std::max(NewestTick, E.LastReportTick);
      if (!Keys.insert(E.Genome).second) {
        std::fprintf(stderr, "problem: %s: duplicate genome key '%s'\n",
                     A.Name.c_str(), E.Genome.c_str());
        ++Problems;
      }
    }
    std::printf("app %s: %zu entries (%zu quarantined)\n", A.Name.c_str(),
                A.Entries.size(), Quarantined);
    size_t Shown = 0;
    for (const store::StoredEntry &E : A.Entries) {
      if (E.Quarantined || E.Expired)
        continue;
      // Leaderboard age: how many ticks before the app's newest report
      // this entry was last confirmed.
      std::printf("  %7.3fx %3d reports  age %llu  %s\n", E.Speedup,
                  E.Reports,
                  static_cast<unsigned long long>(NewestTick -
                                                  E.LastReportTick),
                  E.Genome.c_str());
      if (++Shown == 4)
        break;
    }
    for (const store::StoredEntry &E : A.Entries)
      if (E.Quarantined)
        std::printf("  quarantined (%s): %s\n",
                    E.RejectVerdict.empty() ? "unverified"
                                            : E.RejectVerdict.c_str(),
                    E.Genome.c_str());
  }
  if (Problems) {
    std::printf("%d problems\n", Problems);
    return 1;
  }
  std::printf("store ok: canonical, %zu apps\n", S.Apps.size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  if (!std::strcmp(Argv[1], "summarize"))
    return runSummarize(Argc, Argv);
  if (!std::strcmp(Argv[1], "diff"))
    return runDiff(Argc, Argv);
  if (!std::strcmp(Argv[1], "validate"))
    return runValidate(Argc, Argv);
  if (!std::strcmp(Argv[1], "analyze"))
    return runAnalyze(Argc, Argv);
  if (!std::strcmp(Argv[1], "fleet"))
    return runFleet(Argc, Argv);
  if (!std::strcmp(Argv[1], "store"))
    return runStore(Argc, Argv);
  return usage(Argv[0]);
}
