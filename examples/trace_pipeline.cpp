//===- examples/trace_pipeline.cpp - The observability layer, end to end -----===//
//
// Runs the Figure-6 pipeline with tracing enabled and writes:
//
//   pipeline.trace.json    Chrome trace_event JSON — open it in
//                          chrome://tracing or https://ui.perfetto.dev to
//                          see where the wall-clock goes: one span per
//                          pipeline phase, per capture, per replay, per GA
//                          generation.
//   pipeline.metrics.json  The metrics registry (counters/gauges/
//                          histograms) after the run.
//
//   $ ./trace_pipeline [app-name] [--full]
//
// Default app: Sieve, with a scaled-down GA so the tour takes seconds;
// --full runs the paper's 11x50 configuration.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace ropt;

int main(int Argc, char **Argv) {
  const char *AppName = "Sieve";
  bool Full = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--full"))
      Full = true;
    else
      AppName = Argv[I];
  }

  // 1. Arm the recorder. Tracing is off by default and costs one relaxed
  //    atomic load per instrumentation site until enabled.
  TraceRecorder &Trace = TraceRecorder::instance();
  Trace.clear();
  Trace.enable(true);
  Metrics::instance().reset();

  // 2. Run the pipeline as usual — the instrumentation inside capture/,
  //    replay/, search/, vm/ and core/ does the rest.
  workloads::Application App = workloads::buildByName(AppName);
  core::PipelineConfig Config;
  Config.Seed = 42;
  if (!Full) {
    Config.Search.GA.Generations = 4;
    Config.Search.GA.PopulationSize = 12;
    Config.Search.GA.HillClimbRounds = 1;
    Config.Search.MaxReplaysPerEvaluation = 5;
  }
  core::IterativeCompiler Pipeline(Config);
  core::OptimizationReport Report = Pipeline.optimize(App);
  Trace.enable(false);
  if (!Report.Succeeded) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 Report.FailureReason.c_str());
    return 1;
  }

  // 3. Export both artifacts.
  if (!Trace.writeChromeJson("pipeline.trace.json")) {
    std::fprintf(stderr, "cannot write pipeline.trace.json\n");
    return 1;
  }
  MetricsSnapshot Snap = Metrics::instance().snapshot();
  std::FILE *MJson = std::fopen("pipeline.metrics.json", "w");
  if (MJson) {
    std::fputs(Snap.toJson().c_str(), MJson);
    std::fputc('\n', MJson);
    std::fclose(MJson);
  }

  // 4. A taste of what was recorded.
  std::printf("app: %s — %.2fx over Android [%s]\n", App.Name.c_str(),
              Report.speedupGaOverAndroid(), Report.Best.G.name().c_str());
  std::printf("\n%zu trace events -> pipeline.trace.json "
              "(chrome://tracing or https://ui.perfetto.dev)\n",
              Trace.eventCount());
  std::printf("metrics registry -> pipeline.metrics.json\n\n%s",
              Snap.toText().c_str());
  std::printf("\nper-generation log (what fig09 plots):\n");
  for (const search::GenerationStats &S : Report.Trace.Generations)
    std::printf("  gen %2d: %3d evals, %2d rejected, best %.0f / mean %.0f "
                "cycles\n",
                S.Generation, S.Evaluations, S.Invalid, S.BestCycles,
                S.MeanCycles);
  return 0;
}
