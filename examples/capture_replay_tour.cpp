//===- examples/capture_replay_tour.cpp - The OS substrate, step by step ------===//
//
// A guided walk through the capture/replay machinery (Figures 4 and 5)
// using a small stateful app built inline with the DexBuilder API:
//
//   1. fork + Copy-on-Write keeps a pristine snapshot while the app runs;
//   2. read-protection + fault handling finds the pages the region used;
//   3. a loader rebuilds a partial process (surviving ASLR collisions);
//   4. replays reproduce the execution exactly, under any code version;
//   5. the verification map catches a deliberately miscompiled binary.
//
//===----------------------------------------------------------------------===//

#include "capture/CaptureManager.h"
#include "dex/Builder.h"
#include "hgraph/AndroidCompiler.h"
#include "replay/Replayer.h"

#include <cstdio>

using namespace ropt;
using namespace ropt::dex;

namespace {

/// counterApp: init(n) builds an array; tick(x) mixes x into every element
/// and returns a digest — a perfect little hot region.
struct CounterApp {
  DexFile File;
  MethodId Init, Tick;

  CounterApp() {
    DexBuilder B;
    ClassId C = B.addClass("Counter");
    StaticFieldId Data = B.addStaticField(C, "data", Type::Ref);

    Init = B.declareFunction(InvalidId, "init", 1, false);
    {
      FunctionBuilder F = B.beginBody(Init);
      RegIdx Arr = F.newReg();
      F.newArray(Arr, F.param(0), Type::I64);
      F.putStatic(Data, Arr);
      F.retVoid();
      B.endBody(F);
    }
    Tick = B.declareFunction(InvalidId, "tick", 1, true);
    {
      FunctionBuilder F = B.beginBody(Tick);
      RegIdx Arr = F.newReg(), Len = F.newReg(), I = F.newReg(),
             Sum = F.newReg(), One = F.immI(1);
      F.getStatic(Arr, Data);
      F.arrayLen(Len, Arr);
      F.constI(Sum, 0);
      F.constI(I, 0);
      auto Head = F.newLabel(), Done = F.newLabel();
      F.bind(Head);
      F.ifGe(I, Len, Done);
      RegIdx V = F.newReg();
      F.aload(V, Arr, I, Type::I64);
      F.addI(V, V, F.param(0));
      F.astore(Arr, I, V, Type::I64);
      F.addI(Sum, Sum, V);
      F.addI(I, I, One);
      F.jump(Head);
      F.bind(Done);
      F.ret(Sum);
      B.endBody(F);
    }
    File = B.build();
  }
};

} // namespace

int main() {
  CounterApp App;

  // --- Boot a simulated process running the app. ------------------------
  os::Kernel Kernel;
  os::Process &Proc = Kernel.spawn();
  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  vm::RuntimeConfig Config;
  vm::Runtime::mapStandardLayout(Proc.space(), App.File, Config);
  vm::Runtime RT(Proc.space(), App.File, Natives, Config);
  RT.call(App.Init, {vm::Value::fromI64(2000)});
  std::printf("process booted: %llu pages mapped\n",
              static_cast<unsigned long long>(
                  Proc.space().mappedPageCount()));

  // --- Step 1+2: capture one execution of tick(7). ----------------------
  capture::CaptureManager CM(Kernel, Proc, RT);
  CM.armCapture(App.Tick);
  vm::CallResult Live = RT.call(App.Tick, {vm::Value::fromI64(7)});
  capture::Capture Cap = CM.takeCapture().value();
  std::printf("\nlive run returned %lld\n",
              static_cast<long long>(Live.Ret.asI64()));
  std::printf("capture: %zu pages (the region's working set), "
              "%llu read faults, %llu CoW copies\n",
              Cap.Pages.size(),
              static_cast<unsigned long long>(Cap.Events.ReadFaults +
                                              Cap.Events.WriteFaults),
              static_cast<unsigned long long>(Cap.Events.CowCopies));
  std::printf("modelled online overhead: fork %.1fms + prep %.1fms + "
              "faults/CoW %.1fms = %.1fms\n",
              Cap.Overheads.ForkMs, Cap.Overheads.PreparationMs,
              Cap.Overheads.FaultCowMs, Cap.Overheads.totalMs());

  // The app keeps running; its state has moved past the capture.
  vm::CallResult Next = RT.call(App.Tick, {vm::Value::fromI64(7)});
  std::printf("app kept running: next tick returned %lld (state "
              "advanced)\n",
              static_cast<long long>(Next.Ret.asI64()));

  // --- Steps 3+4: replay the captured moment, repeatedly. ----------------
  replay::Replayer Rep(App.File, Natives, Config, /*AslrSeed=*/99);
  for (int I = 0; I != 3; ++I) {
    replay::ReplayResult R =
        Rep.replay(Cap, replay::ReplayCode::Interpreter, nullptr);
    std::printf("replay %d: returned %lld in %llu cycles (loader at "
                "0x%llx, %llu colliding pages relocated)\n",
                I + 1, static_cast<long long>(R.Result.Ret.asI64()),
                static_cast<unsigned long long>(R.Result.Cycles),
                static_cast<unsigned long long>(R.Loader.LoaderBase),
                static_cast<unsigned long long>(R.Loader.CollidingPages));
  }

  // --- Interpreted replay: verification map + type profile. --------------
  replay::InterpretedReplayResult IR =
      Rep.interpretedReplay(Cap).value();
  std::printf("\nverification map: %zu externally visible cells + return "
              "value\n",
              IR.Map.Cells.size());

  // --- Step 5: a correct binary passes; a sabotaged one is caught. -------
  vm::CodeCache Good;
  hgraph::compileAllAndroid(App.File, {App.Tick}, Good);
  std::printf("compiled (correct) binary verifies: %s\n",
              Rep.verifiedReplay(Cap, Good, IR.Map).ok() ? "yes" : "NO");

  auto Bad = hgraph::compileMethodAndroid(App.File, App.Tick);
  for (vm::MInsn &I : Bad->Code)
    if (I.Op == vm::MOpcode::MAddI) {
      I.Op = vm::MOpcode::MSubI; // sabotage: one add becomes a sub
      break;
    }
  vm::CodeCache BadCache;
  BadCache.install(Bad);
  support::Result<replay::ReplayResult> BadRun =
      Rep.verifiedReplay(Cap, BadCache, IR.Map);
  std::printf("sabotaged binary verifies:         %s\n",
              BadRun.ok()
                  ? "yes (BUG!)"
                  : "no — rejected offline, the user never sees it");
  if (!BadRun)
    std::printf("  rejection: %s (%s)\n",
                support::errorCodeName(BadRun.error().Code),
                BadRun.error().Message.c_str());
  return 0;
}
