//===- examples/optimize_game.cpp - Full pipeline on an interactive app -------===//
//
// The paper's scenario, narrated stage by stage: a user plays an Android
// game (Reversi); the system profiles the session, captures the AI kernel
// transparently, searches the compiler space offline overnight, and ships
// a faster binary — with every broken candidate caught in replay.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "core/Measurement.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ropt;

int main(int Argc, char **Argv) {
  workloads::Application App =
      workloads::buildByName(Argc > 1 ? Argv[1] : "Reversi Android");
  core::PipelineConfig Config;
  Config.Seed = 7;
  core::IterativeCompiler Pipeline(Config);

  std::printf("== evening: the user plays %s ==\n", App.Name.c_str());
  core::IterativeCompiler::ProfiledApp Profiled = Pipeline.profileApp(App);
  const profiler::CodeBreakdown &BD = Profiled.Breakdown;
  std::printf("profiler: compiled %.0f%%, cold %.0f%%, JNI %.0f%%, "
              "unreplayable %.0f%%, uncompilable %.0f%%\n",
              100 * BD.Compiled, 100 * BD.Cold, 100 * BD.Jni,
              100 * BD.Unreplayable, 100 * BD.Uncompilable);
  if (!Profiled.Region) {
    std::fprintf(stderr, "no optimizable region\n");
    return 1;
  }
  std::printf("hot region: %s (%zu methods, %.1fM exclusive cycles)\n",
              App.File->method(Profiled.Region->Root).Name.c_str(),
              Profiled.Region->Methods.size(),
              Profiled.Region->EstimatedCycles / 1e6);

  std::printf("\n== one more round: a capture fires on region entry ==\n");
  auto Captured = Pipeline.captureRegion(*Profiled.Instance,
                                         *Profiled.Region);
  if (!Captured) {
    std::fprintf(stderr, "capture failed\n");
    return 1;
  }
  std::printf("captured %zu pages in %.1f ms (imperceptible); spooled by "
              "the low-priority child\n",
              Captured->Cap.Pages.size(),
              Captured->Cap.Overheads.totalMs());
  std::printf("interpreted replay built: %zu-cell verification map, "
              "%zu virtual-call type profiles\n",
              Captured->Map.Cells.size(), Captured->Profile.siteCount());

  std::printf("\n== overnight, idle and charged: the search runs ==\n");
  core::RegionEvaluator Eval(App, *Profiled.Region, Captured->Cap,
                             Captured->Map, Captured->Profile, Config);
  search::Evaluation Android = Eval.evaluateAndroid();
  search::Evaluation O3 = Eval.evaluatePipeline(lir::o3Pipeline());
  std::printf("baselines (region replays): Android %.0f cycles, "
              "LLVM -O3 %.0f cycles\n",
              Android.MedianCycles, O3.MedianCycles);

  // The engine parallelizes the GA's batches across workers (one replay
  // sandbox each) and memoizes duplicate genomes/binaries. Seeded runs
  // are bit-identical at any worker count.
  search::EngineOptions EngineOpts;
  EngineOpts.Jobs = Config.Search.Jobs;
  search::EvaluationEngine Engine(
      [&]() {
        return std::make_unique<core::RegionEvaluator>(
            App, *Profiled.Region, Captured->Cap, Captured->Map,
            Captured->Profile, Config);
      },
      EngineOpts, Config.Seed);
  std::printf("evaluation engine: %zu workers\n", Engine.jobs());

  search::GeneticSearch GA(Config.Search.GA, Config.Seed, Engine);
  search::GaTrace Trace;
  auto Best = GA.run(Android.MedianCycles, O3.MedianCycles, &Trace);
  if (!Best) {
    std::fprintf(stderr, "search failed\n");
    return 1;
  }
  const search::EngineCounters &C = Engine.counters();
  std::printf("%d genomes evaluated: %d ok, %d compile errors, %d "
              "crashes, %d timeouts, %d wrong outputs\n",
              C.total(), C.Ok, C.CompileError, C.RuntimeCrash,
              C.RuntimeTimeout, C.WrongOutput);
  const search::EngineCacheStats &CS = Engine.cacheStats();
  std::printf("memoization: %llu genome hits + %llu binary hits saved "
              "replays (%llu fresh compiles)\n",
              static_cast<unsigned long long>(CS.GenomeHits),
              static_cast<unsigned long long>(CS.BinaryHits),
              static_cast<unsigned long long>(CS.Misses));
  std::printf("every failure above was discarded offline — under online "
              "search each one would have hit the user\n");
  std::printf("winner: %.2fx over Android on the region  [%s]\n",
              Android.MedianCycles / Best->E.MedianCycles,
              Best->G.name().c_str());

  std::printf("\n== morning: the winner is installed; the user plays ==\n");
  std::optional<vm::CodeCache> BestCode = Eval.compileRegion(Best->G);
  core::AppInstance Fresh(App, Config.Seed + 100);
  uint64_t Before = Fresh.runSessionBlock(3, App.DefaultParam);
  core::AppInstance Tuned(App, Config.Seed + 100);
  Tuned.overrideRegionCode(Profiled.Region->Methods, *BestCode);
  uint64_t After = Tuned.runSessionBlock(3, App.DefaultParam);
  std::printf("three game rounds: %.2fM cycles -> %.2fM cycles "
              "(%.2fx whole-program)\n",
              Before / 1e6, After / 1e6,
              static_cast<double>(Before) / After);
  return 0;
}
