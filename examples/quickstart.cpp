//===- examples/quickstart.cpp - Five-minute tour of the public API ----------===//
//
// Optimizes one application end-to-end with the paper's pipeline:
//
//   $ ./quickstart [app-name]
//
// and prints what happened at each stage. Default app: Sieve.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ropt;

int main(int Argc, char **Argv) {
  // 1. An application: bytecode, an init entry, a session entry. The
  //    bundled suite has all 21 of the paper's apps; your own can be
  //    assembled with dex::DexBuilder.
  workloads::Application App =
      workloads::buildByName(Argc > 1 ? Argv[1] : "Sieve");
  std::printf("application: %s (%s suite)\n", App.Name.c_str(),
              workloads::suiteName(App.Kind));

  // 2. The pipeline, at the paper's configuration (11 generations x 50
  //    genomes, 10 replays per evaluation, tournament-of-7 selection).
  core::PipelineConfig Config;
  Config.Seed = 42;
  core::IterativeCompiler Pipeline(Config);

  // 3. Run: profile online -> detect the hot region -> capture it
  //    transparently -> interpreted replay for the verification map ->
  //    genetic search over the LLVM-like pass space with replay-based
  //    fitness -> install the winner -> measure outside the replay.
  core::OptimizationReport Report = Pipeline.optimize(App);
  if (!Report.Succeeded) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 Report.FailureReason.c_str());
    return 1;
  }

  // 4. What you get.
  std::printf("hot region: %s (+%zu callees), %.0f%% of runtime\n",
              App.File->method(Report.Region.Root).Name.c_str(),
              Report.Region.Methods.size() - 1,
              100.0 * Report.Breakdown.Compiled);
  std::printf("capture: %zu pages (%.2f MB), %.1f ms online overhead, "
              "%llu postponements\n",
              Report.Cap.Pages.size(),
              Report.Cap.processSpecificBytes() / (1024.0 * 1024.0),
              Report.Cap.Overheads.totalMs(),
              static_cast<unsigned long long>(Report.CapturePostponements));
  std::printf("search: %d evaluations (%d discarded as broken — none of "
              "them ever ran online)\n",
              Report.Counters.total(),
              Report.Counters.total() - Report.Counters.Ok);
  std::printf("winning pipeline: %s\n", Report.Best.G.name().c_str());
  std::printf("\nwhole-program speedup vs Android compiler: %.2fx\n",
              Report.speedupGaOverAndroid());
  std::printf("whole-program speedup vs LLVM -O3:          %.2fx\n",
              Report.speedupGaOverO3());
  return 0;
}
