//===- examples/search_playground.cpp - Random vs genetic search --------------===//
//
// Compares three ways of spending the same evaluation budget on one app's
// hot region: pure random sampling, the paper's GA, and the -O presets.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>

using namespace ropt;

int main(int Argc, char **Argv) {
  workloads::Application App =
      workloads::buildByName(Argc > 1 ? Argv[1] : "LU");
  core::PipelineConfig Config;
  Config.Seed = 11;
  core::IterativeCompiler Pipeline(Config);
  auto Profiled = Pipeline.profileApp(App);
  auto Captured = Pipeline.captureRegion(*Profiled.Instance,
                                         *Profiled.Region);
  if (!Captured) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  core::RegionEvaluator Eval(App, *Profiled.Region, Captured->Cap,
                             Captured->Map, Captured->Profile, Config);

  double Android = Eval.evaluateAndroid().MedianCycles;
  std::printf("app: %s   Android region baseline: %.0f cycles\n\n",
              App.Name.c_str(), Android);

  // Presets.
  for (auto [Name, Pipe] : {std::pair{"-O1", lir::o1Pipeline()},
                            {"-O2", lir::o2Pipeline()},
                            {"-O3", lir::o3Pipeline()}}) {
    search::Evaluation E = Eval.evaluatePipeline(Pipe);
    std::printf("%-18s %6.2fx\n", Name,
                E.ok() ? Android / E.MedianCycles : 0.0);
  }

  // Random search with the GA's total budget.
  int Budget = Config.Search.GA.Generations * Config.Search.GA.PopulationSize;
  {
    Rng R(Config.Seed);
    double Best = 0.0;
    int Broken = 0;
    for (int I = 0; I != Budget; ++I) {
      search::Genome G = search::randomGenome(R, Config.Search.GA.Genomes);
      search::Evaluation E = Eval.evaluate(G);
      if (!E.ok()) {
        ++Broken;
        continue;
      }
      Best = std::max(Best, Android / E.MedianCycles);
    }
    std::printf("%-18s %6.2fx   (%d evals, %d broken)\n", "random search",
                Best, Budget, Broken);
  }

  // The GA, through the parallel memoizing engine (one RegionEvaluator
  // replay sandbox per worker).
  {
    search::EvaluationEngine Engine(
        [&]() {
          return std::make_unique<core::RegionEvaluator>(
              App, *Profiled.Region, Captured->Cap, Captured->Map,
              Captured->Profile, Config);
        },
        search::EngineOptions{}, Config.Seed);
    search::GeneticSearch GA(Config.Search.GA, Config.Seed, Engine);
    search::GaTrace Trace;
    auto Best = GA.run(Android, Android, &Trace);
    std::printf("%-18s %6.2fx   (%zu evals, %llu cache hits)   [%s]\n",
                "genetic search",
                Best ? Android / Best->E.MedianCycles : 0.0,
                Trace.Evaluations.size(),
                static_cast<unsigned long long>(
                    Engine.cacheStats().hits()),
                Best ? Best->G.name().c_str() : "-");
  }
  return 0;
}
